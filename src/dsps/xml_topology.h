#ifndef INSIGHT_DSPS_XML_TOPOLOGY_H_
#define INSIGHT_DSPS_XML_TOPOLOGY_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/xml.h"
#include "dsps/topology.h"

namespace insight {
namespace dsps {

/// Registry of component types instantiable from XML. The paper enhances
/// Storm with topology creation via XML so users avoid writing Java wiring
/// code (Section 3.2); applications register their spout/bolt types here and
/// the loader resolves `type=` attributes against it. Factories receive the
/// component's XML node so they can read <param key= value=/> children.
class ComponentRegistry {
 public:
  using SpoutMaker =
      std::function<Result<SpoutFactory>(const XmlNode& component)>;
  using BoltMaker = std::function<Result<BoltFactory>(const XmlNode& component)>;

  Status RegisterSpout(const std::string& type, SpoutMaker maker);
  Status RegisterBolt(const std::string& type, BoltMaker maker);

  Result<SpoutFactory> MakeSpout(const std::string& type,
                                 const XmlNode& node) const;
  Result<BoltFactory> MakeBolt(const std::string& type, const XmlNode& node) const;

 private:
  std::map<std::string, SpoutMaker> spouts_;
  std::map<std::string, BoltMaker> bolts_;
};

/// Value of <param key="..." value="..."/> under a component node.
Result<std::string> XmlParam(const XmlNode& component, const std::string& key);
std::string XmlParamOr(const XmlNode& component, const std::string& key,
                       const std::string& fallback);

/// A parsed user submission: the topology plus the Esper rules to install
/// ("Users in our framework complete an XML file that includes the
/// description of the submitted topology along with the Esper rules").
struct XmlTopology {
  Topology topology;
  /// (rule name, EPL text) in document order.
  std::vector<std::pair<std::string, std::string>> rules;
};

/// Parses a document of the form:
///
///   <topology name="traffic">
///     <spout name="busReader" type="BusReaderSpout" executors="2" tasks="2"
///            fields="timestamp,line,delay">
///       <param key="path" value="/data/traces.csv"/>
///     </spout>
///     <bolt name="esper" type="EsperBolt" executors="4" tasks="4" fields="...">
///       <subscribe source="busReader" grouping="shuffle"/>
///       <subscribe source="splitter" grouping="direct"/>
///       <subscribe source="area" grouping="fields" fields="location"/>
///     </bolt>
///     <rules>
///       <rule name="r1"><![CDATA[SELECT * FROM bus ...]]></rule>
///     </rules>
///   </topology>
Result<XmlTopology> LoadTopologyFromXml(const std::string& xml,
                                        const ComponentRegistry& registry);

}  // namespace dsps
}  // namespace insight

#endif  // INSIGHT_DSPS_XML_TOPOLOGY_H_
