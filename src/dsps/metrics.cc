#include "dsps/metrics.h"

#include "common/logging.h"

namespace insight {
namespace dsps {

void MetricsRegistry::DeclareComponent(const std::string& component,
                                       int num_tasks) {
  ComponentStats& stats = components_[component];
  stats.tasks.clear();
  for (int i = 0; i < num_tasks; ++i) {
    stats.tasks.push_back(std::make_unique<TaskStats>());
  }
}

MetricsRegistry::TaskStats& MetricsRegistry::StatsFor(
    const std::string& component, int task) {
  auto it = components_.find(component);
  INSIGHT_CHECK(it != components_.end()) << "undeclared component " << component;
  return *it->second.tasks[static_cast<size_t>(task)];
}

void MetricsRegistry::Record(const std::string& component, int task,
                             MicrosT latency_micros) {
  TaskStats& stats = StatsFor(component, task);
  stats.executed.fetch_add(1, std::memory_order_relaxed);
  stats.latency_sum.fetch_add(static_cast<uint64_t>(latency_micros),
                              std::memory_order_relaxed);
}

void MetricsRegistry::RecordEmit(const std::string& component, int task,
                                 uint64_t count) {
  StatsFor(component, task).emitted.fetch_add(count, std::memory_order_relaxed);
}

void MetricsRegistry::RecordAck(const std::string& component, int task,
                                uint64_t count) {
  StatsFor(component, task).acked.fetch_add(count, std::memory_order_relaxed);
}

void MetricsRegistry::RecordFail(const std::string& component, int task,
                                 uint64_t count) {
  StatsFor(component, task).failed.fetch_add(count, std::memory_order_relaxed);
}

void MetricsRegistry::RecordReplay(const std::string& component, int task,
                                   uint64_t count) {
  StatsFor(component, task).replayed.fetch_add(count,
                                               std::memory_order_relaxed);
}

void MetricsRegistry::RecordCheckpoint(const std::string& component, int task) {
  StatsFor(component, task).checkpoints.fetch_add(1, std::memory_order_relaxed);
}

void MetricsRegistry::RecordRestore(const std::string& component, int task) {
  StatsFor(component, task).restores.fetch_add(1, std::memory_order_relaxed);
}

void MetricsRegistry::RecordRestoreFailure(const std::string& component,
                                           int task) {
  StatsFor(component, task)
      .restore_failures.fetch_add(1, std::memory_order_relaxed);
}

void MetricsRegistry::RecordDedup(const std::string& component, int task) {
  StatsFor(component, task).deduped.fetch_add(1, std::memory_order_relaxed);
}

void MetricsRegistry::RecordBreakerTrip(const std::string& component,
                                        int task) {
  StatsFor(component, task)
      .breaker_trips.fetch_add(1, std::memory_order_relaxed);
}

MetricsRegistry::ComponentTotals MetricsRegistry::Totals(
    const std::string& component) const {
  ComponentTotals totals;
  auto it = components_.find(component);
  if (it == components_.end()) return totals;
  for (const auto& task : it->second.tasks) {
    totals.executed += task->executed.load(std::memory_order_relaxed);
    totals.emitted += task->emitted.load(std::memory_order_relaxed);
    totals.latency_sum_micros += task->latency_sum.load(std::memory_order_relaxed);
    totals.acked += task->acked.load(std::memory_order_relaxed);
    totals.failed += task->failed.load(std::memory_order_relaxed);
    totals.replayed += task->replayed.load(std::memory_order_relaxed);
    totals.checkpoints += task->checkpoints.load(std::memory_order_relaxed);
    totals.checkpoint_restores += task->restores.load(std::memory_order_relaxed);
    totals.checkpoint_restore_failures +=
        task->restore_failures.load(std::memory_order_relaxed);
    totals.deduped += task->deduped.load(std::memory_order_relaxed);
    totals.breaker_trips +=
        task->breaker_trips.load(std::memory_order_relaxed);
  }
  if (totals.executed > 0) {
    totals.avg_latency_micros = static_cast<double>(totals.latency_sum_micros) /
                                static_cast<double>(totals.executed);
  }
  return totals;
}

std::vector<std::string> MetricsRegistry::Components() const {
  std::vector<std::string> out;
  for (const auto& [name, stats] : components_) out.push_back(name);
  return out;
}

void MetricsRegistry::MarkWindowStart(MicrosT now) {
  MutexLock lock(window_mutex_);
  last_snapshot_micros_ = now;
  window_anchored_ = true;
}

std::vector<MetricsRegistry::WindowReport> MetricsRegistry::TakeWindowSnapshot(
    MicrosT now) {
  MutexLock lock(window_mutex_);
  MicrosT window_length =
      (window_anchored_ && now > last_snapshot_micros_)
          ? now - last_snapshot_micros_
          : 0;
  std::vector<WindowReport> window;
  for (auto& [name, stats] : components_) {
    uint64_t executed = 0, latency_sum = 0, acked = 0, failed = 0,
             replayed = 0;
    for (const auto& task : stats.tasks) {
      executed += task->executed.load(std::memory_order_relaxed);
      latency_sum += task->latency_sum.load(std::memory_order_relaxed);
      acked += task->acked.load(std::memory_order_relaxed);
      failed += task->failed.load(std::memory_order_relaxed);
      replayed += task->replayed.load(std::memory_order_relaxed);
    }
    WindowReport report;
    report.window_start = now;
    report.component = name;
    report.executed = executed - stats.last_executed;
    uint64_t latency_delta = latency_sum - stats.last_latency_sum;
    if (report.executed > 0) {
      report.avg_latency_micros = static_cast<double>(latency_delta) /
                                  static_cast<double>(report.executed);
    }
    if (window_length > 0) {
      // Storm's capacity = executed × avg latency / window length: the
      // busy-fraction of the window (Section 5's monitor metric, consumed
      // by the allocation model as the saturation signal).
      report.capacity = static_cast<double>(latency_delta) /
                        static_cast<double>(window_length);
    }
    report.acked = acked - stats.last_acked;
    report.failed = failed - stats.last_failed;
    report.replayed = replayed - stats.last_replayed;
    stats.last_executed = executed;
    stats.last_latency_sum = latency_sum;
    stats.last_acked = acked;
    stats.last_failed = failed;
    stats.last_replayed = replayed;
    window.push_back(report);
    reports_.push_back(window.back());
  }
  last_snapshot_micros_ = now;
  window_anchored_ = true;
  return window;
}

std::vector<MetricsRegistry::WindowReport> MetricsRegistry::window_reports()
    const {
  MutexLock lock(window_mutex_);
  return reports_;
}

}  // namespace dsps
}  // namespace insight
