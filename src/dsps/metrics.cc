#include "dsps/metrics.h"

#include "common/logging.h"

namespace insight {
namespace dsps {

void MetricsRegistry::DeclareComponent(const std::string& component,
                                       int num_tasks) {
  ComponentStats& stats = components_[component];
  stats.tasks.clear();
  for (int i = 0; i < num_tasks; ++i) {
    stats.tasks.push_back(std::make_unique<TaskStats>());
  }
}

MetricsRegistry::TaskStats& MetricsRegistry::StatsFor(
    const std::string& component, int task) {
  auto it = components_.find(component);
  INSIGHT_CHECK(it != components_.end()) << "undeclared component " << component;
  return *it->second.tasks[static_cast<size_t>(task)];
}

void MetricsRegistry::Record(const std::string& component, int task,
                             MicrosT latency_micros) {
  TaskStats& stats = StatsFor(component, task);
  stats.executed.fetch_add(1, std::memory_order_relaxed);
  stats.latency_sum.fetch_add(static_cast<uint64_t>(latency_micros),
                              std::memory_order_relaxed);
  stats.latency_histogram.Record(latency_micros);
}

void MetricsRegistry::RecordEmit(const std::string& component, int task,
                                 uint64_t count) {
  StatsFor(component, task).emitted.fetch_add(count, std::memory_order_relaxed);
}

void MetricsRegistry::RecordAck(const std::string& component, int task,
                                uint64_t count) {
  StatsFor(component, task).acked.fetch_add(count, std::memory_order_relaxed);
}

void MetricsRegistry::RecordFail(const std::string& component, int task,
                                 uint64_t count) {
  StatsFor(component, task).failed.fetch_add(count, std::memory_order_relaxed);
}

void MetricsRegistry::RecordReplay(const std::string& component, int task,
                                   uint64_t count) {
  StatsFor(component, task).replayed.fetch_add(count,
                                               std::memory_order_relaxed);
}

void MetricsRegistry::RecordCheckpoint(const std::string& component, int task) {
  StatsFor(component, task).checkpoints.fetch_add(1, std::memory_order_relaxed);
}

void MetricsRegistry::RecordRestore(const std::string& component, int task) {
  StatsFor(component, task).restores.fetch_add(1, std::memory_order_relaxed);
}

void MetricsRegistry::RecordRestoreFailure(const std::string& component,
                                           int task) {
  StatsFor(component, task)
      .restore_failures.fetch_add(1, std::memory_order_relaxed);
}

void MetricsRegistry::RecordDedup(const std::string& component, int task) {
  StatsFor(component, task).deduped.fetch_add(1, std::memory_order_relaxed);
}

void MetricsRegistry::RecordBreakerTrip(const std::string& component,
                                        int task) {
  StatsFor(component, task)
      .breaker_trips.fetch_add(1, std::memory_order_relaxed);
}

void MetricsRegistry::RecordShed(const std::string& component, int task,
                                 TuplePriority priority) {
  TaskStats& stats = StatsFor(component, task);
  switch (priority) {
    case TuplePriority::kLow:
      stats.shed_low.fetch_add(1, std::memory_order_relaxed);
      break;
    case TuplePriority::kNormal:
      stats.shed_normal.fetch_add(1, std::memory_order_relaxed);
      break;
    case TuplePriority::kHigh:
      stats.shed_high.fetch_add(1, std::memory_order_relaxed);
      break;
  }
}

void MetricsRegistry::RecordSquelch(const std::string& component, int task) {
  StatsFor(component, task).squelched.fetch_add(1, std::memory_order_relaxed);
}

void MetricsRegistry::RecordMigration(const std::string& component, int task) {
  StatsFor(component, task).migrations.fetch_add(1, std::memory_order_relaxed);
}

void MetricsRegistry::RecordMigrationFailure(const std::string& component,
                                             int task) {
  StatsFor(component, task)
      .migration_failures.fetch_add(1, std::memory_order_relaxed);
}

MetricsRegistry::ComponentTotals MetricsRegistry::Totals(
    const std::string& component) const {
  ComponentTotals totals;
  auto it = components_.find(component);
  if (it == components_.end()) return totals;
  for (const auto& task : it->second.tasks) {
    totals.executed += task->executed.load(std::memory_order_relaxed);
    totals.emitted += task->emitted.load(std::memory_order_relaxed);
    totals.latency_sum_micros += task->latency_sum.load(std::memory_order_relaxed);
    totals.acked += task->acked.load(std::memory_order_relaxed);
    totals.failed += task->failed.load(std::memory_order_relaxed);
    totals.replayed += task->replayed.load(std::memory_order_relaxed);
    totals.checkpoints += task->checkpoints.load(std::memory_order_relaxed);
    totals.checkpoint_restores += task->restores.load(std::memory_order_relaxed);
    totals.checkpoint_restore_failures +=
        task->restore_failures.load(std::memory_order_relaxed);
    totals.deduped += task->deduped.load(std::memory_order_relaxed);
    totals.breaker_trips +=
        task->breaker_trips.load(std::memory_order_relaxed);
    totals.shed_low += task->shed_low.load(std::memory_order_relaxed);
    totals.shed_normal += task->shed_normal.load(std::memory_order_relaxed);
    totals.shed_high += task->shed_high.load(std::memory_order_relaxed);
    totals.squelched += task->squelched.load(std::memory_order_relaxed);
    totals.task_migrations += task->migrations.load(std::memory_order_relaxed);
    totals.migration_failures +=
        task->migration_failures.load(std::memory_order_relaxed);
    totals.latency_histogram.Merge(task->latency_histogram.Snapshot());
  }
  if (totals.executed > 0) {
    totals.avg_latency_micros = static_cast<double>(totals.latency_sum_micros) /
                                static_cast<double>(totals.executed);
  }
  return totals;
}

std::vector<std::string> MetricsRegistry::Components() const {
  std::vector<std::string> out;
  for (const auto& [name, stats] : components_) out.push_back(name);
  return out;
}

MetricsRegistry::TaskTotals MetricsRegistry::TotalsForTask(
    const std::string& component, int task) const {
  TaskTotals totals;
  auto it = components_.find(component);
  if (it == components_.end() || task < 0 ||
      static_cast<size_t>(task) >= it->second.tasks.size()) {
    return totals;
  }
  const TaskStats& stats = *it->second.tasks[static_cast<size_t>(task)];
  totals.executed = stats.executed.load(std::memory_order_relaxed);
  totals.emitted = stats.emitted.load(std::memory_order_relaxed);
  totals.latency_sum_micros =
      stats.latency_sum.load(std::memory_order_relaxed);
  totals.shed = stats.shed_low.load(std::memory_order_relaxed) +
                stats.shed_normal.load(std::memory_order_relaxed) +
                stats.shed_high.load(std::memory_order_relaxed);
  totals.latency_histogram = stats.latency_histogram.Snapshot();
  return totals;
}

int MetricsRegistry::TaskCount(const std::string& component) const {
  auto it = components_.find(component);
  if (it == components_.end()) return 0;
  return static_cast<int>(it->second.tasks.size());
}

void MetricsRegistry::MarkWindowStart(MicrosT now) {
  MutexLock lock(window_mutex_);
  last_snapshot_micros_ = now;
  window_anchored_ = true;
}

std::vector<MetricsRegistry::WindowReport> MetricsRegistry::TakeWindowSnapshot(
    MicrosT now) {
  MutexLock lock(window_mutex_);
  MicrosT window_length =
      (window_anchored_ && now > last_snapshot_micros_)
          ? now - last_snapshot_micros_
          : 0;
  std::vector<WindowReport> window;
  for (auto& [name, stats] : components_) {
    uint64_t executed = 0, latency_sum = 0, acked = 0, failed = 0,
             replayed = 0, checkpoints = 0, restores = 0, restore_failures = 0,
             deduped = 0, breaker_trips = 0, shed = 0, squelched = 0,
             migrations = 0, migration_failures = 0;
    observability::HistogramSnapshot histogram;
    for (const auto& task : stats.tasks) {
      executed += task->executed.load(std::memory_order_relaxed);
      latency_sum += task->latency_sum.load(std::memory_order_relaxed);
      acked += task->acked.load(std::memory_order_relaxed);
      failed += task->failed.load(std::memory_order_relaxed);
      replayed += task->replayed.load(std::memory_order_relaxed);
      checkpoints += task->checkpoints.load(std::memory_order_relaxed);
      restores += task->restores.load(std::memory_order_relaxed);
      restore_failures +=
          task->restore_failures.load(std::memory_order_relaxed);
      deduped += task->deduped.load(std::memory_order_relaxed);
      breaker_trips += task->breaker_trips.load(std::memory_order_relaxed);
      shed += task->shed_low.load(std::memory_order_relaxed) +
              task->shed_normal.load(std::memory_order_relaxed) +
              task->shed_high.load(std::memory_order_relaxed);
      squelched += task->squelched.load(std::memory_order_relaxed);
      migrations += task->migrations.load(std::memory_order_relaxed);
      migration_failures +=
          task->migration_failures.load(std::memory_order_relaxed);
      histogram.Merge(task->latency_histogram.Snapshot());
    }
    WindowReport report;
    report.window_start = window_anchored_ ? last_snapshot_micros_ : now;
    report.window_length_micros = window_length;
    report.component = name;
    report.executed = executed - stats.last_executed;
    uint64_t latency_delta = latency_sum - stats.last_latency_sum;
    if (report.executed > 0) {
      // Weighted by construction: the summed latency delta over the summed
      // executed delta, never an average of per-task averages.
      report.avg_latency_micros = static_cast<double>(latency_delta) /
                                  static_cast<double>(report.executed);
    }
    // Per-window latency distribution: the element-wise delta of the merged
    // cumulative histogram against the previous window's merge (bucket
    // counts only grow, so the subtraction is exact).
    observability::HistogramSnapshot delta;
    for (size_t i = 0; i < observability::HistogramSnapshot::kNumBuckets;
         ++i) {
      delta.counts[i] = histogram.counts[i] - stats.last_histogram.counts[i];
    }
    report.p50_micros = delta.Percentile(50.0);
    report.p95_micros = delta.Percentile(95.0);
    report.p99_micros = delta.Percentile(99.0);
    if (window_length > 0) {
      // Storm's capacity = executed × avg latency / window length: the
      // busy-fraction of the window (Section 5's monitor metric, consumed
      // by the allocation model as the saturation signal).
      report.capacity = static_cast<double>(latency_delta) /
                        static_cast<double>(window_length);
    }
    report.acked = acked - stats.last_acked;
    report.failed = failed - stats.last_failed;
    report.replayed = replayed - stats.last_replayed;
    report.checkpoints = checkpoints - stats.last_checkpoints;
    report.checkpoint_restores = restores - stats.last_restores;
    report.checkpoint_restore_failures =
        restore_failures - stats.last_restore_failures;
    report.deduped = deduped - stats.last_deduped;
    report.breaker_trips = breaker_trips - stats.last_breaker_trips;
    report.shed = shed - stats.last_shed;
    report.squelched = squelched - stats.last_squelched;
    report.task_migrations = migrations - stats.last_migrations;
    report.migration_failures =
        migration_failures - stats.last_migration_failures;
    stats.last_executed = executed;
    stats.last_latency_sum = latency_sum;
    stats.last_acked = acked;
    stats.last_failed = failed;
    stats.last_replayed = replayed;
    stats.last_checkpoints = checkpoints;
    stats.last_restores = restores;
    stats.last_restore_failures = restore_failures;
    stats.last_deduped = deduped;
    stats.last_breaker_trips = breaker_trips;
    stats.last_shed = shed;
    stats.last_squelched = squelched;
    stats.last_migrations = migrations;
    stats.last_migration_failures = migration_failures;
    stats.last_histogram = histogram;
    window.push_back(report);
    reports_.push_back(window.back());
  }
  last_snapshot_micros_ = now;
  window_anchored_ = true;
  return window;
}

std::vector<MetricsRegistry::WindowReport> MetricsRegistry::window_reports()
    const {
  MutexLock lock(window_mutex_);
  return reports_;
}

observability::MetricsSnapshot MetricsRegistry::PrometheusSnapshot() const {
  observability::MetricsSnapshot snapshot;
  struct CounterSpec {
    const char* name;
    const char* help;
    uint64_t ComponentTotals::* field;
  };
  static constexpr CounterSpec kCounters[] = {
      {"insight_tuples_executed_total", "Tuples executed",
       &ComponentTotals::executed},
      {"insight_tuples_emitted_total", "Tuples emitted",
       &ComponentTotals::emitted},
      {"insight_tuples_acked_total", "Tuple trees fully acked",
       &ComponentTotals::acked},
      {"insight_tuples_failed_total", "Tuple trees failed (timeout)",
       &ComponentTotals::failed},
      {"insight_tuples_replayed_total", "Root tuples re-emitted",
       &ComponentTotals::replayed},
      {"insight_checkpoints_total", "State snapshots durably persisted",
       &ComponentTotals::checkpoints},
      {"insight_checkpoint_restores_total",
       "State restores applied after a relaunch",
       &ComponentTotals::checkpoint_restores},
      {"insight_checkpoint_restore_failures_total",
       "Corrupt or unloadable snapshots",
       &ComponentTotals::checkpoint_restore_failures},
      {"insight_tuples_deduped_total", "Replayed duplicates suppressed",
       &ComponentTotals::deduped},
      {"insight_breaker_trips_total", "Executors permanently failed",
       &ComponentTotals::breaker_trips},
      {"insight_task_migrations_total", "Live task migrations completed",
       &ComponentTotals::task_migrations},
      {"insight_migration_failures_total",
       "Live task migrations aborted and rolled back",
       &ComponentTotals::migration_failures},
  };
  std::vector<std::string> names = Components();
  std::vector<ComponentTotals> totals;
  totals.reserve(names.size());
  for (const std::string& name : names) totals.push_back(Totals(name));
  for (const CounterSpec& spec : kCounters) {
    observability::CounterFamily family;
    family.name = spec.name;
    family.help = spec.help;
    for (size_t i = 0; i < names.size(); ++i) {
      family.samples.push_back({"component=\"" + names[i] + "\"",
                                static_cast<double>(totals[i].*spec.field)});
    }
    snapshot.counters.push_back(std::move(family));
  }
  // Overload families (see dsps/overload.h): sheds carry a priority label on
  // top of the component label, squelches only the component. Emitted even
  // when overload protection is off (all-zero) so dashboards never lose the
  // series.
  {
    observability::CounterFamily shed;
    shed.name = "insight_tuples_shed_total";
    shed.help = "Tuples dropped by priority-aware load shedding";
    struct ShedSpec {
      const char* priority;
      uint64_t ComponentTotals::* field;
    };
    static constexpr ShedSpec kShed[] = {
        {"low", &ComponentTotals::shed_low},
        {"normal", &ComponentTotals::shed_normal},
        {"high", &ComponentTotals::shed_high},
    };
    for (size_t i = 0; i < names.size(); ++i) {
      for (const ShedSpec& spec : kShed) {
        shed.samples.push_back(
            {"component=\"" + names[i] + "\",priority=\"" + spec.priority +
                 "\"",
             static_cast<double>(totals[i].*spec.field)});
      }
    }
    snapshot.counters.push_back(std::move(shed));
    observability::CounterFamily squelched;
    squelched.name = "insight_squelched_sources_total";
    squelched.help = "Emitting tasks that entered the squelched state";
    for (size_t i = 0; i < names.size(); ++i) {
      squelched.samples.push_back(
          {"component=\"" + names[i] + "\"",
           static_cast<double>(totals[i].squelched)});
    }
    snapshot.counters.push_back(std::move(squelched));
    observability::CounterFamily stalled;
    stalled.name = "insight_credits_stalled_ns_total";
    stalled.help = "Producer wall time stalled awaiting flow-control credits";
    stalled.samples.push_back(
        {"", static_cast<double>(credits_stalled_ns())});
    snapshot.counters.push_back(std::move(stalled));
  }
  // Transport counter families: process-wide (unlabelled) so the exporter
  // stays complete when the registry belongs to a distributed worker.
  struct TransportSpec {
    const char* name;
    const char* help;
    uint64_t TransportTotals::* field;
  };
  static constexpr TransportSpec kTransport[] = {
      {"insight_net_frames_sent_total", "Data-plane frames sent",
       &TransportTotals::frames_sent},
      {"insight_net_bytes_sent_total", "Data-plane bytes sent",
       &TransportTotals::bytes_sent},
      {"insight_net_frames_received_total", "Data-plane frames received",
       &TransportTotals::frames_received},
      {"insight_net_bytes_received_total", "Data-plane bytes received",
       &TransportTotals::bytes_received},
      {"insight_net_reconnects_total",
       "Data-plane connection (re)establishments",
       &TransportTotals::reconnects},
      {"insight_net_requeued_tuples_total",
       "In-flight tuples requeued for retransmission",
       &TransportTotals::requeued_tuples},
  };
  TransportTotals transport = transport_totals();
  for (const TransportSpec& spec : kTransport) {
    observability::CounterFamily family;
    family.name = spec.name;
    family.help = spec.help;
    family.samples.push_back(
        {"", static_cast<double>(transport.*spec.field)});
    snapshot.counters.push_back(std::move(family));
  }
  observability::HistogramFamily latency;
  latency.name = "insight_execute_latency_micros";
  latency.help = "Per-tuple execute latency, microseconds";
  for (size_t i = 0; i < names.size(); ++i) {
    latency.samples.push_back(
        {"component=\"" + names[i] + "\"", totals[i].latency_histogram,
         static_cast<double>(totals[i].latency_sum_micros)});
  }
  snapshot.histograms.push_back(std::move(latency));
  return snapshot;
}

}  // namespace dsps
}  // namespace insight
