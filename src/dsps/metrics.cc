#include "dsps/metrics.h"

#include "common/logging.h"

namespace insight {
namespace dsps {

void MetricsRegistry::DeclareComponent(const std::string& component,
                                       int num_tasks) {
  ComponentStats& stats = components_[component];
  stats.tasks.clear();
  for (int i = 0; i < num_tasks; ++i) {
    stats.tasks.push_back(std::make_unique<TaskStats>());
  }
}

void MetricsRegistry::Record(const std::string& component, int task,
                             MicrosT latency_micros) {
  auto it = components_.find(component);
  INSIGHT_CHECK(it != components_.end()) << "undeclared component " << component;
  TaskStats& stats = *it->second.tasks[static_cast<size_t>(task)];
  stats.executed.fetch_add(1, std::memory_order_relaxed);
  stats.latency_sum.fetch_add(static_cast<uint64_t>(latency_micros),
                              std::memory_order_relaxed);
}

void MetricsRegistry::RecordEmit(const std::string& component, int task,
                                 uint64_t count) {
  auto it = components_.find(component);
  INSIGHT_CHECK(it != components_.end()) << "undeclared component " << component;
  it->second.tasks[static_cast<size_t>(task)]->emitted.fetch_add(
      count, std::memory_order_relaxed);
}

MetricsRegistry::ComponentTotals MetricsRegistry::Totals(
    const std::string& component) const {
  ComponentTotals totals;
  auto it = components_.find(component);
  if (it == components_.end()) return totals;
  for (const auto& task : it->second.tasks) {
    totals.executed += task->executed.load(std::memory_order_relaxed);
    totals.emitted += task->emitted.load(std::memory_order_relaxed);
    totals.latency_sum_micros += task->latency_sum.load(std::memory_order_relaxed);
  }
  if (totals.executed > 0) {
    totals.avg_latency_micros = static_cast<double>(totals.latency_sum_micros) /
                                static_cast<double>(totals.executed);
  }
  return totals;
}

std::vector<std::string> MetricsRegistry::Components() const {
  std::vector<std::string> out;
  for (const auto& [name, stats] : components_) out.push_back(name);
  return out;
}

std::vector<MetricsRegistry::WindowReport> MetricsRegistry::TakeWindowSnapshot(
    MicrosT now) {
  std::lock_guard<std::mutex> lock(window_mutex_);
  std::vector<WindowReport> window;
  for (auto& [name, stats] : components_) {
    uint64_t executed = 0, latency_sum = 0;
    for (const auto& task : stats.tasks) {
      executed += task->executed.load(std::memory_order_relaxed);
      latency_sum += task->latency_sum.load(std::memory_order_relaxed);
    }
    WindowReport report;
    report.window_start = now;
    report.component = name;
    report.executed = executed - stats.last_executed;
    uint64_t latency_delta = latency_sum - stats.last_latency_sum;
    if (report.executed > 0) {
      report.avg_latency_micros = static_cast<double>(latency_delta) /
                                  static_cast<double>(report.executed);
    }
    stats.last_executed = executed;
    stats.last_latency_sum = latency_sum;
    window.push_back(report);
    reports_.push_back(window.back());
  }
  return window;
}

std::vector<MetricsRegistry::WindowReport> MetricsRegistry::window_reports()
    const {
  std::lock_guard<std::mutex> lock(window_mutex_);
  return reports_;
}

}  // namespace dsps
}  // namespace insight
