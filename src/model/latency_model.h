#ifndef INSIGHT_MODEL_LATENCY_MODEL_H_
#define INSIGHT_MODEL_LATENCY_MODEL_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/status.h"
#include "model/regression.h"

namespace insight {
namespace model {

/// Characteristics of one rule, as the estimation model of Section 4.1.4
/// sees it: the window length `l` and the number of thresholds `t` it joins
/// with are "the two main components that affect the latency of a rule"
/// (Table 3). Rules whose format differs from the generic template carry a
/// measured single-engine latency instead (Section 4.1.4: "we calculate the
/// latency of the rule running in a single engine and then insert in the
/// second function this information").
struct RuleCharacteristics {
  double window_length = 1;
  double num_thresholds = 0;
  double weight = 1.0;
  std::optional<double> measured_latency_micros;
};

/// One measured observation for recalibrating Function 1 from live runtime
/// metrics: the rule configuration a component ran, the mean execute latency
/// one monitor window reported for it, and how many executions the window
/// averaged over. Mirrors dsps::MetricsRegistry::WindowReport without
/// depending on the runtime layer — callers (benchmarks) convert.
struct WindowMeasurement {
  double window_length = 1;
  double num_thresholds = 0;
  double avg_latency_micros = 0;
  uint64_t executed = 0;
};

/// The three-function latency estimation model of Figure 7:
///   Function 1 (Table 3): rule latency        <- (window length, thresholds)
///   Function 2 (Table 4): engine latency      <- (rule latency, rule latency),
///                         chained sequentially for more than two rules
///   Function 3 (Table 5): co-located latency  <- (own engine latency,
///                         summed latency of the other engines on the node)
/// All latencies are microseconds per input tuple.
class LatencyModel {
 public:
  /// A model with calibrated default coefficients for this repo's CEP engine
  /// (fit by bench_fig09_regression; see EXPERIMENTS.md).
  static LatencyModel Default();

  /// A model around explicit regressions. f1: 2 inputs; f2: 2 inputs;
  /// f3: 2 inputs.
  LatencyModel(PolynomialRegression f1, PolynomialRegression f2,
               PolynomialRegression f3);

  /// Function 1.
  double SingleRuleLatency(double window_length, double num_thresholds) const;
  double RuleLatency(const RuleCharacteristics& rule) const;

  /// Function 2 for exactly two rule latencies.
  double CombineTwo(double latency1, double latency2) const;

  /// Engine latency for a set of rules: Function 1 per rule, then Function 2
  /// chained ("if we place more than 2 rules we will call this function
  /// sequentially").
  double EngineLatency(const std::vector<RuleCharacteristics>& rules) const;

  /// Function 3: engine latency after co-location with other engines on the
  /// same cluster node.
  double ColocatedLatency(double own_latency,
                          const std::vector<double>& other_latencies) const;

  /// Full Figure 7 pipeline: per-engine rule sets and a node id per engine;
  /// returns the adjusted latency per engine.
  std::vector<double> EstimateAll(
      const std::vector<std::vector<RuleCharacteristics>>& engine_rules,
      const std::vector<int>& engine_node) const;

  /// Refits Function 1 from live window reports (the observability feedback
  /// loop: monitor windows -> measured averages -> recalibrated model).
  /// Weighted least squares with each observation weighted by its execution
  /// count; empty windows (executed == 0) contribute nothing. Keeps the
  /// current f1 on failure (too few distinct observations, singular system).
  Status FitFromWindowReports(
      const std::vector<WindowMeasurement>& measurements);

  const PolynomialRegression& f1() const { return f1_; }
  const PolynomialRegression& f2() const { return f2_; }
  const PolynomialRegression& f3() const { return f3_; }
  PolynomialRegression* mutable_f1() { return &f1_; }
  PolynomialRegression* mutable_f2() { return &f2_; }
  PolynomialRegression* mutable_f3() { return &f3_; }

 private:
  PolynomialRegression f1_;
  PolynomialRegression f2_;
  PolynomialRegression f3_;
};

/// Bounded accumulator of live WindowMeasurements feeding periodic Function 1
/// refits — the elastic controller's "refit the latency model live" loop.
/// Keeps the newest `capacity` non-empty windows and refits once at least
/// `min_measurements` are held AND `min_new_executions` executions arrived
/// since the last refit attempt, so a quiet stream never burns solver time.
/// Not thread-safe: owned and driven by a single control loop.
class RollingRefit {
 public:
  struct Options {
    size_t capacity = 64;
    size_t min_measurements = 8;
    uint64_t min_new_executions = 1;
  };

  RollingRefit() = default;
  explicit RollingRefit(Options options) : options_(options) {}

  /// Adds one window; empty windows (executed == 0) are ignored.
  void Observe(const WindowMeasurement& measurement);

  /// Refits `model`'s Function 1 from the held windows when enough fresh
  /// signal accumulated. Returns true when the model was updated. A failed
  /// fit (singular system, too few distinct configurations) keeps the model
  /// untouched and re-arms the new-execution gate, so the solver is not
  /// retried every tick on the same data.
  bool MaybeRefit(LatencyModel* model);

  size_t size() const { return window_.size(); }
  uint64_t refits() const { return refits_; }

 private:
  Options options_;
  std::vector<WindowMeasurement> window_;  // ring, newest overwrite oldest
  size_t next_ = 0;
  uint64_t new_executions_ = 0;
  uint64_t refits_ = 0;
};

}  // namespace model
}  // namespace insight

#endif  // INSIGHT_MODEL_LATENCY_MODEL_H_
