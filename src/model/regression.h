#ifndef INSIGHT_MODEL_REGRESSION_H_
#define INSIGHT_MODEL_REGRESSION_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace insight {
namespace model {

/// Multivariate polynomial least-squares regression (Section 5.1 uses first
/// and second order polynomials over one or two inputs). The feature
/// expansion includes every monomial of total degree <= `degree`, cross terms
/// included; fitting solves the normal equations with partially pivoted
/// Gaussian elimination.
class PolynomialRegression {
 public:
  PolynomialRegression(int num_inputs, int degree);

  /// Fits coefficients to the samples. X rows must have `num_inputs`
  /// columns; requires at least num_terms() samples.
  Status Fit(const std::vector<std::vector<double>>& x,
             const std::vector<double>& y);

  /// Weighted least squares: solves (F^T W F) c = F^T W y with one
  /// non-negative weight per sample. Measured window averages come from
  /// unequal execution counts, so each observation's weight is its sample
  /// size — an unweighted fit would let a near-empty window pull the curve
  /// as hard as a saturated one.
  Status Fit(const std::vector<std::vector<double>>& x,
             const std::vector<double>& y, const std::vector<double>& weights);

  /// Prediction with the current coefficients (zero before Fit).
  double Predict(const std::vector<double>& x) const;

  double MeanAbsoluteError(const std::vector<std::vector<double>>& x,
                           const std::vector<double>& y) const;
  double MeanSquaredError(const std::vector<std::vector<double>>& x,
                          const std::vector<double>& y) const;

  /// Exponent vectors of the monomials, aligned with coefficients(). The
  /// first term is always the constant (all zero exponents).
  const std::vector<std::vector<int>>& terms() const { return terms_; }
  const std::vector<double>& coefficients() const { return coefficients_; }
  /// Overrides coefficients (used to install pre-calibrated models).
  Status SetCoefficients(std::vector<double> coefficients);

  size_t num_terms() const { return terms_.size(); }
  int num_inputs() const { return num_inputs_; }
  int degree() const { return degree_; }
  bool fitted() const { return fitted_; }

  /// Human-readable formula like "2.47 + 0.0078*x0 + 2.3e-05*x1".
  std::string ToString() const;

 private:
  double EvalTerm(size_t term, const std::vector<double>& x) const;

  int num_inputs_;
  int degree_;
  std::vector<std::vector<int>> terms_;
  std::vector<double> coefficients_;
  bool fitted_ = false;
};

/// Solves A x = b (dense, square) by Gaussian elimination with partial
/// pivoting. Fails on (numerically) singular systems.
Status SolveLinearSystem(std::vector<std::vector<double>> a,
                         std::vector<double> b, std::vector<double>* x);

}  // namespace model
}  // namespace insight

#endif  // INSIGHT_MODEL_REGRESSION_H_
