#include "model/regression.h"

#include <cmath>
#include <functional>

#include "common/strings.h"

namespace insight {
namespace model {

namespace {

/// Generates all exponent vectors over `n` variables, constant term first,
/// then by increasing total degree up to `degree`.
void GenerateTerms(int n, int degree, std::vector<std::vector<int>>* out) {
  std::vector<int> current(static_cast<size_t>(n), 0);
  std::function<void(int, int, int)> rec = [&](int var, int remaining,
                                               int target) {
    if (var == n) {
      if (remaining == 0) out->push_back(current);
      return;
    }
    // Higher exponents on earlier variables first, so degree-1 terms come in
    // input order (x0, x1, ...).
    for (int e = remaining; e >= 0; --e) {
      current[static_cast<size_t>(var)] = e;
      rec(var + 1, remaining - e, target);
    }
    current[static_cast<size_t>(var)] = 0;
  };
  for (int d = 0; d <= degree; ++d) rec(0, d, d);
}

}  // namespace

Status SolveLinearSystem(std::vector<std::vector<double>> a,
                         std::vector<double> b, std::vector<double>* x) {
  size_t n = a.size();
  if (n == 0 || b.size() != n) {
    return Status::InvalidArgument("linear system dimensions mismatch");
  }
  for (size_t col = 0; col < n; ++col) {
    // Partial pivot.
    size_t pivot = col;
    for (size_t row = col + 1; row < n; ++row) {
      if (std::fabs(a[row][col]) > std::fabs(a[pivot][col])) pivot = row;
    }
    if (std::fabs(a[pivot][col]) < 1e-12) {
      return Status::InvalidArgument("singular system (collinear features?)");
    }
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    for (size_t row = col + 1; row < n; ++row) {
      double factor = a[row][col] / a[col][col];
      for (size_t k = col; k < n; ++k) a[row][k] -= factor * a[col][k];
      b[row] -= factor * b[col];
    }
  }
  x->assign(n, 0.0);
  for (size_t i = n; i-- > 0;) {
    double sum = b[i];
    for (size_t k = i + 1; k < n; ++k) sum -= a[i][k] * (*x)[k];
    (*x)[i] = sum / a[i][i];
  }
  return Status::OK();
}

PolynomialRegression::PolynomialRegression(int num_inputs, int degree)
    : num_inputs_(num_inputs), degree_(degree) {
  GenerateTerms(num_inputs, degree, &terms_);
  coefficients_.assign(terms_.size(), 0.0);
}

double PolynomialRegression::EvalTerm(size_t term,
                                      const std::vector<double>& x) const {
  double v = 1.0;
  const std::vector<int>& exps = terms_[term];
  for (size_t i = 0; i < exps.size(); ++i) {
    for (int e = 0; e < exps[i]; ++e) v *= x[i];
  }
  return v;
}

Status PolynomialRegression::Fit(const std::vector<std::vector<double>>& x,
                                 const std::vector<double>& y) {
  return Fit(x, y, std::vector<double>(x.size(), 1.0));
}

Status PolynomialRegression::Fit(const std::vector<std::vector<double>>& x,
                                 const std::vector<double>& y,
                                 const std::vector<double>& weights) {
  if (x.size() != y.size() || x.size() != weights.size()) {
    return Status::InvalidArgument("X, y and weight sample counts differ");
  }
  size_t m = terms_.size();
  if (x.size() < m) {
    return Status::InvalidArgument(
        StrFormat("need at least %zu samples for %zu terms", m, m));
  }
  for (const auto& row : x) {
    if (row.size() != static_cast<size_t>(num_inputs_)) {
      return Status::InvalidArgument("sample dimension mismatch");
    }
  }
  for (double w : weights) {
    if (w < 0.0) return Status::InvalidArgument("negative sample weight");
  }
  // Weighted normal equations: (F^T W F) c = F^T W y.
  std::vector<std::vector<double>> ata(m, std::vector<double>(m, 0.0));
  std::vector<double> aty(m, 0.0);
  std::vector<double> features(m);
  for (size_t s = 0; s < x.size(); ++s) {
    double w = weights[s];
    if (w == 0.0) continue;
    for (size_t t = 0; t < m; ++t) features[t] = EvalTerm(t, x[s]);
    for (size_t i = 0; i < m; ++i) {
      for (size_t j = i; j < m; ++j) {
        ata[i][j] += w * features[i] * features[j];
      }
      aty[i] += w * features[i] * y[s];
    }
  }
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < i; ++j) ata[i][j] = ata[j][i];
  }
  INSIGHT_RETURN_NOT_OK(SolveLinearSystem(std::move(ata), std::move(aty),
                                          &coefficients_));
  fitted_ = true;
  return Status::OK();
}

double PolynomialRegression::Predict(const std::vector<double>& x) const {
  double y = 0.0;
  for (size_t t = 0; t < terms_.size(); ++t) {
    y += coefficients_[t] * EvalTerm(t, x);
  }
  return y;
}

double PolynomialRegression::MeanAbsoluteError(
    const std::vector<std::vector<double>>& x,
    const std::vector<double>& y) const {
  if (x.empty()) return 0.0;
  double total = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    total += std::fabs(Predict(x[i]) - y[i]);
  }
  return total / static_cast<double>(x.size());
}

double PolynomialRegression::MeanSquaredError(
    const std::vector<std::vector<double>>& x,
    const std::vector<double>& y) const {
  if (x.empty()) return 0.0;
  double total = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    double d = Predict(x[i]) - y[i];
    total += d * d;
  }
  return total / static_cast<double>(x.size());
}

Status PolynomialRegression::SetCoefficients(std::vector<double> coefficients) {
  if (coefficients.size() != terms_.size()) {
    return Status::InvalidArgument(
        StrFormat("expected %zu coefficients, got %zu", terms_.size(),
                  coefficients.size()));
  }
  coefficients_ = std::move(coefficients);
  fitted_ = true;
  return Status::OK();
}

std::string PolynomialRegression::ToString() const {
  std::string out;
  for (size_t t = 0; t < terms_.size(); ++t) {
    if (t > 0) out += " + ";
    out += StrFormat("%g", coefficients_[t]);
    for (size_t i = 0; i < terms_[t].size(); ++i) {
      for (int e = 0; e < terms_[t][i]; ++e) {
        out += StrFormat("*x%zu", i);
      }
    }
  }
  return out;
}

}  // namespace model
}  // namespace insight
