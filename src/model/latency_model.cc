#include "model/latency_model.h"

#include <algorithm>

#include "common/logging.h"

namespace insight {
namespace model {

LatencyModel::LatencyModel(PolynomialRegression f1, PolynomialRegression f2,
                           PolynomialRegression f3)
    : f1_(std::move(f1)), f2_(std::move(f2)), f3_(std::move(f3)) {
  INSIGHT_CHECK(f1_.num_inputs() == 2) << "Function 1 takes (window, thresholds)";
  INSIGHT_CHECK(f2_.num_inputs() == 2) << "Function 2 takes (latency1, latency2)";
  INSIGHT_CHECK(f3_.num_inputs() == 2)
      << "Function 3 takes (own latency, co-located latency)";
}

LatencyModel LatencyModel::Default() {
  // Calibrated against this repo's cep::Engine on the generic rule template
  // (bench_fig09_regression reproduces the fit): the per-tuple cost is a
  // small constant for the join machinery, ~1.1 us per window element (the
  // aggregate is recomputed over the filled group window) and a weak linear
  // term in the number of thresholds (indexed lookups keep it small).
  PolynomialRegression f1(2, 1);
  INSIGHT_CHECK(f1.SetCoefficients({0.5, 1.1, 0.012}).ok());
  // Engines process their rules serially per tuple: additive with a small
  // per-rule dispatch overhead.
  PolynomialRegression f2(2, 1);
  INSIGHT_CHECK(f2.SetCoefficients({0.3, 1.0, 1.0}).ok());
  // One core per node: co-located engines timeshare, so the tuple service
  // time inflates by the co-located work.
  PolynomialRegression f3(2, 1);
  INSIGHT_CHECK(f3.SetCoefficients({0.0, 1.0, 1.0}).ok());
  return LatencyModel(std::move(f1), std::move(f2), std::move(f3));
}

double LatencyModel::SingleRuleLatency(double window_length,
                                       double num_thresholds) const {
  return std::max(0.0, f1_.Predict({window_length, num_thresholds}));
}

double LatencyModel::RuleLatency(const RuleCharacteristics& rule) const {
  if (rule.measured_latency_micros.has_value()) {
    return *rule.measured_latency_micros;
  }
  return SingleRuleLatency(rule.window_length, rule.num_thresholds);
}

double LatencyModel::CombineTwo(double latency1, double latency2) const {
  return std::max(0.0, f2_.Predict({latency1, latency2}));
}

double LatencyModel::EngineLatency(
    const std::vector<RuleCharacteristics>& rules) const {
  if (rules.empty()) return 0.0;
  double combined = RuleLatency(rules[0]);
  for (size_t i = 1; i < rules.size(); ++i) {
    combined = CombineTwo(combined, RuleLatency(rules[i]));
  }
  return combined;
}

double LatencyModel::ColocatedLatency(
    double own_latency, const std::vector<double>& other_latencies) const {
  double others = 0.0;
  for (double l : other_latencies) others += l;
  if (others == 0.0) return own_latency;
  return std::max(own_latency, f3_.Predict({own_latency, others}));
}

Status LatencyModel::FitFromWindowReports(
    const std::vector<WindowMeasurement>& measurements) {
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  std::vector<double> weights;
  for (const WindowMeasurement& m : measurements) {
    if (m.executed == 0) continue;
    x.push_back({m.window_length, m.num_thresholds});
    y.push_back(m.avg_latency_micros);
    weights.push_back(static_cast<double>(m.executed));
  }
  PolynomialRegression candidate(f1_.num_inputs(), f1_.degree());
  INSIGHT_RETURN_NOT_OK(candidate.Fit(x, y, weights));
  f1_ = std::move(candidate);
  return Status::OK();
}

std::vector<double> LatencyModel::EstimateAll(
    const std::vector<std::vector<RuleCharacteristics>>& engine_rules,
    const std::vector<int>& engine_node) const {
  INSIGHT_CHECK(engine_rules.size() == engine_node.size())
      << "one node id per engine required";
  size_t n = engine_rules.size();
  std::vector<double> base(n);
  for (size_t i = 0; i < n; ++i) base[i] = EngineLatency(engine_rules[i]);
  std::vector<double> adjusted(n);
  for (size_t i = 0; i < n; ++i) {
    std::vector<double> others;
    for (size_t j = 0; j < n; ++j) {
      if (j != i && engine_node[j] == engine_node[i]) others.push_back(base[j]);
    }
    adjusted[i] = ColocatedLatency(base[i], others);
  }
  return adjusted;
}

void RollingRefit::Observe(const WindowMeasurement& measurement) {
  if (measurement.executed == 0) return;
  if (window_.size() < options_.capacity) {
    window_.push_back(measurement);
  } else {
    window_[next_] = measurement;
    next_ = (next_ + 1) % options_.capacity;
  }
  new_executions_ += measurement.executed;
}

bool RollingRefit::MaybeRefit(LatencyModel* model) {
  if (window_.size() < options_.min_measurements) return false;
  if (new_executions_ < options_.min_new_executions) return false;
  new_executions_ = 0;  // re-arm whether or not the fit succeeds
  if (!model->FitFromWindowReports(window_).ok()) return false;
  ++refits_;
  return true;
}

}  // namespace model
}  // namespace insight
