#include "observability/trace.h"

#include <algorithm>
#include <cmath>

namespace insight {
namespace observability {

Tracer::Tracer(Options options) : options_(options) {
  double rate = std::clamp(options_.sample_rate, 0.0, 1.0);
  options_.sample_rate = rate;
  if (rate > 0.0) {
    sample_every_ = static_cast<uint64_t>(std::llround(1.0 / rate));
    if (sample_every_ == 0) sample_every_ = 1;
  }
  if (options_.max_spans == 0) options_.max_spans = 1;
}

uint64_t Tracer::MaybeStartTrace(MicrosT now, bool open_root) {
  if (sample_every_ == 0) return 0;
  uint64_t n = sample_counter_.fetch_add(1, std::memory_order_relaxed);
  if (n % sample_every_ != 0) return 0;
  uint64_t id = next_trace_id_.fetch_add(1, std::memory_order_relaxed);
  if (open_root) {
    MutexLock lock(mutex_);
    if (open_.size() >= options_.max_open) {
      sample_skips_at_cap_.fetch_add(1, std::memory_order_relaxed);
      return 0;
    }
    open_.emplace(id, now);
  }
  started_.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void Tracer::RecordSpan(uint64_t trace_id, SpanKind kind, int component,
                        int task, MicrosT start_micros, MicrosT end_micros) {
  if (trace_id == 0) return;
  TraceSpan span;
  span.trace_id = trace_id;
  span.kind = kind;
  span.component = component;
  span.task = task;
  span.start_micros = start_micros;
  span.end_micros = end_micros;
  MutexLock lock(mutex_);
  if (spans_.size() >= options_.max_spans) {
    spans_.pop_front();
    spans_dropped_.fetch_add(1, std::memory_order_relaxed);
  }
  spans_.push_back(span);
  spans_recorded_.fetch_add(1, std::memory_order_relaxed);
}

bool Tracer::CompleteTrace(uint64_t trace_id, MicrosT now) {
  if (trace_id == 0) return false;
  MicrosT start = 0;
  {
    MutexLock lock(mutex_);
    auto it = open_.find(trace_id);
    if (it == open_.end()) {
      double_completions_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    start = it->second;
    open_.erase(it);
  }
  completed_.fetch_add(1, std::memory_order_relaxed);
  RecordSpan(trace_id, SpanKind::kRoot, /*component=*/-1, /*task=*/-1, start,
             now);
  return true;
}

void Tracer::AbandonTrace(uint64_t trace_id) {
  if (trace_id == 0) return;
  MutexLock lock(mutex_);
  if (open_.erase(trace_id) > 0) {
    abandoned_.fetch_add(1, std::memory_order_relaxed);
  }
}

Tracer::Stats Tracer::stats() const {
  Stats stats;
  stats.started = started_.load(std::memory_order_relaxed);
  stats.completed = completed_.load(std::memory_order_relaxed);
  stats.abandoned = abandoned_.load(std::memory_order_relaxed);
  stats.double_completions =
      double_completions_.load(std::memory_order_relaxed);
  stats.spans_recorded = spans_recorded_.load(std::memory_order_relaxed);
  stats.spans_dropped = spans_dropped_.load(std::memory_order_relaxed);
  stats.sample_skips_at_cap =
      sample_skips_at_cap_.load(std::memory_order_relaxed);
  return stats;
}

std::vector<TraceSpan> Tracer::Spans() const {
  MutexLock lock(mutex_);
  return std::vector<TraceSpan>(spans_.begin(), spans_.end());
}

std::vector<TraceSpan> Tracer::SpansForTrace(uint64_t trace_id) const {
  std::vector<TraceSpan> out;
  MutexLock lock(mutex_);
  for (const TraceSpan& span : spans_) {
    if (span.trace_id == trace_id) out.push_back(span);
  }
  return out;
}

void Tracer::SetComponentNames(std::vector<std::string> names) {
  MutexLock lock(mutex_);
  component_names_ = std::move(names);
}

std::string Tracer::ComponentName(int index) const {
  MutexLock lock(mutex_);
  if (index < 0 || static_cast<size_t>(index) >= component_names_.size()) {
    return "?";
  }
  return component_names_[static_cast<size_t>(index)];
}

}  // namespace observability
}  // namespace insight
