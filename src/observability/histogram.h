#ifndef INSIGHT_OBSERVABILITY_HISTOGRAM_H_
#define INSIGHT_OBSERVABILITY_HISTOGRAM_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>

#include "common/clock.h"
#include "common/static_analysis.h"

namespace insight {
namespace observability {

/// Fixed bucket upper bounds (microseconds) shared by every latency
/// histogram in the system. Fixed — rather than per-histogram — boundaries
/// are what make per-task histograms mergeable at report time with a plain
/// element-wise add, and the exporter's `le` labels stable across runs.
/// Roughly logarithmic from 1 us to 10 s; the last bucket is +Inf.
inline constexpr std::array<double, 22> kLatencyBucketBoundsMicros = {
    1,     2,     5,      10,     25,     50,      100,     250,
    500,   1000,  2500,   5000,   10000,  25000,   50000,   100000,
    250000, 500000, 1000000, 2500000, 5000000, 10000000};

/// Mergeable, non-atomic view of one histogram (a point-in-time copy of the
/// atomic buckets, or a per-window delta, or a cross-task merge).
struct HistogramSnapshot {
  static constexpr size_t kNumBuckets = kLatencyBucketBoundsMicros.size() + 1;

  std::array<uint64_t, kNumBuckets> counts{};

  uint64_t total() const {
    uint64_t n = 0;
    for (uint64_t c : counts) n += c;
    return n;
  }

  void Merge(const HistogramSnapshot& other) {
    for (size_t i = 0; i < kNumBuckets; ++i) counts[i] += other.counts[i];
  }

  /// Estimated value at percentile `p` in [0, 100], linearly interpolated
  /// inside the target bucket. An empty histogram reports 0 (never NaN), and
  /// ranks landing in the +Inf bucket report its lower bound — a floor, the
  /// only honest answer a bounded histogram has there.
  double Percentile(double p) const {
    uint64_t n = total();
    if (n == 0) return 0.0;
    if (p < 0.0) p = 0.0;
    if (p > 100.0) p = 100.0;
    double target = p / 100.0 * static_cast<double>(n);
    uint64_t cumulative = 0;
    for (size_t i = 0; i < kNumBuckets; ++i) {
      uint64_t before = cumulative;
      cumulative += counts[i];
      if (static_cast<double>(cumulative) < target || counts[i] == 0) continue;
      double lower = i == 0 ? 0.0 : kLatencyBucketBoundsMicros[i - 1];
      if (i >= kLatencyBucketBoundsMicros.size()) return lower;
      double upper = kLatencyBucketBoundsMicros[i];
      double fraction = (target - static_cast<double>(before)) /
                        static_cast<double>(counts[i]);
      return lower + (upper - lower) * fraction;
    }
    return kLatencyBucketBoundsMicros.back();
  }
};

/// Lock-free latency histogram: one relaxed atomic increment per Record.
/// One instance per task (like the scalar counters in MetricsRegistry), so
/// the hot path never contends across tasks; report-time readers copy the
/// buckets into a HistogramSnapshot and merge those.
class LatencyHistogram {
 public:
  static constexpr size_t kNumBuckets = HistogramSnapshot::kNumBuckets;

  /// Bucket holding `micros` (branch-light linear scan over a 22-entry
  /// constexpr table; the compiler unrolls it).
  static size_t BucketIndex(MicrosT micros) TMS_NO_ALLOC {
    double v = static_cast<double>(micros);
    for (size_t i = 0; i < kLatencyBucketBoundsMicros.size(); ++i) {
      if (v <= kLatencyBucketBoundsMicros[i]) return i;
    }
    return kNumBuckets - 1;
  }

  void Record(MicrosT micros) TMS_NO_ALLOC {
    buckets_[BucketIndex(micros)].fetch_add(1, std::memory_order_relaxed);
  }

  /// Records `count` samples of the same value in one bucket update (batch
  /// execution paths attribute a block's mean per-tuple latency to every
  /// tuple in it).
  void RecordN(MicrosT micros, uint64_t count) TMS_NO_ALLOC {
    buckets_[BucketIndex(micros)].fetch_add(count, std::memory_order_relaxed);
  }

  HistogramSnapshot Snapshot() const {
    HistogramSnapshot snapshot;
    for (size_t i = 0; i < kNumBuckets; ++i) {
      snapshot.counts[i] = buckets_[i].load(std::memory_order_relaxed);
    }
    return snapshot;
  }

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
};

}  // namespace observability
}  // namespace insight

#endif  // INSIGHT_OBSERVABILITY_HISTOGRAM_H_
