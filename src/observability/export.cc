#include "observability/export.h"

#include <cmath>
#include <cstdio>
#include <utility>

namespace insight {
namespace observability {

namespace {

/// Prometheus-friendly number rendering: integral values (the common case —
/// every counter and bucket count) print without a fraction so golden files
/// are stable; everything else prints as shortest-round-trip %g.
std::string FormatValue(double value) {
  if (std::isfinite(value) && value == std::floor(value) &&
      std::fabs(value) < 9.0e15) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%lld",
                  static_cast<long long>(value));
    return buffer;
  }
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%g", value);
  return buffer;
}

/// `le` label value for bucket `i` of the shared boundary table.
std::string BucketBound(size_t i) {
  if (i >= kLatencyBucketBoundsMicros.size()) return "+Inf";
  return FormatValue(kLatencyBucketBoundsMicros[i]);
}

void AppendSampleLine(std::string* out, const std::string& name,
                      const std::string& labels, double value) {
  *out += name;
  if (!labels.empty()) {
    *out += '{';
    *out += labels;
    *out += '}';
  }
  *out += ' ';
  *out += FormatValue(value);
  *out += '\n';
}

}  // namespace

void MetricsSnapshot::Append(MetricsSnapshot other) {
  for (auto& family : other.counters) counters.push_back(std::move(family));
  for (auto& family : other.histograms) {
    histograms.push_back(std::move(family));
  }
}

MetricsSnapshot TracerSnapshot(const Tracer& tracer) {
  Tracer::Stats stats = tracer.stats();
  MetricsSnapshot snapshot;
  auto add = [&snapshot](const std::string& name, const std::string& help,
                         uint64_t value) {
    CounterFamily family;
    family.name = name;
    family.help = help;
    family.samples.push_back({"", static_cast<double>(value)});
    snapshot.counters.push_back(std::move(family));
  };
  add("insight_traces_started_total", "Sampled root emissions", stats.started);
  add("insight_traces_completed_total",
      "Root spans closed by a final ack", stats.completed);
  add("insight_traces_abandoned_total",
      "Open traces dropped on timeout, replay or permanent failure",
      stats.abandoned);
  add("insight_trace_double_completions_total",
      "CompleteTrace calls on an unknown or already-closed trace",
      stats.double_completions);
  add("insight_trace_spans_recorded_total", "Spans recorded",
      stats.spans_recorded);
  add("insight_trace_spans_dropped_total", "Spans evicted from the ring",
      stats.spans_dropped);
  return snapshot;
}

std::string ExportPrometheusText(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const CounterFamily& family : snapshot.counters) {
    out += "# HELP " + family.name + " " + family.help + "\n";
    out += "# TYPE " + family.name + " counter\n";
    for (const CounterSample& sample : family.samples) {
      AppendSampleLine(&out, family.name, sample.labels, sample.value);
    }
  }
  for (const HistogramFamily& family : snapshot.histograms) {
    out += "# HELP " + family.name + " " + family.help + "\n";
    out += "# TYPE " + family.name + " histogram\n";
    for (const HistogramSample& sample : family.samples) {
      uint64_t cumulative = 0;
      for (size_t i = 0; i < HistogramSnapshot::kNumBuckets; ++i) {
        cumulative += sample.histogram.counts[i];
        std::string labels = sample.labels;
        if (!labels.empty()) labels += ',';
        labels += "le=\"" + BucketBound(i) + "\"";
        AppendSampleLine(&out, family.name + "_bucket", labels,
                         static_cast<double>(cumulative));
      }
      AppendSampleLine(&out, family.name + "_sum", sample.labels, sample.sum);
      AppendSampleLine(&out, family.name + "_count", sample.labels,
                       static_cast<double>(cumulative));
    }
  }
  return out;
}

Status WriteTextFile(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IoError("cannot open " + path + " for writing");
  }
  size_t written = std::fwrite(text.data(), 1, text.size(), f);
  int close_status = std::fclose(f);
  if (written != text.size() || close_status != 0) {
    return Status::IoError("short write to " + path);
  }
  return Status::OK();
}

}  // namespace observability
}  // namespace insight
