#ifndef INSIGHT_OBSERVABILITY_TRACE_H_
#define INSIGHT_OBSERVABILITY_TRACE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace insight {
namespace observability {

/// What one span measures. A sampled tuple tree produces one kRoot span
/// (spout emission to final ack) plus, per bolt hop, one kQueueWait span
/// (staged into the outbox to dequeued for execution — transport + queueing)
/// and one kExecute span (the bolt's Execute call). Dapper-style: spans of
/// one tree share a trace id; there is no parent pointer because the
/// topology's dataflow graph already orders the hops.
enum class SpanKind : uint8_t {
  kRoot = 0,
  kQueueWait = 1,
  kExecute = 2,
};

struct TraceSpan {
  uint64_t trace_id = 0;
  SpanKind kind = SpanKind::kExecute;
  /// Component index in the topology (the runtime registers names with the
  /// tracer; an index keeps span recording allocation-free).
  int component = -1;
  int task = -1;
  MicrosT start_micros = 0;
  MicrosT end_micros = 0;

  MicrosT duration_micros() const { return end_micros - start_micros; }
};

/// Sampled per-tuple trace recorder. The runtime asks it at every root
/// emission whether to sample (deterministic 1-in-N on a shared counter, so
/// rate 1.0 traces everything and tests are reproducible); sampled tuples
/// carry the returned nonzero trace id in their metadata and every
/// instrumentation point records spans against it. Unsampled tuples carry
/// trace id 0 and cost exactly one branch per instrumentation point.
///
/// Span storage is a bounded ring (oldest spans dropped) and the open-trace
/// table is capped, so a tracer never grows without bound no matter how
/// long the topology runs. All methods are thread-safe; the mutex is a leaf
/// lock touched only for sampled tuples.
class Tracer {
 public:
  struct Options {
    /// Fraction of root emissions sampled, in [0, 1]. 0 samples nothing
    /// (but keeps the plumbing active — the "compiled in, sampling off"
    /// configuration the bench-smoke gate bounds).
    double sample_rate = 0.0;
    /// Retained span ring capacity; older spans are dropped.
    size_t max_spans = 65536;
    /// Cap on concurrently open root spans; sampling pauses at the cap.
    size_t max_open = 8192;
  };

  struct Stats {
    uint64_t started = 0;            // sampled root emissions
    uint64_t completed = 0;          // root spans closed by a final ack
    uint64_t abandoned = 0;          // open traces dropped (timeout/replay/fail)
    uint64_t double_completions = 0; // CompleteTrace on a closed/unknown trace
    uint64_t spans_recorded = 0;
    uint64_t spans_dropped = 0;      // ring overflow
    uint64_t sample_skips_at_cap = 0;
  };

  explicit Tracer(Options options);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Sampling decision for one root emission. Returns 0 (not sampled) or a
  /// fresh nonzero trace id. With `open_root` the root span is left open
  /// until CompleteTrace/AbandonTrace (acking topologies); without it the
  /// trace only groups hop spans (no end-to-end ack exists to close it).
  uint64_t MaybeStartTrace(MicrosT now, bool open_root = true);

  /// Records one finished span. No-op for trace_id 0.
  void RecordSpan(uint64_t trace_id, SpanKind kind, int component, int task,
                  MicrosT start_micros, MicrosT end_micros);

  /// Closes the root span at final-ack time. Returns false — and counts a
  /// double completion — if the trace is unknown or already closed, so tests
  /// can assert a tree is never completed twice.
  bool CompleteTrace(uint64_t trace_id, MicrosT now);

  /// Drops an open trace without a root span (tree timed out, was replayed,
  /// or permanently failed; the replayed attempt starts a fresh trace).
  void AbandonTrace(uint64_t trace_id);

  bool enabled() const { return sample_every_ > 0; }
  double sample_rate() const { return options_.sample_rate; }

  Stats stats() const;
  /// Copy of the retained span ring, oldest first.
  std::vector<TraceSpan> Spans() const;
  std::vector<TraceSpan> SpansForTrace(uint64_t trace_id) const;

  /// Component names for span attribution (the runtime registers them once
  /// at construction; index -1 or out of range reads as "?").
  void SetComponentNames(std::vector<std::string> names);
  std::string ComponentName(int index) const;

 private:
  Options options_;
  /// 1-in-N sampling period; 0 = sampling disabled.
  uint64_t sample_every_ = 0;
  std::atomic<uint64_t> sample_counter_{0};
  std::atomic<uint64_t> next_trace_id_{1};

  std::atomic<uint64_t> started_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> abandoned_{0};
  std::atomic<uint64_t> double_completions_{0};
  std::atomic<uint64_t> spans_recorded_{0};
  std::atomic<uint64_t> spans_dropped_{0};
  std::atomic<uint64_t> sample_skips_at_cap_{0};

  mutable Mutex mutex_{TMS_LOCK_RANK(75)};
  std::deque<TraceSpan> spans_ GUARDED_BY(mutex_);
  /// Open root spans: trace id -> start time.
  std::unordered_map<uint64_t, MicrosT> open_ GUARDED_BY(mutex_);
  std::vector<std::string> component_names_ GUARDED_BY(mutex_);
};

}  // namespace observability
}  // namespace insight

#endif  // INSIGHT_OBSERVABILITY_TRACE_H_
