#ifndef INSIGHT_OBSERVABILITY_EXPORT_H_
#define INSIGHT_OBSERVABILITY_EXPORT_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "observability/histogram.h"
#include "observability/trace.h"

namespace insight {
namespace observability {

/// Neutral snapshot model the text exporter serializes. Producers
/// (MetricsRegistry, Tracer) build one of these, so the exporter depends on
/// no subsystem and every subsystem can feed it.
struct CounterSample {
  /// Raw label block without braces, e.g. `component="sink"`; empty for an
  /// unlabelled metric.
  std::string labels;
  double value = 0;
};

struct CounterFamily {
  std::string name;  // full metric name, e.g. insight_tuples_executed_total
  std::string help;
  std::vector<CounterSample> samples;
};

struct HistogramSample {
  std::string labels;
  HistogramSnapshot histogram;
  /// Sum of observed values (Prometheus `_sum`); the bucket counts alone
  /// cannot reconstruct it.
  double sum = 0;
};

struct HistogramFamily {
  std::string name;
  std::string help;
  std::vector<HistogramSample> samples;
};

struct MetricsSnapshot {
  std::vector<CounterFamily> counters;
  std::vector<HistogramFamily> histograms;

  /// Appends another snapshot's families (e.g. tracer counters after the
  /// registry's).
  void Append(MetricsSnapshot other);
};

/// Tracer counters (traces started/completed/abandoned, spans recorded...)
/// as a snapshot, mergeable into a registry export.
MetricsSnapshot TracerSnapshot(const Tracer& tracer);

/// Serializes the snapshot in the Prometheus text exposition format:
/// `# HELP` / `# TYPE` headers, one `name{labels} value` line per counter
/// sample, and cumulative `_bucket{...,le="..."}` / `_sum` / `_count` lines
/// per histogram sample. Deterministic for a given snapshot (golden-file
/// testable): families and samples serialize in the order given.
std::string ExportPrometheusText(const MetricsSnapshot& snapshot);

/// Writes `text` to `path` (whole-file overwrite).
Status WriteTextFile(const std::string& path, const std::string& text);

}  // namespace observability
}  // namespace insight

#endif  // INSIGHT_OBSERVABILITY_EXPORT_H_
