#ifndef INSIGHT_CEP_BATCH_H_
#define INSIGHT_CEP_BATCH_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "cep/event.h"
#include "common/static_analysis.h"

namespace insight {
namespace cep {

class Expr;

/// Column-major batch of events of one registered type. Each field of the
/// schema gets one contiguous typed array (double / int64 / bool bytes /
/// string-dictionary codes), so batch-compiled predicates and accumulators
/// stream over plain arrays instead of chasing per-event Value variants.
///
/// Rows are appended either from a row Value vector (the bolt hand-off path)
/// or through the typed Set* appenders (the zero-conversion ingest path).
/// Lane events — pooled row-oriented `Event`s for a given lane — materialize
/// lazily and are cached until Clear(), so the row-compatible parts of the
/// engine (window retention, SELECT evaluation, snapshots) keep working on
/// exactly the events the row path would have seen.
///
/// Not thread-safe; a batch belongs to the single thread driving one engine.
class EventBatch {
 public:
  explicit EventBatch(EventTypePtr type);

  const EventTypePtr& type_ptr() const { return type_; }
  const EventType& type() const { return *type_; }
  size_t size() const { return timestamps_.size(); }
  bool empty() const { return timestamps_.empty(); }

  /// Appends one row; `values` must match the schema arity and every value's
  /// runtime type must match the declared field type. Returns false (and
  /// appends nothing) otherwise — callers fall back to the row path for that
  /// event.
  bool AppendRow(const std::vector<Value>& values, MicrosT timestamp);

  /// Typed appenders: begin a row, set every field, then end it. Field order
  /// is free but every field must be set exactly once per row (checked in
  /// debug builds at EndRow).
  void BeginRow(MicrosT timestamp) TMS_NO_ALLOC {
    // TMS_ANALYZE_EXEMPT(amortized: column capacity is retained across
    // Clear, so steady-state appends reuse it — bench_hotpath's zero-alloc
    // gate measures exactly this)
    timestamps_.push_back(timestamp);
  }
  void SetInt(int field, int64_t v) TMS_NO_ALLOC {
    // TMS_ANALYZE_EXEMPT(amortized: column capacity retained across Clear)
    cols_[static_cast<size_t>(field)].i.push_back(v);
  }
  void SetDouble(int field, double v) TMS_NO_ALLOC {
    // TMS_ANALYZE_EXEMPT(amortized: column capacity retained across Clear)
    cols_[static_cast<size_t>(field)].d.push_back(v);
  }
  void SetBool(int field, bool v) TMS_NO_ALLOC {
    // TMS_ANALYZE_EXEMPT(amortized: column capacity retained across Clear)
    cols_[static_cast<size_t>(field)].b.push_back(v ? 1 : 0);
  }
  void SetString(int field, const std::string& v) TMS_NO_ALLOC {
    // TMS_ANALYZE_EXEMPT(amortized: the dictionary allocates only for
    // never-before-seen strings; repeated values hit the intern map)
    cols_[static_cast<size_t>(field)].s.push_back(InternString(v));
  }
  void EndRow();

  /// Drops all rows and cached lane events; keeps column capacity and the
  /// string dictionary so steady-state reuse does not allocate.
  void Clear();

  /// Column accessors (nullptr when the field has a different declared type).
  const std::vector<double>* DoubleCol(int field) const {
    const Column& c = cols_[static_cast<size_t>(field)];
    return c.type == ValueType::kDouble ? &c.d : nullptr;
  }
  const std::vector<int64_t>* IntCol(int field) const {
    const Column& c = cols_[static_cast<size_t>(field)];
    return c.type == ValueType::kInt ? &c.i : nullptr;
  }
  const std::vector<uint8_t>* BoolCol(int field) const {
    const Column& c = cols_[static_cast<size_t>(field)];
    return c.type == ValueType::kBool ? &c.b : nullptr;
  }
  /// Dictionary codes; decode with DictString.
  const std::vector<int32_t>* StringCol(int field) const {
    const Column& c = cols_[static_cast<size_t>(field)];
    return c.type == ValueType::kString ? &c.s : nullptr;
  }
  const std::string& DictString(int32_t code) const {
    return dict_[static_cast<size_t>(code)];
  }
  const std::vector<MicrosT>& timestamps() const { return timestamps_; }

  /// The pooled row event for `lane`, materialized on first use and cached
  /// until Clear(). The returned event is bit-identical (type, field values,
  /// timestamp) to the event the row path would have built for this lane.
  const EventPtr& LaneEvent(size_t lane, EventPool* pool) const;

  /// Materializes every lane's event in one column-major pass (one type
  /// switch per field, not per lane×field) — much cheaper than per-lane
  /// LaneEvent calls when a consumer needs all lanes (grouped-window
  /// retention does). Already-cached lanes are kept, not rebuilt.
  void MaterializeAll(EventPool* pool) const;

  /// Direct lane-event access after MaterializeAll; entries for lanes never
  /// materialized are null.
  const std::vector<EventPtr>& lane_events() const { return lane_events_; }

 private:
  struct Column {
    ValueType type = ValueType::kDouble;
    std::vector<double> d;
    std::vector<int64_t> i;
    std::vector<uint8_t> b;
    std::vector<int32_t> s;
  };

  int32_t InternString(const std::string& v);

  EventTypePtr type_;
  std::vector<Column> cols_;
  std::vector<MicrosT> timestamps_;
  /// Batch-lifetime string dictionary (survives Clear, so a stable set of
  /// string values stops allocating after warm-up).
  std::vector<std::string> dict_;
  std::unordered_map<std::string, int32_t> dict_index_;
  /// Lazily materialized lane events, parallel to rows; entries are null
  /// until first requested.
  mutable std::vector<EventPtr> lane_events_;
  /// MaterializeAll scratch (reused so steady state stays allocation-free).
  mutable std::vector<std::vector<Value>> mat_bufs_;
  mutable std::vector<uint32_t> mat_lanes_;
};

/// An expression compiled against an EventBatch's columns: a short register
/// program whose ops are flat per-lane loops (branchless compares, fused
/// arithmetic) that the compiler autovectorizes. With TMS_NO_SIMD defined the
/// same program runs through a lane-at-a-time scalar interpreter — identical
/// results, no vector loops — which is the scalar-fallback build CI exercises.
///
/// Compilation is conservative: it refuses anything whose batch semantics
/// could diverge from the row path's Value semantics (string-typed operands,
/// statically-bool comparison operands, %, aggregates), and the caller falls
/// back to per-lane row evaluation. What does compile is bit-identical to
/// Expr::Eval + Value::AsBool on every lane, NaN and all.
class ColumnProgram {
 public:
  ColumnProgram() = default;

  /// Compiles a boolean-consumed expression (a WHERE conjunct). Every field
  /// reference must resolve into `type` (the batch schema); returns false if
  /// any part is not compilable.
  bool CompileBool(const Expr& expr, const EventType& type);

  /// ANDs this predicate over lanes [0, batch.size()) into `mask` (which must
  /// already be sized to the batch and hold 0/1 lane flags).
  void EvalAndInto(const EventBatch& batch, std::vector<uint8_t>* mask) const
      TMS_NO_ALLOC;

  bool compiled() const { return out_breg_ >= 0; }

 private:
  enum class Op : uint8_t {
    kLoadD,      // dreg[dst] = double column `col`
    kLoadI,      // dreg[dst] = (double) int column `col`
    kLoadB,      // breg[dst] = bool column `col`
    kConstD,     // dreg[dst] = imm
    kConstB,     // breg[dst] = imm != 0
    kBoolFromD,  // breg[dst] = dreg[a] != 0.0   (Value::AsBool on numerics)
    kNumFromB,   // dreg[dst] = breg[a] ? 1.0 : 0.0  (Value::AsDouble on bool)
    kAdd,        // dreg[dst] = dreg[a] + dreg[b]
    kSub,
    kMul,
    kDiv,  // denom == 0 -> 0.0, mirroring BinaryExpr::Eval
    kNeg,
    kCmpEq,  // breg[dst] = dreg[a] == dreg[b]
    kCmpNe,
    kCmpLt,
    kCmpLe,
    kCmpGt,
    kCmpGe,
    kAnd,  // breg[dst] = breg[a] & breg[b] (operands are effect-free, so
    kOr,   // eager evaluation matches the row path's short-circuit exactly)
    kNot,
  };
  struct Ins {
    Op op;
    int16_t dst = 0;
    int16_t a = 0;
    int16_t b = 0;
    int32_t col = 0;
    double imm = 0.0;
  };
  /// A compiled operand: a register of one of the two kinds.
  struct Reg {
    bool ok = false;
    bool is_bool = false;
    int16_t id = 0;
  };

  Reg CompileExpr(const Expr& expr, const EventType& type);
  Reg AsBoolReg(Reg r);
  Reg AsNumReg(Reg r);
  int16_t NewD() { return num_dregs_++; }
  int16_t NewB() { return num_bregs_++; }

  void Run(size_t n) const TMS_NO_ALLOC;
  void RunScalar(size_t n) const TMS_NO_ALLOC;
  void BindColumns(const EventBatch& batch) const TMS_NO_ALLOC;

  std::vector<Ins> code_;
  int16_t num_dregs_ = 0;
  int16_t num_bregs_ = 0;
  int out_breg_ = -1;

  // Evaluation scratch (engine-thread only, reused across batches).
  mutable std::vector<std::vector<double>> dregs_;
  mutable std::vector<std::vector<uint8_t>> bregs_;
  mutable std::vector<const void*> col_ptrs_;
};

}  // namespace cep
}  // namespace insight

#endif  // INSIGHT_CEP_BATCH_H_
