#include "cep/statement.h"

#include <algorithm>

#include "common/logging.h"

namespace insight {
namespace cep {

Result<Value> MatchResult::Get(const std::string& column) const {
  for (const auto& [name, value] : columns) {
    if (name == column) return value;
  }
  return Status::NotFound("match has no column '" + column + "'");
}

std::string MatchResult::ToString() const {
  std::string out = statement_name + "{";
  for (size_t i = 0; i < columns.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns[i].first + "=" + columns[i].second.ToString();
  }
  out += "}";
  return out;
}

void Statement::HashIndex::Insert(const Event* e) {
  key_scratch.clear();
  for (int idx : field_indexes) key_scratch.push_back(e->Get(idx));
  auto it = map.find(key_scratch);
  if (it == map.end()) {
    map.emplace(key_scratch, std::vector<const Event*>{e});
  } else {
    it->second.push_back(e);
  }
}

void Statement::HashIndex::Remove(const Event* e) {
  key_scratch.clear();
  for (int idx : field_indexes) key_scratch.push_back(e->Get(idx));
  auto it = map.find(key_scratch);
  if (it == map.end()) return;
  auto& vec = it->second;
  for (size_t i = 0; i < vec.size(); ++i) {
    if (vec[i] == e) {
      vec.erase(vec.begin() + static_cast<long>(i));
      break;
    }
  }
  // The (possibly now empty) entry stays: the steady-state refresh cycle
  // (remove + insert of the same key) reuses the node instead of churning it.
}

namespace {

/// Flattens an AND tree into conjuncts.
void FlattenConjuncts(const Expr* expr, std::vector<const Expr*>* out) {
  const auto* bin = dynamic_cast<const BinaryExpr*>(expr);
  if (bin != nullptr && bin->op() == BinaryOp::kAnd) {
    FlattenConjuncts(bin->left(), out);
    FlattenConjuncts(bin->right(), out);
    return;
  }
  out->push_back(expr);
}

uint32_t SourceMaskOf(const Expr* expr) {
  std::vector<const FieldRefExpr*> refs;
  expr->CollectFieldRefs(&refs);
  uint32_t mask = 0;
  for (const auto* ref : refs) mask |= 1u << ref->source_index();
  return mask;
}

int HighestSource(uint32_t mask) {
  int highest = -1;
  for (int i = 0; i < 32; ++i) {
    if (mask & (1u << i)) highest = i;
  }
  return highest;
}

}  // namespace

Result<std::unique_ptr<Statement>> Statement::Compile(
    StatementDef def, const std::map<std::string, EventTypePtr>& types) {
  if (def.from.empty()) {
    return Status::InvalidArgument("statement requires at least one stream");
  }
  if (def.from.size() > 16) {
    return Status::InvalidArgument("at most 16 streams per statement");
  }
  if (!def.select_all && def.select.empty()) {
    return Status::InvalidArgument("statement requires a SELECT clause");
  }

  auto stmt = std::unique_ptr<Statement>(new Statement());

  // Resolve sources: schemas + windows.
  for (StreamSource& src : def.from) {
    auto type_it = types.find(src.event_type);
    if (type_it == types.end()) {
      return Status::NotFound("unknown event type '" + src.event_type + "'");
    }
    if (src.alias.empty()) src.alias = src.event_type;
    if (stmt->schemas_.AliasIndex(src.alias) >= 0) {
      return Status::AlreadyExists("duplicate stream alias '" + src.alias + "'");
    }
    stmt->schemas_.aliases.push_back(src.alias);
    stmt->schemas_.types.push_back(type_it->second);
    INSIGHT_ASSIGN_OR_RETURN(auto window,
                             Window::Create(src.views, type_it->second));
    stmt->windows_.push_back(std::move(window));
  }
  for (const std::string& trigger : def.trigger_types) {
    if (types.find(trigger) == types.end()) {
      return Status::NotFound("unknown trigger type '" + trigger + "'");
    }
  }

  // Resolve expressions.
  if (def.where != nullptr) {
    INSIGHT_RETURN_NOT_OK(def.where->Resolve(stmt->schemas_));
  }
  for (auto& g : def.group_by) INSIGHT_RETURN_NOT_OK(g->Resolve(stmt->schemas_));
  if (def.having != nullptr) {
    INSIGHT_RETURN_NOT_OK(def.having->Resolve(stmt->schemas_));
  }
  for (auto& item : def.select) {
    INSIGHT_RETURN_NOT_OK(item.expr->Resolve(stmt->schemas_));
    if (item.name.empty()) item.name = item.expr->ToString();
  }
  for (auto& item : def.order_by) {
    INSIGHT_RETURN_NOT_OK(item.expr->Resolve(stmt->schemas_));
  }

  // Type check: WHERE/HAVING must be boolean-ish; every expression must be
  // internally well-typed (no arithmetic or aggregation over strings).
  if (def.where != nullptr) {
    INSIGHT_ASSIGN_OR_RETURN(ValueType where_type, def.where->DeduceType());
    if (where_type == ValueType::kString) {
      return Status::InvalidArgument("WHERE must be boolean, got string");
    }
  }
  if (def.having != nullptr) {
    INSIGHT_ASSIGN_OR_RETURN(ValueType having_type, def.having->DeduceType());
    if (having_type == ValueType::kString) {
      return Status::InvalidArgument("HAVING must be boolean, got string");
    }
  }
  for (const auto& item : def.select) {
    INSIGHT_RETURN_NOT_OK(item.expr->DeduceType().status());
  }
  for (const auto& g : def.group_by) {
    INSIGHT_RETURN_NOT_OK(g->DeduceType().status());
  }
  for (const auto& item : def.order_by) {
    INSIGHT_RETURN_NOT_OK(item.expr->DeduceType().status());
  }

  // Aggregates may appear in HAVING and SELECT (not in WHERE, like SQL).
  // Textually identical nodes (e.g. avg(bd2.x) in both SELECT and HAVING)
  // share an agg_id, so each is computed once per group.
  if (def.where != nullptr) {
    std::vector<AggregateExpr*> where_aggs;
    def.where->CollectAggregates(&where_aggs);
    if (!where_aggs.empty()) {
      return Status::InvalidArgument("aggregates are not allowed in WHERE");
    }
  }
  std::vector<AggregateExpr*> all_aggs;
  if (def.having != nullptr) def.having->CollectAggregates(&all_aggs);
  for (auto& item : def.select) item.expr->CollectAggregates(&all_aggs);
  for (auto& item : def.order_by) item.expr->CollectAggregates(&all_aggs);
  std::vector<std::string> agg_keys;
  for (AggregateExpr* agg : all_aggs) {
    std::string key = agg->ToString();
    int id = -1;
    for (size_t k = 0; k < agg_keys.size(); ++k) {
      if (agg_keys[k] == key) {
        id = static_cast<int>(k);
        break;
      }
    }
    if (id < 0) {
      id = static_cast<int>(agg_keys.size());
      agg_keys.push_back(std::move(key));
      stmt->aggregates_.push_back(agg);
    }
    agg->set_agg_id(id);
  }

  // Conjunct decomposition.
  if (def.where != nullptr) {
    std::vector<const Expr*> flat;
    FlattenConjuncts(def.where.get(), &flat);
    for (const Expr* e : flat) {
      Conjunct c;
      c.expr = e;
      c.source_mask = SourceMaskOf(e);
      stmt->conjuncts_.push_back(c);
    }
  }

  // Join planning: for each source after the first, gather equi-join
  // conjuncts `this.field = <expr over earlier sources>`.
  stmt->plans_.resize(def.from.size());
  stmt->source_indexes_.resize(def.from.size());
  for (size_t i = 1; i < def.from.size(); ++i) {
    SourcePlan& plan = stmt->plans_[i];
    uint32_t earlier_mask = (1u << i) - 1;
    for (size_t cid = 0; cid < stmt->conjuncts_.size(); ++cid) {
      const Conjunct& c = stmt->conjuncts_[cid];
      const auto* bin = dynamic_cast<const BinaryExpr*>(c.expr);
      if (bin == nullptr || bin->op() != BinaryOp::kEq) continue;
      const auto* lf = dynamic_cast<const FieldRefExpr*>(bin->left());
      const auto* rf = dynamic_cast<const FieldRefExpr*>(bin->right());
      const FieldRefExpr* mine = nullptr;
      const Expr* other = nullptr;
      if (lf != nullptr && lf->source_index() == static_cast<int>(i)) {
        mine = lf;
        other = bin->right();
      } else if (rf != nullptr && rf->source_index() == static_cast<int>(i)) {
        mine = rf;
        other = bin->left();
      }
      if (mine == nullptr) continue;
      uint32_t other_mask = SourceMaskOf(other);
      if ((other_mask & ~earlier_mask) != 0) continue;  // depends on later source
      plan.my_fields.push_back(mine->field_index());
      plan.bound_exprs.push_back(other);
      plan.conjunct_ids.push_back(static_cast<int>(cid));
    }
    if (plan.my_fields.empty()) continue;
    Window* window = stmt->windows_[i].get();
    if (window->grouped()) {
      for (size_t k = 0; k < plan.my_fields.size(); ++k) {
        if (plan.my_fields[k] == window->group_field_index()) {
          plan.use_group_lookup = true;
          plan.group_expr_pos = static_cast<int>(k);
          break;
        }
      }
    }
    if (plan.use_group_lookup) {
      // The lookup enforces exactly the group-field conjunct; the rest of
      // the plan's conjuncts still evaluate in ConjunctsPass.
      stmt->conjuncts_[static_cast<size_t>(
                           plan.conjunct_ids[plan.group_expr_pos])]
          .is_equi_used = true;
    } else {
      // Build a hash index over this source keyed on the equi fields. The
      // probe enforces all of the plan's conjuncts (Equals semantics match
      // the kEq operator), so they are skipped in ConjunctsPass.
      HashIndex index;
      index.field_indexes = plan.my_fields;
      stmt->indexes_.push_back(std::move(index));
      plan.use_hash_index = true;
      plan.hash_index_id = static_cast<int>(stmt->indexes_.size() - 1);
      stmt->source_indexes_[i].push_back(plan.hash_index_id);
      for (int cid : plan.conjunct_ids) {
        stmt->conjuncts_[static_cast<size_t>(cid)].is_equi_used = true;
      }
    }
  }

  stmt->def_ = std::move(def);

  const size_t n = stmt->windows_.size();
  stmt->row_scratch_.assign(n, nullptr);
  stmt->accum_row_scratch_.assign(n, nullptr);
  stmt->source_is_trigger_.assign(n, 1);
  if (!stmt->def_.trigger_types.empty()) {
    for (size_t i = 0; i < n; ++i) {
      stmt->source_is_trigger_[i] =
          stmt->def_.trigger_types.count(stmt->def_.from[i].event_type) > 0
              ? 1
              : 0;
    }
  }
  stmt->incremental_ = stmt->PlanIncremental();
  return stmt;
}

bool Statement::PlanIncremental() {
  if (def_.group_by.size() != 1) return false;
  const auto* gref = dynamic_cast<const FieldRefExpr*>(def_.group_by[0].get());
  if (gref == nullptr) return false;
  const int g = gref->source_index();
  Window* group_window = windows_[static_cast<size_t>(g)].get();
  if (!group_window->grouped() ||
      gref->field_index() != group_window->group_field_index()) {
    return false;
  }
  const uint32_t g_bit = 1u << g;

  // Classify aggregates. stddev stays on the fallback path so its Welford
  // numerics are bit-identical with the full recompute.
  inc_aggs_.clear();
  inc_accum_args_.clear();
  for (AggregateExpr* agg : aggregates_) {
    if (agg->func() == AggFunc::kStddev) return false;
    IncAgg ia;
    ia.func = agg->func();
    if (agg->argument() == nullptr) {
      ia.src = IncAggSrc::kGroupCount;
    } else {
      uint32_t mask = SourceMaskOf(agg->argument());
      if ((mask & g_bit) != 0 && (mask & ~g_bit) == 0) {
        ia.src = IncAggSrc::kAccum;
        std::string key = agg->argument()->ToString();
        int pos = -1;
        for (size_t k = 0; k < inc_accum_args_.size(); ++k) {
          if (inc_accum_args_[k]->ToString() == key) {
            pos = static_cast<int>(k);
            break;
          }
        }
        if (pos < 0) {
          pos = static_cast<int>(inc_accum_args_.size());
          inc_accum_args_.push_back(agg->argument());
        }
        ia.accum_pos = pos;
      } else if ((mask & g_bit) == 0) {
        // Constant across a group's rows: the other sources each bind one
        // event per evaluation (checked below).
        ia.src = IncAggSrc::kRowConst;
        ia.row_expr = agg->argument();
      } else {
        return false;  // mixes the grouped source with others
      }
    }
    inc_aggs_.push_back(ia);
  }

  // Conjuncts: only the conjunct consumed by g's group lookup may reference
  // g; everything else becomes a gate evaluated before groups are visited.
  const SourcePlan& gplan = plans_[static_cast<size_t>(g)];
  const int consumed_cid =
      gplan.use_group_lookup
          ? gplan.conjunct_ids[static_cast<size_t>(gplan.group_expr_pos)]
          : -1;
  inc_gate_conjuncts_.clear();
  for (size_t cid = 0; cid < conjuncts_.size(); ++cid) {
    if ((conjuncts_[cid].source_mask & g_bit) != 0) {
      if (static_cast<int>(cid) != consumed_cid) return false;
    } else {
      inc_gate_conjuncts_.push_back(static_cast<int>(cid));
    }
  }

  // Every other source must bind at most one event, without touching g:
  // an ungrouped std:lastevent (bind its single event) or a std:unique
  // window probed through a hash index covering the unique key.
  for (size_t t = 0; t < windows_.size(); ++t) {
    if (static_cast<int>(t) == g) continue;
    Window* w = windows_[t].get();
    if (w->grouped()) return false;
    if (w->data_kind() == ViewKind::kLastEvent) continue;
    if (w->data_kind() == ViewKind::kUnique && plans_[t].use_hash_index) {
      for (int uf : w->unique_field_indexes()) {
        bool covered = false;
        for (int mf : plans_[t].my_fields) {
          if (mf == uf) {
            covered = true;
            break;
          }
        }
        if (!covered) return false;
      }
      // The probe runs before g binds, so its key may not reference g.
      for (const Expr* e : plans_[t].bound_exprs) {
        if ((SourceMaskOf(e) & g_bit) != 0) return false;
      }
      continue;
    }
    return false;
  }

  inc_group_source_ = g;
  inc_shape_a_ = gplan.use_group_lookup;
  return true;
}

bool Statement::ConsumesType(const std::string& type_name) const {
  for (const StreamSource& src : def_.from) {
    if (src.event_type == type_name) return true;
  }
  return false;
}

size_t Statement::RetainedEvents() const {
  size_t total = 0;
  for (const auto& w : windows_) total += w->TotalSize();
  return total;
}

size_t Statement::OnEvent(const EventPtr& event) {
  std::vector<MatchResult> matches;
  const size_t n = OnEventCollect(event, &matches);
  for (const MatchResult& m : matches) DeliverMatch(m);
  return n;
}

size_t Statement::OnEventCollect(const EventPtr& event,
                                 std::vector<MatchResult>* out) {
  const EventType* event_type = &event->type();
  bool consumed = false;
  bool triggered = false;
  for (size_t i = 0; i < schemas_.types.size(); ++i) {
    // Pointer compare first: events built from the engine's registry share
    // the schema instance, so the name compare is only a fallback for
    // foreign EventType copies.
    const EventType* source_type = schemas_.types[i].get();
    if (source_type != event_type && source_type->name() != event_type->name()) {
      continue;
    }
    consumed = true;
    if (source_is_trigger_[i] != 0) triggered = true;
    expired_scratch_.clear();
    windows_[i]->Insert(event, &expired_scratch_);
    for (int index_id : source_indexes_[i]) {
      HashIndex& index = indexes_[static_cast<size_t>(index_id)];
      index.Insert(event.get());
      for (const EventPtr& e : expired_scratch_) index.Remove(e.get());
    }
    if (incremental_ && static_cast<int>(i) == inc_group_source_) {
      AccumInsert(*event);
      for (const EventPtr& e : expired_scratch_) AccumRemove(*e);
    }
  }
  if (!consumed) return 0;
  ++total_events_;
  if (!triggered) return 0;

  const size_t before = out->size();
  EvaluateJoin(out);
  const size_t n_matches = out->size() - before;
  total_matches_ += n_matches;
  return n_matches;
}

void Statement::SnapshotState(ByteWriter* writer) const {
  writer->PutU32(static_cast<uint32_t>(windows_.size()));
  for (size_t i = 0; i < windows_.size(); ++i) {
    const Window& window = *windows_[i];
    writer->PutU64(window.TotalSize());
    // Iteration order is deterministic (map key order for groups/unique,
    // ring order within a bucket), and replaying events in this order
    // through Insert reproduces the identical window contents: every
    // retained event already satisfied the window's eviction predicate
    // relative to its retained neighbours when it was first inserted.
    window.ForEachEvent([&](const EventPtr& e) {
      writer->PutI64(e->timestamp());
      writer->PutU32(static_cast<uint32_t>(e->values().size()));
      for (const Value& v : e->values()) EncodeValue(v, writer);
    });
  }
  writer->PutU64(total_events_);
  writer->PutU64(total_matches_);
}

Status Statement::RestoreState(ByteReader* reader) {
  ResetState();
  auto fail = [this](const std::string& msg) {
    ResetState();
    return Status::ParseError("statement '" + def_.name + "': " + msg);
  };
  uint32_t sources;
  if (!reader->GetU32(&sources)) return fail("truncated source count");
  if (sources != windows_.size()) return fail("source count mismatch");
  for (size_t i = 0; i < windows_.size(); ++i) {
    const EventTypePtr& type = schemas_.types[i];
    uint64_t count;
    if (!reader->GetU64(&count)) return fail("truncated event count");
    for (uint64_t k = 0; k < count; ++k) {
      int64_t timestamp;
      uint32_t nfields;
      if (!reader->GetI64(&timestamp) || !reader->GetU32(&nfields)) {
        return fail("truncated event");
      }
      if (nfields != type->num_fields()) return fail("field count mismatch");
      std::vector<Value> values(nfields);
      for (uint32_t f = 0; f < nfields; ++f) {
        if (!DecodeValue(reader, &values[f])) return fail("bad field value");
      }
      InsertRestored(i, std::make_shared<Event>(type, std::move(values),
                                                timestamp));
    }
  }
  uint64_t events, matches;
  if (!reader->GetU64(&events) || !reader->GetU64(&matches)) {
    return fail("truncated counters");
  }
  total_events_ = events;
  total_matches_ = matches;
  return Status::OK();
}

void Statement::ResetState() {
  for (const auto& w : windows_) w->Clear();
  for (HashIndex& index : indexes_) index.map.clear();
  accums_.clear();
  group_table_.clear();
  total_events_ = 0;
  total_matches_ = 0;
  // The flat group-slot cache holds pointers into the windows and accums_
  // just cleared; force a replan before the next batch.
  batch_plan_ = BatchPlan{};
}

void Statement::InsertRestored(size_t source, const EventPtr& event) {
  expired_scratch_.clear();
  windows_[source]->Insert(event, &expired_scratch_);
  for (int index_id : source_indexes_[source]) {
    HashIndex& index = indexes_[static_cast<size_t>(index_id)];
    index.Insert(event.get());
    for (const EventPtr& e : expired_scratch_) index.Remove(e.get());
  }
  if (incremental_ && static_cast<int>(source) == inc_group_source_) {
    AccumInsert(*event);
    for (const EventPtr& e : expired_scratch_) AccumRemove(*e);
  }
}

bool Statement::ConjunctsPass(uint32_t bound_mask, uint32_t newly_bound,
                              const JoinRow& row) {
  EvalContext ctx;
  ctx.row = &row;
  for (const Conjunct& c : conjuncts_) {
    if (c.is_equi_used) continue;  // enforced by a lookup
    // Evaluate a conjunct exactly when its highest source has just bound
    // (constant conjuncts evaluate with the first source).
    int last = HighestSource(c.source_mask);
    uint32_t last_bit = last < 0 ? 1u : (1u << last);
    if ((last_bit & newly_bound) == 0) continue;
    if ((c.source_mask & ~bound_mask) != 0) continue;
    if (!c.expr->Eval(ctx).AsBool()) return false;
  }
  return true;
}

void Statement::JoinRecurse(size_t depth, uint32_t bound_mask) {
  const size_t n = windows_.size();
  if (depth == n) {
    row_arena_.insert(row_arena_.end(), row_scratch_.begin(),
                      row_scratch_.end());
    return;
  }
  const SourcePlan& plan = plans_[depth];
  uint32_t new_mask = bound_mask | (1u << depth);
  JoinRow row(row_scratch_.data(), n);
  EvalContext ctx;
  ctx.row = &row;

  auto try_candidate = [&](const Event* candidate) {
    row_scratch_[depth] = candidate;
    if (ConjunctsPass(new_mask, 1u << depth, row)) {
      JoinRecurse(depth + 1, new_mask);
    }
    row_scratch_[depth] = nullptr;
  };

  Window* window = windows_[depth].get();
  if (plan.use_group_lookup) {
    Value key =
        plan.bound_exprs[static_cast<size_t>(plan.group_expr_pos)]->Eval(ctx);
    const EventRing* group = window->GroupContents(key);
    if (group == nullptr) return;
    for (const EventPtr& e : *group) try_candidate(e.get());
    return;
  }
  if (plan.use_hash_index) {
    HashIndex& index = indexes_[static_cast<size_t>(plan.hash_index_id)];
    probe_key_.clear();
    for (const Expr* e : plan.bound_exprs) probe_key_.push_back(e->Eval(ctx));
    auto it = index.map.find(probe_key_);
    if (it == index.map.end()) return;
    // probe_key_ may be clobbered by deeper recursion levels, but the
    // iterator and its candidate vector stay stable (no inserts mid-eval).
    for (const Event* e : it->second) try_candidate(e);
    return;
  }
  window->ForEachEvent([&](const EventPtr& e) { try_candidate(e.get()); });
}

void Statement::EvaluateJoin(std::vector<MatchResult>* out) {
  pending_.clear();
  if (incremental_) {
    EvaluateIncremental();
  } else {
    row_arena_.clear();
    std::fill(row_scratch_.begin(), row_scratch_.end(), nullptr);
    JoinRecurse(0, 0);
    if (!row_arena_.empty()) EmitGroupsFallback();
  }
  FlushPending(out);
}

void Statement::ComputeFallbackAggs(const std::vector<uint32_t>* row_ids,
                                    size_t nrows) {
  const size_t m = aggregates_.size();
  agg_scratch_.assign(m, Value());
  if (m == 0) return;
  const size_t count = row_ids != nullptr ? row_ids->size() : nrows;
  stats_scratch_.assign(m, RunningStats());
  EvalContext ctx;
  for (size_t j = 0; j < count; ++j) {
    const size_t r = row_ids != nullptr ? (*row_ids)[j] : j;
    JoinRow row = RowAt(r);
    ctx.row = &row;
    for (size_t k = 0; k < m; ++k) {
      const Expr* arg = aggregates_[k]->argument();
      if (arg != nullptr) stats_scratch_[k].Add(arg->Eval(ctx).AsDouble());
    }
  }
  for (size_t k = 0; k < m; ++k) {
    const AggregateExpr* agg = aggregates_[k];
    const RunningStats& stats = stats_scratch_[k];
    if (agg->argument() == nullptr) {
      agg_scratch_[k] = static_cast<int64_t>(count);  // count(*)
      continue;
    }
    switch (agg->func()) {
      case AggFunc::kAvg:
        agg_scratch_[k] = stats.mean();
        break;
      case AggFunc::kSum:
        agg_scratch_[k] = stats.mean() * static_cast<double>(stats.count());
        break;
      case AggFunc::kCount:
        agg_scratch_[k] = static_cast<int64_t>(stats.count());
        break;
      case AggFunc::kMin:
        agg_scratch_[k] = stats.min();
        break;
      case AggFunc::kMax:
        agg_scratch_[k] = stats.max();
        break;
      case AggFunc::kStddev:
        agg_scratch_[k] = stats.stdev();
        break;
    }
  }
}

void Statement::EmitGroupsFallback() {
  const size_t n = windows_.size();
  const size_t nrows = row_arena_.size() / n;
  const bool has_groups = !def_.group_by.empty();
  const bool has_aggs = !aggregates_.empty();

  if (!has_groups && !has_aggs) {
    agg_scratch_.clear();
    for (size_t r = 0; r < nrows; ++r) EmitMatch(RowAt(r));
    return;
  }
  if (!has_groups) {
    ComputeFallbackAggs(nullptr, nrows);
    EmitMatch(RowAt(nrows - 1));
    return;
  }

  // Group rows in a persistent hash table (nodes reused across evaluations;
  // an entry is live iff seq == eval_seq_), then emit in sorted key order.
  ++eval_seq_;
  touched_groups_.clear();
  EvalContext ctx;
  for (size_t r = 0; r < nrows; ++r) {
    JoinRow row = RowAt(r);
    ctx.row = &row;
    group_key_scratch_.clear();
    for (const auto& gexpr : def_.group_by) {
      group_key_scratch_.push_back(gexpr->Eval(ctx));
    }
    auto it = group_table_.find(group_key_scratch_);
    if (it == group_table_.end()) {
      it = group_table_.emplace(group_key_scratch_, GroupState{}).first;
    }
    GroupState& gs = it->second;
    if (gs.seq != eval_seq_) {
      gs.seq = eval_seq_;
      gs.rows.clear();
      touched_groups_.emplace_back(&it->first, &gs);
    }
    gs.rows.push_back(static_cast<uint32_t>(r));
  }
  std::sort(touched_groups_.begin(), touched_groups_.end(),
            [](const auto& a, const auto& b) {
              return ValueVectorLess{}(*a.first, *b.first);
            });
  for (auto& [key, gs] : touched_groups_) {
    ComputeFallbackAggs(&gs->rows, 0);
    EmitMatch(RowAt(gs->rows.back()));
  }
}

void Statement::EvaluateIncremental() {
  const size_t n = windows_.size();
  std::fill(row_scratch_.begin(), row_scratch_.end(), nullptr);
  JoinRow row(row_scratch_.data(), n);
  EvalContext ctx;
  ctx.row = &row;

  // Bind every non-grouped source to its single candidate, in FROM order so
  // probe keys only read already-bound slots.
  for (size_t i = 0; i < n; ++i) {
    if (static_cast<int>(i) == inc_group_source_) continue;
    Window* w = windows_[i].get();
    if (w->data_kind() == ViewKind::kLastEvent) {
      const EventRing& contents = w->Contents();
      if (contents.empty()) return;
      row_scratch_[i] = contents.back().get();
      continue;
    }
    const SourcePlan& plan = plans_[i];
    HashIndex& index = indexes_[static_cast<size_t>(plan.hash_index_id)];
    probe_key_.clear();
    for (const Expr* e : plan.bound_exprs) probe_key_.push_back(e->Eval(ctx));
    auto it = index.map.find(probe_key_);
    if (it == index.map.end() || it->second.empty()) return;
    row_scratch_[i] = it->second.front();
  }

  for (int cid : inc_gate_conjuncts_) {
    if (!conjuncts_[static_cast<size_t>(cid)].expr->Eval(ctx).AsBool()) return;
  }

  Window* group_window = windows_[static_cast<size_t>(inc_group_source_)].get();
  if (inc_shape_a_) {
    const SourcePlan& plan = plans_[static_cast<size_t>(inc_group_source_)];
    Value key =
        plan.bound_exprs[static_cast<size_t>(plan.group_expr_pos)]->Eval(ctx);
    const EventRing* bucket = group_window->GroupContents(key);
    if (bucket != nullptr) EmitIncrementalGroup(key, *bucket, &ctx);
  } else {
    group_window->ForEachGroupT([&](const Value& key, const EventRing& bucket) {
      EmitIncrementalGroup(key, bucket, &ctx);
    });
  }
}

void Statement::EmitIncrementalGroup(const Value& key, const EventRing& bucket,
                                     EvalContext* ctx, GroupAccum* acc_hint) {
  if (bucket.empty()) return;
  const size_t count = bucket.size();
  GroupAccum* acc = nullptr;
  if (!inc_accum_args_.empty()) {
    GroupAccum& slot = acc_hint != nullptr ? *acc_hint : accums_[key];
    if (slot.args.size() != inc_accum_args_.size() || slot.count != count) {
      // Defensive resync; steady state keeps count in lockstep with the
      // window, so this only fires on first touch.
      slot.args.resize(inc_accum_args_.size());
      RescanAccum(&slot, bucket);
    }
    acc = &slot;
  }

  agg_scratch_.resize(aggregates_.size());
  for (size_t k = 0; k < inc_aggs_.size(); ++k) {
    const IncAgg& ia = inc_aggs_[k];
    switch (ia.src) {
      case IncAggSrc::kGroupCount:
        agg_scratch_[k] = static_cast<int64_t>(count);
        break;
      case IncAggSrc::kAccum: {
        ArgAccum* a = &acc->args[static_cast<size_t>(ia.accum_pos)];
        if ((ia.func == AggFunc::kMin || ia.func == AggFunc::kMax) &&
            !a->minmax_valid) {
          RescanAccum(acc, bucket);  // also refreshes sums (kills drift)
          a = &acc->args[static_cast<size_t>(ia.accum_pos)];
        }
        switch (ia.func) {
          case AggFunc::kAvg:
            agg_scratch_[k] = a->sum / static_cast<double>(count);
            break;
          case AggFunc::kSum:
            agg_scratch_[k] = a->sum;
            break;
          case AggFunc::kCount:
            agg_scratch_[k] = static_cast<int64_t>(count);
            break;
          case AggFunc::kMin:
            agg_scratch_[k] = a->min_v;
            break;
          case AggFunc::kMax:
            agg_scratch_[k] = a->max_v;
            break;
          case AggFunc::kStddev:
            break;  // unreachable: stddev disables the incremental plan
        }
        break;
      }
      case IncAggSrc::kRowConst: {
        double v = ia.row_expr->Eval(*ctx).AsDouble();
        switch (ia.func) {
          case AggFunc::kAvg:
          case AggFunc::kMin:
          case AggFunc::kMax:
            agg_scratch_[k] = v;
            break;
          case AggFunc::kSum:
            agg_scratch_[k] = v * static_cast<double>(count);
            break;
          case AggFunc::kCount:
            agg_scratch_[k] = static_cast<int64_t>(count);
            break;
          case AggFunc::kStddev:
            break;  // unreachable
        }
        break;
      }
    }
  }

  row_scratch_[static_cast<size_t>(inc_group_source_)] = bucket.back().get();
  EmitMatch(JoinRow(row_scratch_.data(), row_scratch_.size()));
  row_scratch_[static_cast<size_t>(inc_group_source_)] = nullptr;
}

void Statement::RescanAccum(GroupAccum* acc, const EventRing& bucket) {
  for (ArgAccum& a : acc->args) a = ArgAccum{};
  acc->count = bucket.size();
  JoinRow row(accum_row_scratch_.data(), accum_row_scratch_.size());
  EvalContext ctx;
  ctx.row = &row;
  for (const EventPtr& e : bucket) {
    accum_row_scratch_[static_cast<size_t>(inc_group_source_)] = e.get();
    for (size_t k = 0; k < inc_accum_args_.size(); ++k) {
      double v = inc_accum_args_[k]->Eval(ctx).AsDouble();
      ArgAccum& a = acc->args[k];
      a.sum += v;
      if (v < a.min_v) a.min_v = v;
      if (v > a.max_v) a.max_v = v;
    }
  }
  accum_row_scratch_[static_cast<size_t>(inc_group_source_)] = nullptr;
  for (ArgAccum& a : acc->args) a.minmax_valid = true;
}

void Statement::AccumInsert(const Event& e) {
  if (inc_accum_args_.empty()) return;
  Window* group_window = windows_[static_cast<size_t>(inc_group_source_)].get();
  const Value& key = e.Get(group_window->group_field_index());
  GroupAccum& acc = accums_[key];
  if (acc.args.size() != inc_accum_args_.size()) {
    acc.args.resize(inc_accum_args_.size());
  }
  ++acc.count;
  JoinRow row(accum_row_scratch_.data(), accum_row_scratch_.size());
  EvalContext ctx;
  ctx.row = &row;
  accum_row_scratch_[static_cast<size_t>(inc_group_source_)] = &e;
  for (size_t k = 0; k < inc_accum_args_.size(); ++k) {
    double v = inc_accum_args_[k]->Eval(ctx).AsDouble();
    ArgAccum& a = acc.args[k];
    a.sum += v;
    if (a.minmax_valid) {
      if (v < a.min_v) a.min_v = v;
      if (v > a.max_v) a.max_v = v;
    }
  }
  accum_row_scratch_[static_cast<size_t>(inc_group_source_)] = nullptr;
}

void Statement::AccumRemove(const Event& e) {
  if (inc_accum_args_.empty()) return;
  Window* group_window = windows_[static_cast<size_t>(inc_group_source_)].get();
  const Value& key = e.Get(group_window->group_field_index());
  auto it = accums_.find(key);
  if (it == accums_.end()) return;
  GroupAccum& acc = it->second;
  JoinRow row(accum_row_scratch_.data(), accum_row_scratch_.size());
  EvalContext ctx;
  ctx.row = &row;
  accum_row_scratch_[static_cast<size_t>(inc_group_source_)] = &e;
  for (size_t k = 0; k < inc_accum_args_.size(); ++k) {
    double v = inc_accum_args_[k]->Eval(ctx).AsDouble();
    ArgAccum& a = acc.args[k];
    a.sum -= v;
    // An evicted extremum invalidates min/max until the next lazy rescan.
    if (a.minmax_valid && (v <= a.min_v || v >= a.max_v)) {
      a.minmax_valid = false;
    }
  }
  accum_row_scratch_[static_cast<size_t>(inc_group_source_)] = nullptr;
  if (acc.count > 0 && --acc.count == 0) {
    // Empty group: reset to pristine so float residue cannot leak into the
    // group's next life.
    for (ArgAccum& a : acc.args) a = ArgAccum{};
  }
}

void Statement::EmitMatch(const JoinRow& representative) {
  EvalContext ctx;
  ctx.row = &representative;
  ctx.agg_values = &agg_scratch_;
  if (def_.having != nullptr && !def_.having->Eval(ctx).AsBool()) return;

  Pending entry;
  entry.match.statement_name = def_.name;
  if (def_.select_all) {
    for (size_t s = 0; s < schemas_.types.size(); ++s) {
      const Event* e = representative[s];
      const EventType& type = *schemas_.types[s];
      for (size_t f = 0; f < type.num_fields(); ++f) {
        entry.match.columns.emplace_back(
            schemas_.aliases[s] + "." + type.fields()[f].name,
            e->Get(static_cast<int>(f)));
      }
    }
  }
  for (const SelectItem& item : def_.select) {
    entry.match.columns.emplace_back(item.name, item.expr->Eval(ctx));
  }
  entry.sort_keys.reserve(def_.order_by.size());
  for (const OrderByItem& item : def_.order_by) {
    entry.sort_keys.push_back(item.expr->Eval(ctx));
  }
  pending_.push_back(std::move(entry));
}

// --- columnar batch path ---

namespace {

/// Reads batch column `field` at `lane` exactly as the row path's
/// Value::AsDouble would (int -> its double image, bool -> 1.0/0.0).
double ColAsDouble(const EventBatch& batch, int field, size_t lane) {
  if (const auto* d = batch.DoubleCol(field)) return (*d)[lane];
  if (const auto* i = batch.IntCol(field)) {
    return static_cast<double>((*i)[lane]);
  }
  if (const auto* b = batch.BoolCol(field)) return (*b)[lane] != 0 ? 1.0 : 0.0;
  return 0.0;  // unreachable: PlanBatch rejects string accumulator fields
}

size_t SlotIndexFor(int64_t key, size_t mask) {
  const uint64_t h = static_cast<uint64_t>(key) * 0x9e3779b97f4a7c15ULL;
  return static_cast<size_t>(h ^ (h >> 32)) & mask;
}

}  // namespace

void Statement::OnBatch(const EventBatch& batch, EventPool* pool,
                        std::vector<BatchMatch>* out) {
  const size_t n = batch.size();
  if (n == 0) return;
  if (batch_plan_.type != &batch.type()) PlanBatch(&batch.type());
  switch (batch_plan_.mode) {
    case BatchMode::kFilter:
      OnBatchFilter(batch, pool, out);
      return;
    case BatchMode::kIncAgg:
      OnBatchIncAgg(batch, pool, out);
      return;
    case BatchMode::kPerLane:
      break;
  }
  for (size_t lane = 0; lane < n; ++lane) {
    per_lane_scratch_.clear();
    OnEventCollect(batch.LaneEvent(lane, pool), &per_lane_scratch_);
    for (MatchResult& m : per_lane_scratch_) {
      out->push_back({static_cast<uint32_t>(lane), this, std::move(m)});
    }
  }
}

void Statement::PlanBatch(const EventType* type) {
  BatchPlan plan;
  plan.type = type;
  plan.mode = BatchMode::kPerLane;

  bool consumes_all = true;
  bool consumes_any = false;
  for (size_t i = 0; i < schemas_.types.size(); ++i) {
    const EventType* source_type = schemas_.types[i].get();
    const bool c =
        source_type == type || source_type->name() == type->name();
    consumes_any |= c;
    consumes_all &= c;
    if (c && source_is_trigger_[i] != 0) plan.triggered = true;
  }
  if (!consumes_any) {  // engine routing should prevent this; stay safe
    batch_plan_ = std::move(plan);
    return;
  }

  // kFilter: single ungrouped lastevent source, no grouping or aggregation,
  // and the whole WHERE compiles into column kernels.
  if (windows_.size() == 1 && !windows_[0]->grouped() &&
      windows_[0]->data_kind() == ViewKind::kLastEvent &&
      def_.group_by.empty() && aggregates_.empty() && indexes_.empty()) {
    bool ok = true;
    if (def_.where != nullptr) {
      ColumnProgram prog;
      ok = prog.CompileBool(*def_.where, *type);
      if (ok) plan.predicates.push_back(std::move(prog));
    }
    if (ok) {
      plan.mode = BatchMode::kFilter;
      batch_plan_ = std::move(plan);
      return;
    }
    plan.predicates.clear();
  }

  // kIncAgg: the shape-A incremental plan, restricted further to what the
  // flat group-slot cache and column accumulators can mirror exactly —
  // int-keyed length-window groups, lastevent companions, compiled gates.
  do {
    if (!incremental_ || !inc_shape_a_ || !consumes_all ||
        !indexes_.empty()) {
      break;
    }
    const size_t g = static_cast<size_t>(inc_group_source_);
    Window* gw = windows_[g].get();
    if (gw->data_kind() != ViewKind::kLength || gw->data_length() == 0) break;
    const int gfi = gw->group_field_index();
    if (gfi < 0 || static_cast<size_t>(gfi) >= type->num_fields() ||
        type->fields()[static_cast<size_t>(gfi)].type != ValueType::kInt) {
      break;
    }
    bool ok = true;
    for (size_t s = 0; s < windows_.size(); ++s) {
      if (s == g) continue;
      if (windows_[s]->grouped() ||
          windows_[s]->data_kind() != ViewKind::kLastEvent) {
        ok = false;
        break;
      }
      plan.lastevent_sources.push_back(static_cast<int>(s));
    }
    if (!ok) break;
    const SourcePlan& gplan = plans_[g];
    const auto* kref = dynamic_cast<const FieldRefExpr*>(
        gplan.bound_exprs[static_cast<size_t>(gplan.group_expr_pos)]);
    if (kref == nullptr || kref->field_index() < 0 ||
        static_cast<size_t>(kref->field_index()) >= type->num_fields() ||
        type->fields()[static_cast<size_t>(kref->field_index())].type !=
            ValueType::kInt) {
      break;
    }
    for (const Expr* arg : inc_accum_args_) {
      const auto* ref = dynamic_cast<const FieldRefExpr*>(arg);
      if (ref == nullptr || ref->field_index() < 0 ||
          static_cast<size_t>(ref->field_index()) >= type->num_fields() ||
          type->fields()[static_cast<size_t>(ref->field_index())].type ==
              ValueType::kString) {
        ok = false;
        break;
      }
      plan.accum_fields.push_back(ref->field_index());
    }
    if (!ok) break;
    for (int cid : inc_gate_conjuncts_) {
      ColumnProgram prog;
      if (!prog.CompileBool(*conjuncts_[static_cast<size_t>(cid)].expr,
                            *type)) {
        ok = false;
        break;
      }
      plan.predicates.push_back(std::move(prog));
    }
    if (!ok) break;
    plan.mode = BatchMode::kIncAgg;
    plan.group_field = gfi;
    plan.key_field = kref->field_index();
    plan.group_capacity = gw->data_length();
    // HAVING fast gate (see BatchPlan): only when no min/max aggregate
    // exists, because skipping an emission also skips the lazy rescan an
    // invalid min/max would trigger, and that rescan refreshes sums the row
    // path would have refreshed.
    if (def_.having != nullptr) {
      bool rescan_free = true;
      for (const IncAgg& ia : inc_aggs_) {
        if (ia.func == AggFunc::kMin || ia.func == AggFunc::kMax) {
          rescan_free = false;
          break;
        }
      }
      const auto* cmp = dynamic_cast<const BinaryExpr*>(def_.having.get());
      const bool is_comparison =
          cmp != nullptr &&
          (cmp->op() == BinaryOp::kEq || cmp->op() == BinaryOp::kNe ||
           cmp->op() == BinaryOp::kLt || cmp->op() == BinaryOp::kLe ||
           cmp->op() == BinaryOp::kGt || cmp->op() == BinaryOp::kGe);
      if (rescan_free && is_comparison) {
        const auto* agg_l = dynamic_cast<const AggregateExpr*>(cmp->left());
        const auto* lit_r = dynamic_cast<const LiteralExpr*>(cmp->right());
        const auto* lit_l = dynamic_cast<const LiteralExpr*>(cmp->left());
        const auto* agg_r = dynamic_cast<const AggregateExpr*>(cmp->right());
        const AggregateExpr* agg = agg_l != nullptr ? agg_l : agg_r;
        const LiteralExpr* lit = agg_l != nullptr ? lit_r : lit_l;
        if (agg != nullptr && lit != nullptr && agg->agg_id() >= 0 &&
            static_cast<size_t>(agg->agg_id()) < inc_aggs_.size() &&
            lit->value().is_numeric()) {
          const IncAgg& ia = inc_aggs_[static_cast<size_t>(agg->agg_id())];
          const bool supported =
              ia.src == IncAggSrc::kGroupCount ||
              (ia.src == IncAggSrc::kAccum &&
               (ia.func == AggFunc::kAvg || ia.func == AggFunc::kSum ||
                ia.func == AggFunc::kCount));
          if (supported) {
            plan.having_gate = true;
            plan.having_agg = agg->agg_id();
            plan.having_op = cmp->op();
            plan.having_const = lit->value().AsDouble();
            plan.having_agg_left = agg_l != nullptr;
          }
        }
      }
    }
    batch_plan_ = std::move(plan);
    return;
  } while (false);

  // Per-lane fallback (plan scratch from failed attempts is dropped).
  BatchPlan fallback;
  fallback.type = type;
  fallback.triggered = plan.triggered;
  batch_plan_ = std::move(fallback);
}

void Statement::OnBatchFilter(const EventBatch& batch, EventPool* pool,
                              std::vector<BatchMatch>* out) {
  BatchPlan& p = batch_plan_;
  const size_t n = batch.size();
  if (p.triggered) {
    lane_mask_.assign(n, 1);
    for (const ColumnProgram& prog : p.predicates) {
      prog.EvalAndInto(batch, &lane_mask_);
    }
    for (size_t lane = 0; lane < n; ++lane) {
      if (lane_mask_[lane] == 0) continue;
      const EventPtr& ev = batch.LaneEvent(lane, pool);
      row_scratch_[0] = ev.get();
      pending_.clear();
      agg_scratch_.clear();
      EmitMatch(JoinRow(row_scratch_.data(), 1));
      row_scratch_[0] = nullptr;
      batch_flush_scratch_.clear();
      FlushPending(&batch_flush_scratch_);
      total_matches_ += batch_flush_scratch_.size();
      for (MatchResult& m : batch_flush_scratch_) {
        out->push_back({static_cast<uint32_t>(lane), this, std::move(m)});
      }
    }
  }
  total_events_ += n;
  // A lastevent window only ever exposes its latest occupant, and nothing
  // observed the window mid-batch: inserting just the final lane's event
  // leaves the identical end state without n-1 dead insertions.
  if (n > 0) {
    expired_scratch_.clear();
    windows_[0]->Insert(batch.LaneEvent(n - 1, pool), &expired_scratch_);
  }
}

void Statement::OnBatchIncAgg(const EventBatch& batch, EventPool* pool,
                              std::vector<BatchMatch>* out) {
  BatchPlan& p = batch_plan_;
  const size_t n = batch.size();
  const bool emit = p.triggered;
  if (emit) {
    lane_mask_.assign(n, 1);
    // Gates reference only lane columns (never the grouped source), so they
    // vectorize over the whole batch up front.
    for (const ColumnProgram& prog : p.predicates) {
      prog.EvalAndInto(batch, &lane_mask_);
    }
  }
  const std::vector<int64_t>& gcol = *batch.IntCol(p.group_field);
  const std::vector<int64_t>& kcol = *batch.IntCol(p.key_field);
  const size_t cap = p.group_capacity;
  const bool has_acc = !inc_accum_args_.empty();
  const size_t n_args = p.accum_fields.size();

  JoinRow row(row_scratch_.data(), row_scratch_.size());
  EvalContext ctx;
  ctx.row = &row;

  // Every lane's event enters its group ring, so materialize them all in one
  // column-major pass instead of paying the per-lane switch in LaneEvent.
  batch.MaterializeAll(pool);
  const std::vector<EventPtr>& lanes = batch.lane_events();

  for (size_t lane = 0; lane < n; ++lane) {
    const EventPtr& ev = lanes[lane];
    for (int s : p.lastevent_sources) {
      row_scratch_[static_cast<size_t>(s)] = ev.get();
    }
    GroupSlot* slot = ProbeGroupSlot(gcol[lane], /*create=*/true);
    EventRing& ring = *slot->ring;
    ring.push_back(ev);
    const Event* evicted = nullptr;
    EventPtr evicted_keep;
    while (ring.size() > cap) {
      evicted_keep = ring.TakeFront();
      evicted = evicted_keep.get();
    }
    if (has_acc) {
      // AccumInsert(current) then AccumRemove(evicted), in OnEvent's order,
      // reading column values instead of re-evaluating field refs. The
      // evicted event came out of this group's ring, so its accumulator is
      // this slot's — no accums_ lookup needed.
      GroupAccum& acc = *slot->acc;
      ++acc.count;
      for (size_t a = 0; a < n_args; ++a) {
        const double v = ColAsDouble(batch, p.accum_fields[a], lane);
        ArgAccum& aa = acc.args[a];
        aa.sum += v;
        if (aa.minmax_valid) {
          if (v < aa.min_v) aa.min_v = v;
          if (v > aa.max_v) aa.max_v = v;
        }
      }
      if (evicted != nullptr) {
        for (size_t a = 0; a < n_args; ++a) {
          const double v = evicted->Get(p.accum_fields[a]).AsDouble();
          ArgAccum& aa = acc.args[a];
          aa.sum -= v;
          if (aa.minmax_valid && (v <= aa.min_v || v >= aa.max_v)) {
            aa.minmax_valid = false;
          }
        }
        if (acc.count > 0 && --acc.count == 0) {
          for (ArgAccum& aa : acc.args) aa = ArgAccum{};
        }
      }
    }
    if (emit && lane_mask_[lane] != 0) {
      pending_.clear();
      GroupSlot* emit_slot = slot;
      if (p.key_field != p.group_field && kcol[lane] != gcol[lane]) {
        // Lookup key differs from this lane's own group: probe without
        // creating (GroupContents semantics — unseen keys emit nothing).
        emit_slot = ProbeGroupSlot(kcol[lane], /*create=*/false);
      }
      if (emit_slot != nullptr &&
          (!p.having_gate ||
           HavingGatePasses(p, *emit_slot->ring, emit_slot->acc))) {
        EmitIncrementalGroup(Value(kcol[lane]), *emit_slot->ring, &ctx,
                             emit_slot->acc);
        batch_flush_scratch_.clear();
        FlushPending(&batch_flush_scratch_);
        total_matches_ += batch_flush_scratch_.size();
        for (MatchResult& m : batch_flush_scratch_) {
          out->push_back({static_cast<uint32_t>(lane), this, std::move(m)});
        }
      }
    }
  }
  for (int s : p.lastevent_sources) {
    row_scratch_[static_cast<size_t>(s)] = nullptr;
  }
  total_events_ += n;

  // lastevent companions: only the final lane's event persists (each lane
  // was bound directly above, so intermediates were never observable).
  if (n > 0) {
    const EventPtr& last = lanes[n - 1];
    for (int s : p.lastevent_sources) {
      expired_scratch_.clear();
      windows_[static_cast<size_t>(s)]->Insert(last, &expired_scratch_);
    }
  }
}

bool Statement::HavingGatePasses(const BatchPlan& p, const EventRing& ring,
                                 const GroupAccum* acc) const {
  const size_t count = ring.size();
  if (count == 0) return false;  // EmitIncrementalGroup emits nothing anyway
  const IncAgg& ia = inc_aggs_[static_cast<size_t>(p.having_agg)];
  double v;
  if (ia.src == IncAggSrc::kGroupCount || ia.func == AggFunc::kCount) {
    v = static_cast<double>(count);
  } else {
    // Same expression EmitIncrementalGroup computes, over the same doubles.
    const ArgAccum& aa = acc->args[static_cast<size_t>(ia.accum_pos)];
    v = ia.func == AggFunc::kAvg ? aa.sum / static_cast<double>(count)
                                 : aa.sum;
  }
  const double lhs = p.having_agg_left ? v : p.having_const;
  const double rhs = p.having_agg_left ? p.having_const : v;
  switch (p.having_op) {
    case BinaryOp::kEq:
      return lhs == rhs;
    case BinaryOp::kNe:
      return lhs != rhs;
    case BinaryOp::kLt:
      return lhs < rhs;
    case BinaryOp::kLe:
      return lhs <= rhs;
    case BinaryOp::kGt:
      return lhs > rhs;
    case BinaryOp::kGe:
      return lhs >= rhs;
    default:
      return true;  // unreachable: the plan only compiles comparisons
  }
}

Statement::GroupSlot* Statement::ProbeGroupSlot(int64_t key, bool create) {
  BatchPlan& p = batch_plan_;
  if (p.group_slots.empty()) {
    p.group_slots.assign(64, GroupSlot{});
    p.group_slot_mask = 63;
    p.group_slot_count = 0;
  }
  size_t pos = SlotIndexFor(key, p.group_slot_mask);
  while (true) {
    GroupSlot& s = p.group_slots[pos];
    if (!s.used) break;
    if (s.key == key) return &s;
    pos = (pos + 1) & p.group_slot_mask;
  }
  // Cache miss: resolve through the window. The cache can lag the window
  // (row-path traffic between batches populates groups behind its back), so
  // a non-creating probe still consults GroupContents before giving up.
  Window* gw = windows_[static_cast<size_t>(inc_group_source_)].get();
  const Value key_value(key);
  if (!create && gw->GroupContents(key_value) == nullptr) return nullptr;
  if ((p.group_slot_count + 1) * 2 > p.group_slots.size()) {
    GrowGroupSlots();
    pos = SlotIndexFor(key, p.group_slot_mask);
    while (p.group_slots[pos].used) pos = (pos + 1) & p.group_slot_mask;
  }
  GroupSlot& s = p.group_slots[pos];
  s.used = true;
  s.key = key;
  s.ring = gw->MutableGroupRing(key_value);
  s.acc = nullptr;
  if (!inc_accum_args_.empty()) {
    GroupAccum& acc = accums_[key_value];
    if (acc.args.size() != inc_accum_args_.size()) {
      acc.args.resize(inc_accum_args_.size());
    }
    s.acc = &acc;
  }
  ++p.group_slot_count;
  return &s;
}

void Statement::GrowGroupSlots() {
  BatchPlan& p = batch_plan_;
  std::vector<GroupSlot> old = std::move(p.group_slots);
  const size_t new_size = old.size() * 2;
  p.group_slots.assign(new_size, GroupSlot{});
  p.group_slot_mask = new_size - 1;
  for (const GroupSlot& s : old) {
    if (!s.used) continue;
    size_t pos = SlotIndexFor(s.key, p.group_slot_mask);
    while (p.group_slots[pos].used) pos = (pos + 1) & p.group_slot_mask;
    p.group_slots[pos] = s;
  }
}

void Statement::FlushPending(std::vector<MatchResult>* out) {
  if (pending_.empty()) return;
  if (!def_.order_by.empty()) {
    std::stable_sort(pending_.begin(), pending_.end(),
                     [this](const Pending& a, const Pending& b) {
                       ValueLess less;
                       for (size_t k = 0; k < def_.order_by.size(); ++k) {
                         const Value& va = a.sort_keys[k];
                         const Value& vb = b.sort_keys[k];
                         bool desc = def_.order_by[k].descending;
                         if (less(va, vb)) return !desc;
                         if (less(vb, va)) return desc;
                       }
                       return false;
                     });
  }
  size_t limit = pending_.size();
  if (def_.limit > 0 && def_.limit < limit) limit = def_.limit;
  for (size_t i = 0; i < limit; ++i) {
    out->push_back(std::move(pending_[i].match));
  }
  pending_.clear();
}

}  // namespace cep
}  // namespace insight
