#include "cep/statement.h"

#include <algorithm>

#include "common/logging.h"

namespace insight {
namespace cep {

Result<Value> MatchResult::Get(const std::string& column) const {
  for (const auto& [name, value] : columns) {
    if (name == column) return value;
  }
  return Status::NotFound("match has no column '" + column + "'");
}

std::string MatchResult::ToString() const {
  std::string out = statement_name + "{";
  for (size_t i = 0; i < columns.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns[i].first + "=" + columns[i].second.ToString();
  }
  out += "}";
  return out;
}

std::vector<Value> Statement::HashIndex::KeyFor(const Event& e) const {
  std::vector<Value> key;
  key.reserve(field_indexes.size());
  for (int idx : field_indexes) key.push_back(e.Get(idx));
  return key;
}

void Statement::HashIndex::Insert(const EventPtr& e) {
  map[KeyFor(*e)].push_back(e);
}

void Statement::HashIndex::Remove(const EventPtr& e) {
  auto it = map.find(KeyFor(*e));
  if (it == map.end()) return;
  auto& vec = it->second;
  for (size_t i = 0; i < vec.size(); ++i) {
    if (vec[i] == e) {
      vec.erase(vec.begin() + static_cast<long>(i));
      break;
    }
  }
  if (vec.empty()) map.erase(it);
}

namespace {

/// Flattens an AND tree into conjuncts.
void FlattenConjuncts(const Expr* expr, std::vector<const Expr*>* out) {
  const auto* bin = dynamic_cast<const BinaryExpr*>(expr);
  if (bin != nullptr && bin->op() == BinaryOp::kAnd) {
    FlattenConjuncts(bin->left(), out);
    FlattenConjuncts(bin->right(), out);
    return;
  }
  out->push_back(expr);
}

uint32_t SourceMaskOf(const Expr* expr) {
  std::vector<const FieldRefExpr*> refs;
  expr->CollectFieldRefs(&refs);
  uint32_t mask = 0;
  for (const auto* ref : refs) mask |= 1u << ref->source_index();
  return mask;
}

int HighestSource(uint32_t mask) {
  int highest = -1;
  for (int i = 0; i < 32; ++i) {
    if (mask & (1u << i)) highest = i;
  }
  return highest;
}

}  // namespace

Result<std::unique_ptr<Statement>> Statement::Compile(
    StatementDef def, const std::map<std::string, EventTypePtr>& types) {
  if (def.from.empty()) {
    return Status::InvalidArgument("statement requires at least one stream");
  }
  if (def.from.size() > 16) {
    return Status::InvalidArgument("at most 16 streams per statement");
  }
  if (!def.select_all && def.select.empty()) {
    return Status::InvalidArgument("statement requires a SELECT clause");
  }

  auto stmt = std::unique_ptr<Statement>(new Statement());

  // Resolve sources: schemas + windows.
  for (StreamSource& src : def.from) {
    auto type_it = types.find(src.event_type);
    if (type_it == types.end()) {
      return Status::NotFound("unknown event type '" + src.event_type + "'");
    }
    if (src.alias.empty()) src.alias = src.event_type;
    if (stmt->schemas_.AliasIndex(src.alias) >= 0) {
      return Status::AlreadyExists("duplicate stream alias '" + src.alias + "'");
    }
    stmt->schemas_.aliases.push_back(src.alias);
    stmt->schemas_.types.push_back(type_it->second);
    INSIGHT_ASSIGN_OR_RETURN(auto window,
                             Window::Create(src.views, type_it->second));
    stmt->windows_.push_back(std::move(window));
  }
  for (const std::string& trigger : def.trigger_types) {
    if (types.find(trigger) == types.end()) {
      return Status::NotFound("unknown trigger type '" + trigger + "'");
    }
  }

  // Resolve expressions.
  if (def.where != nullptr) {
    INSIGHT_RETURN_NOT_OK(def.where->Resolve(stmt->schemas_));
  }
  for (auto& g : def.group_by) INSIGHT_RETURN_NOT_OK(g->Resolve(stmt->schemas_));
  if (def.having != nullptr) {
    INSIGHT_RETURN_NOT_OK(def.having->Resolve(stmt->schemas_));
  }
  for (auto& item : def.select) {
    INSIGHT_RETURN_NOT_OK(item.expr->Resolve(stmt->schemas_));
    if (item.name.empty()) item.name = item.expr->ToString();
  }
  for (auto& item : def.order_by) {
    INSIGHT_RETURN_NOT_OK(item.expr->Resolve(stmt->schemas_));
  }

  // Type check: WHERE/HAVING must be boolean-ish; every expression must be
  // internally well-typed (no arithmetic or aggregation over strings).
  if (def.where != nullptr) {
    INSIGHT_ASSIGN_OR_RETURN(ValueType where_type, def.where->DeduceType());
    if (where_type == ValueType::kString) {
      return Status::InvalidArgument("WHERE must be boolean, got string");
    }
  }
  if (def.having != nullptr) {
    INSIGHT_ASSIGN_OR_RETURN(ValueType having_type, def.having->DeduceType());
    if (having_type == ValueType::kString) {
      return Status::InvalidArgument("HAVING must be boolean, got string");
    }
  }
  for (const auto& item : def.select) {
    INSIGHT_RETURN_NOT_OK(item.expr->DeduceType().status());
  }
  for (const auto& g : def.group_by) {
    INSIGHT_RETURN_NOT_OK(g->DeduceType().status());
  }
  for (const auto& item : def.order_by) {
    INSIGHT_RETURN_NOT_OK(item.expr->DeduceType().status());
  }

  // Aggregates may appear in HAVING and SELECT (not in WHERE, like SQL).
  if (def.where != nullptr) {
    std::vector<AggregateExpr*> where_aggs;
    def.where->CollectAggregates(&where_aggs);
    if (!where_aggs.empty()) {
      return Status::InvalidArgument("aggregates are not allowed in WHERE");
    }
  }
  if (def.having != nullptr) def.having->CollectAggregates(&stmt->aggregates_);
  for (auto& item : def.select) item.expr->CollectAggregates(&stmt->aggregates_);
  for (auto& item : def.order_by) {
    item.expr->CollectAggregates(&stmt->aggregates_);
  }
  for (size_t i = 0; i < stmt->aggregates_.size(); ++i) {
    stmt->aggregates_[i]->set_agg_id(static_cast<int>(i));
  }

  // Conjunct decomposition.
  if (def.where != nullptr) {
    std::vector<const Expr*> flat;
    FlattenConjuncts(def.where.get(), &flat);
    for (const Expr* e : flat) {
      Conjunct c;
      c.expr = e;
      c.source_mask = SourceMaskOf(e);
      stmt->conjuncts_.push_back(c);
    }
  }

  // Join planning: for each source after the first, gather equi-join
  // conjuncts `this.field = <expr over earlier sources>`.
  stmt->plans_.resize(def.from.size());
  stmt->source_indexes_.resize(def.from.size());
  for (size_t i = 1; i < def.from.size(); ++i) {
    SourcePlan& plan = stmt->plans_[i];
    uint32_t earlier_mask = (1u << i) - 1;
    for (const Conjunct& c : stmt->conjuncts_) {
      const auto* bin = dynamic_cast<const BinaryExpr*>(c.expr);
      if (bin == nullptr || bin->op() != BinaryOp::kEq) continue;
      const auto* lf = dynamic_cast<const FieldRefExpr*>(bin->left());
      const auto* rf = dynamic_cast<const FieldRefExpr*>(bin->right());
      const FieldRefExpr* mine = nullptr;
      const Expr* other = nullptr;
      if (lf != nullptr && lf->source_index() == static_cast<int>(i)) {
        mine = lf;
        other = bin->right();
      } else if (rf != nullptr && rf->source_index() == static_cast<int>(i)) {
        mine = rf;
        other = bin->left();
      }
      if (mine == nullptr) continue;
      uint32_t other_mask = SourceMaskOf(other);
      if ((other_mask & ~earlier_mask) != 0) continue;  // depends on later source
      plan.my_fields.push_back(mine->field_index());
      plan.bound_exprs.push_back(other);
    }
    if (plan.my_fields.empty()) continue;
    Window* window = stmt->windows_[i].get();
    if (window->grouped()) {
      for (size_t k = 0; k < plan.my_fields.size(); ++k) {
        if (plan.my_fields[k] == window->group_field_index()) {
          plan.use_group_lookup = true;
          plan.group_expr_pos = static_cast<int>(k);
          break;
        }
      }
    }
    if (!plan.use_group_lookup) {
      // Build a hash index over this source keyed on the equi fields.
      HashIndex index;
      index.field_indexes = plan.my_fields;
      stmt->indexes_.push_back(std::move(index));
      plan.use_hash_index = true;
      plan.hash_index_id = static_cast<int>(stmt->indexes_.size() - 1);
      stmt->source_indexes_[i].push_back(plan.hash_index_id);
    }
  }

  stmt->def_ = std::move(def);
  return stmt;
}

bool Statement::ConsumesType(const std::string& type_name) const {
  for (const StreamSource& src : def_.from) {
    if (src.event_type == type_name) return true;
  }
  return false;
}

size_t Statement::RetainedEvents() const {
  size_t total = 0;
  for (const auto& w : windows_) total += w->TotalSize();
  return total;
}

size_t Statement::OnEvent(const EventPtr& event) {
  const std::string& type_name = event->type().name();
  bool consumed = false;
  for (size_t i = 0; i < def_.from.size(); ++i) {
    if (def_.from[i].event_type != type_name) continue;
    consumed = true;
    std::vector<EventPtr> expired;
    windows_[i]->Insert(event, &expired);
    for (int index_id : source_indexes_[i]) {
      indexes_[static_cast<size_t>(index_id)].Insert(event);
      for (const EventPtr& e : expired) {
        indexes_[static_cast<size_t>(index_id)].Remove(e);
      }
    }
  }
  if (!consumed) return 0;
  ++total_events_;

  if (!def_.trigger_types.empty() && def_.trigger_types.count(type_name) == 0) {
    return 0;
  }

  std::vector<MatchResult> matches;
  EvaluateJoin(&matches);
  total_matches_ += matches.size();
  for (const MatchResult& m : matches) {
    for (const Listener& l : listeners_) l(m);
  }
  return matches.size();
}

bool Statement::ConjunctsPass(uint32_t bound_mask, uint32_t newly_bound,
                              const JoinRow& row) {
  EvalContext ctx;
  ctx.row = &row;
  for (const Conjunct& c : conjuncts_) {
    // Evaluate a conjunct exactly when its highest source has just bound
    // (constant conjuncts evaluate with the first source).
    int last = HighestSource(c.source_mask);
    uint32_t last_bit = last < 0 ? 1u : (1u << last);
    if ((last_bit & newly_bound) == 0) continue;
    if ((c.source_mask & ~bound_mask) != 0) continue;
    if (!c.expr->Eval(ctx).AsBool()) return false;
  }
  return true;
}

void Statement::JoinRecurse(size_t depth, JoinRow* row, uint32_t bound_mask,
                            std::vector<JoinRow>* rows) {
  if (depth == windows_.size()) {
    rows->push_back(*row);
    return;
  }
  const SourcePlan& plan = plans_[depth];
  uint32_t new_mask = bound_mask | (1u << depth);

  auto try_candidate = [&](const EventPtr& candidate) {
    (*row)[depth] = candidate;
    if (ConjunctsPass(new_mask, 1u << depth, *row)) {
      JoinRecurse(depth + 1, row, new_mask, rows);
    }
    (*row)[depth] = nullptr;
  };

  Window* window = windows_[depth].get();
  EvalContext ctx;
  ctx.row = row;

  if (plan.use_group_lookup) {
    Value key = plan.bound_exprs[static_cast<size_t>(plan.group_expr_pos)]->Eval(ctx);
    const std::deque<EventPtr>* group = window->GroupContents(key);
    if (group == nullptr) return;
    for (const EventPtr& e : *group) try_candidate(e);
    return;
  }
  if (plan.use_hash_index) {
    std::vector<Value> key;
    key.reserve(plan.bound_exprs.size());
    for (const Expr* e : plan.bound_exprs) key.push_back(e->Eval(ctx));
    const auto& index = indexes_[static_cast<size_t>(plan.hash_index_id)];
    auto it = index.map.find(key);
    if (it == index.map.end()) return;
    // Copy: try_candidate may not mutate the index, but keep iteration safe.
    for (const EventPtr& e : it->second) try_candidate(e);
    return;
  }
  window->ForEach(try_candidate);
}

void Statement::EvaluateJoin(std::vector<MatchResult>* out) {
  std::vector<JoinRow> rows;
  JoinRow row(windows_.size());
  JoinRecurse(0, &row, 0, &rows);
  if (rows.empty()) return;
  EmitGroups(rows, out);
}

void Statement::EmitGroups(const std::vector<JoinRow>& rows,
                           std::vector<MatchResult>* out) {
  const bool has_groups = !def_.group_by.empty();
  const bool has_aggs = !aggregates_.empty();

  // Pending matches of this evaluation; sorted by ORDER BY keys before being
  // appended to *out.
  struct Pending {
    std::vector<Value> sort_keys;
    MatchResult match;
  };
  std::vector<Pending> pending;

  auto emit = [&](const JoinRow& representative,
                  const std::vector<JoinRow>& group_rows) {
    std::vector<Value> agg_values;
    agg_values.reserve(aggregates_.size());
    for (AggregateExpr* agg : aggregates_) {
      agg_values.push_back(agg->Compute(group_rows));
    }
    EvalContext ctx;
    ctx.row = &representative;
    ctx.agg_values = &agg_values;
    if (def_.having != nullptr && !def_.having->Eval(ctx).AsBool()) return;

    MatchResult match;
    match.statement_name = def_.name;
    if (def_.select_all) {
      for (size_t s = 0; s < schemas_.types.size(); ++s) {
        const EventPtr& e = representative[s];
        const EventType& type = *schemas_.types[s];
        for (size_t f = 0; f < type.num_fields(); ++f) {
          match.columns.emplace_back(
              schemas_.aliases[s] + "." + type.fields()[f].name,
              e->Get(static_cast<int>(f)));
        }
      }
    }
    for (const SelectItem& item : def_.select) {
      match.columns.emplace_back(item.name, item.expr->Eval(ctx));
    }
    Pending entry;
    entry.sort_keys.reserve(def_.order_by.size());
    for (const OrderByItem& item : def_.order_by) {
      entry.sort_keys.push_back(item.expr->Eval(ctx));
    }
    entry.match = std::move(match);
    pending.push_back(std::move(entry));
  };

  if (!has_groups && !has_aggs) {
    for (const JoinRow& r : rows) emit(r, {r});
  } else if (!has_groups) {
    emit(rows.back(), rows);
  } else {
    std::map<std::vector<Value>, std::vector<JoinRow>, ValueVectorLess> groups;
    for (const JoinRow& r : rows) {
      EvalContext ctx;
      ctx.row = &r;
      std::vector<Value> key;
      key.reserve(def_.group_by.size());
      for (const auto& g : def_.group_by) key.push_back(g->Eval(ctx));
      groups[std::move(key)].push_back(r);
    }
    for (const auto& [key, group_rows] : groups) {
      emit(group_rows.back(), group_rows);
    }
  }

  if (!def_.order_by.empty()) {
    std::stable_sort(pending.begin(), pending.end(),
                     [this](const Pending& a, const Pending& b) {
                       ValueLess less;
                       for (size_t k = 0; k < def_.order_by.size(); ++k) {
                         const Value& va = a.sort_keys[k];
                         const Value& vb = b.sort_keys[k];
                         bool desc = def_.order_by[k].descending;
                         if (less(va, vb)) return !desc;
                         if (less(vb, va)) return desc;
                       }
                       return false;
                     });
  }
  if (def_.limit > 0 && pending.size() > def_.limit) {
    pending.resize(def_.limit);
  }
  for (Pending& entry : pending) out->push_back(std::move(entry.match));
}

}  // namespace cep
}  // namespace insight
