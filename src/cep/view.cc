#include "cep/view.h"

#include <functional>

#include "common/strings.h"

namespace insight {
namespace cep {

std::string ViewSpec::ToString() const {
  switch (kind) {
    case ViewKind::kLastEvent:
      return "std:lastevent()";
    case ViewKind::kLength:
      return StrFormat("win:length(%zu)", length);
    case ViewKind::kLengthBatch:
      return StrFormat("win:length_batch(%zu)", length);
    case ViewKind::kTime:
      return StrFormat("win:time(%lld usec)",
                       static_cast<long long>(duration_micros));
    case ViewKind::kTimeBatch:
      return StrFormat("win:time_batch(%lld usec)",
                       static_cast<long long>(duration_micros));
    case ViewKind::kKeepAll:
      return "win:keepall()";
    case ViewKind::kGroupWin:
      return "std:groupwin(" + group_field + ")";
    case ViewKind::kUnique: {
      std::string out = "std:unique(";
      for (size_t i = 0; i < unique_fields.size(); ++i) {
        if (i > 0) out += ", ";
        out += unique_fields[i];
      }
      return out + ")";
    }
  }
  return "?";
}

bool ValueLess::operator()(const Value& a, const Value& b) const {
  if (a.is_numeric() && b.is_numeric()) return a.AsDouble() < b.AsDouble();
  int ra = static_cast<int>(a.type());
  int rb = static_cast<int>(b.type());
  if (ra != rb) return ra < rb;
  return a.LessThan(b);
}

bool ValueVectorLess::operator()(const std::vector<Value>& a,
                                 const std::vector<Value>& b) const {
  ValueLess less;
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    if (less(a[i], b[i])) return true;
    if (less(b[i], a[i])) return false;
  }
  return a.size() < b.size();
}

size_t ValueHash::operator()(const Value& v) const {
  switch (v.type()) {
    case ValueType::kInt:
    case ValueType::kDouble: {
      double d = v.AsDouble();
      if (d == 0.0) d = 0.0;  // collapse -0.0 onto +0.0 (they Equals())
      return std::hash<double>{}(d);
    }
    case ValueType::kBool:
      return v.AsBool() ? 0x9e3779b97f4a7c15ULL : 0x2545f4914f6cdd1dULL;
    case ValueType::kString:
      return std::hash<std::string>{}(v.AsString());
  }
  return 0;
}

size_t ValueVectorHash::operator()(const std::vector<Value>& v) const {
  ValueHash hash;
  size_t h = 0xcbf29ce484222325ULL;
  for (const Value& value : v) {
    h ^= hash(value);
    h *= 1099511628211ULL;
  }
  return h;
}

bool ValueVectorEq::operator()(const std::vector<Value>& a,
                               const std::vector<Value>& b) const {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!a[i].Equals(b[i])) return false;
  }
  return true;
}

void EventRing::Grow() {
  size_t new_capacity = slots_.empty() ? 8 : slots_.size() * 2;
  std::vector<EventPtr> next(new_capacity);
  for (size_t i = 0; i < count_; ++i) {
    next[i] = std::move(slots_[(head_ + i) & mask_]);
  }
  slots_ = std::move(next);
  mask_ = new_capacity - 1;
  head_ = 0;
}

Result<std::unique_ptr<Window>> Window::Create(const std::vector<ViewSpec>& chain,
                                               EventTypePtr type) {
  auto window = std::unique_ptr<Window>(new Window());
  window->chain_ = chain;
  bool have_data_view = false;
  for (const ViewSpec& spec : chain) {
    if (spec.kind == ViewKind::kGroupWin) {
      if (window->group_field_index_ >= 0) {
        return Status::InvalidArgument("at most one std:groupwin per stream");
      }
      int idx = type->FieldIndex(spec.group_field);
      if (idx < 0) {
        return Status::NotFound("groupwin field '" + spec.group_field +
                                "' not in type " + type->name());
      }
      window->group_field_ = spec.group_field;
      window->group_field_index_ = idx;
      continue;
    }
    if (have_data_view) {
      return Status::InvalidArgument(
          "exactly one data view (length/time/keepall/lastevent) per stream");
    }
    if ((spec.kind == ViewKind::kLength || spec.kind == ViewKind::kLengthBatch) &&
        spec.length == 0) {
      return Status::InvalidArgument("length window requires size > 0");
    }
    if ((spec.kind == ViewKind::kTime || spec.kind == ViewKind::kTimeBatch) &&
        spec.duration_micros <= 0) {
      return Status::InvalidArgument("time window requires duration > 0");
    }
    if (spec.kind == ViewKind::kUnique) {
      if (spec.unique_fields.empty()) {
        return Status::InvalidArgument("std:unique requires key fields");
      }
      for (const std::string& field : spec.unique_fields) {
        int idx = type->FieldIndex(field);
        if (idx < 0) {
          return Status::NotFound("unique field '" + field + "' not in type " +
                                  type->name());
        }
        window->unique_field_indexes_.push_back(idx);
      }
    }
    window->data_view_ = spec;
    have_data_view = true;
  }
  if (window->data_view_.kind == ViewKind::kUnique &&
      window->group_field_index_ >= 0) {
    return Status::InvalidArgument("std:unique cannot combine with groupwin");
  }
  if (!have_data_view) {
    return Status::InvalidArgument("stream requires a data view");
  }
  return window;
}

void Window::InsertInto(Bucket* bucket, const EventPtr& event,
                        std::vector<EventPtr>* expired) {
  switch (data_view_.kind) {
    case ViewKind::kLastEvent:
      if (!bucket->events.empty()) {
        if (expired != nullptr) expired->push_back(bucket->events.front());
        bucket->events.clear();
      }
      bucket->events.push_back(event);
      break;
    case ViewKind::kLength:
      bucket->events.push_back(event);
      while (bucket->events.size() > data_view_.length) {
        if (expired != nullptr) expired->push_back(bucket->events.front());
        bucket->events.pop_front();
      }
      break;
    case ViewKind::kLengthBatch:
      bucket->events.push_back(event);
      if (bucket->events.size() >= data_view_.length) {
        if (expired != nullptr) {
          for (const EventPtr& e : bucket->events) expired->push_back(e);
        }
        bucket->events.clear();
      }
      break;
    case ViewKind::kTime:
      bucket->events.push_back(event);
      ExpireBucket(bucket, event->timestamp(), expired);
      break;
    case ViewKind::kTimeBatch:
      // Flush when the incoming event is outside the current batch interval.
      if (!bucket->events.empty() &&
          event->timestamp() - bucket->events.front()->timestamp() >=
              data_view_.duration_micros) {
        if (expired != nullptr) {
          for (const EventPtr& e : bucket->events) expired->push_back(e);
        }
        bucket->events.clear();
      }
      bucket->events.push_back(event);
      break;
    case ViewKind::kKeepAll:
      bucket->events.push_back(event);
      break;
    case ViewKind::kUnique:
    case ViewKind::kGroupWin:
      break;  // handled by the caller / Insert
  }
}

void Window::ExpireBucket(Bucket* bucket, MicrosT now,
                          std::vector<EventPtr>* expired) {
  if (data_view_.kind != ViewKind::kTime) return;
  while (!bucket->events.empty() &&
         bucket->events.front()->timestamp() <= now - data_view_.duration_micros) {
    if (expired != nullptr) expired->push_back(bucket->events.front());
    bucket->events.pop_front();
  }
}

void Window::Insert(const EventPtr& event, std::vector<EventPtr>* expired) {
  if (data_view_.kind == ViewKind::kUnique) {
    // Probe with a reused key; only a brand-new key pays a copy, so the
    // steady-state refresh path (same threshold key, new value) is
    // allocation-free.
    unique_key_scratch_.clear();
    for (int idx : unique_field_indexes_) {
      unique_key_scratch_.push_back(event->Get(idx));
    }
    auto it = unique_.find(unique_key_scratch_);
    if (it != unique_.end()) {
      if (expired != nullptr) expired->push_back(it->second);
      it->second = event;
    } else {
      unique_.emplace(unique_key_scratch_, event);
    }
    return;
  }
  if (grouped()) {
    const Value& key = event->Get(group_field_index_);
    InsertInto(&groups_[key], event, expired);
  } else {
    InsertInto(&global_, event, expired);
  }
}

void Window::AdvanceTime(MicrosT now, std::vector<EventPtr>* expired) {
  if (grouped()) {
    for (auto& [key, bucket] : groups_) ExpireBucket(&bucket, now, expired);
  } else {
    ExpireBucket(&global_, now, expired);
  }
}

const EventRing& Window::Contents() const { return global_.events; }

const EventRing* Window::GroupContents(const Value& key) const {
  auto it = groups_.find(key);
  return it == groups_.end() ? nullptr : &it->second.events;
}

void Window::ForEach(const std::function<void(const EventPtr&)>& fn) const {
  if (data_view_.kind == ViewKind::kUnique) {
    for (const auto& [key, event] : unique_) fn(event);
    return;
  }
  if (grouped()) {
    for (const auto& [key, bucket] : groups_) {
      for (const EventPtr& e : bucket.events) fn(e);
    }
  } else {
    for (const EventPtr& e : global_.events) fn(e);
  }
}

void Window::ForEachGroup(
    const std::function<void(const Value&, const EventRing&)>& fn) const {
  for (const auto& [key, bucket] : groups_) {
    if (!bucket.events.empty()) fn(key, bucket.events);
  }
}

size_t Window::TotalSize() const {
  if (data_view_.kind == ViewKind::kUnique) return unique_.size();
  if (!grouped()) return global_.events.size();
  size_t total = 0;
  for (const auto& [key, bucket] : groups_) total += bucket.events.size();
  return total;
}

void Window::Clear() {
  global_.events.clear();
  groups_.clear();
  unique_.clear();
}

}  // namespace cep
}  // namespace insight
