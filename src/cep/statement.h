#ifndef INSIGHT_CEP_STATEMENT_H_
#define INSIGHT_CEP_STATEMENT_H_

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cep/expr.h"
#include "cep/view.h"
#include "common/status.h"

namespace insight {
namespace cep {

/// One FROM item: `<event_type>.<view-chain> as <alias>`.
struct StreamSource {
  std::string event_type;
  std::vector<ViewSpec> views;
  std::string alias;
};

/// One projected column. `name` defaults to the expression's text.
struct SelectItem {
  ExprPtr expr;
  std::string name;
};

/// One ORDER BY key.
struct OrderByItem {
  ExprPtr expr;
  bool descending = false;
};

/// The parsed/constructed form of an EPL statement, before compilation
/// against the engine's type registry.
struct StatementDef {
  std::string name;
  /// INSERT INTO target: fired matches are re-injected into the engine as
  /// events of this registered type ("the triggered events can be pushed
  /// further into the Esper engine feeding other rules", Section 2.1.2).
  /// Empty = plain statement.
  std::string insert_into;
  bool select_all = false;
  std::vector<SelectItem> select;
  std::vector<StreamSource> from;
  ExprPtr where;               // may be null
  std::vector<ExprPtr> group_by;
  ExprPtr having;              // may be null
  /// Matches of one evaluation are sorted by these keys before delivery.
  std::vector<OrderByItem> order_by;
  /// Cap on matches delivered per evaluation (after ORDER BY); 0 = no cap.
  /// `ORDER BY avg(x) DESC LIMIT 3` yields the top-3 groups per event.
  size_t limit = 0;
  /// Event types whose arrival triggers join evaluation. Empty = all FROM
  /// types. The traffic rules set this to the bus stream so threshold
  /// refreshes do not fire detections by themselves.
  std::set<std::string> trigger_types;
};

/// A fired-rule output row delivered to listeners.
struct MatchResult {
  std::string statement_name;
  std::vector<std::pair<std::string, Value>> columns;

  /// First column with the given name; NotFound otherwise.
  Result<Value> Get(const std::string& column) const;
  std::string ToString() const;
};

/// Listener invoked for every group that passes HAVING on an evaluation
/// (Esper's UpdateListener). Keep these fast: they run on the engine path.
using Listener = std::function<void(const MatchResult&)>;

/// A compiled, stateful statement. Created via Statement::Compile; owned by
/// the Engine. Not thread-safe on its own (the Engine serializes access, as
/// Esper does per-engine).
class Statement {
 public:
  /// Compiles the definition: resolves expressions, builds windows, plans the
  /// join (group-window lookups and hash indexes for equi-join conjuncts).
  static Result<std::unique_ptr<Statement>> Compile(
      StatementDef def, const std::map<std::string, EventTypePtr>& types);

  /// Processes one event: inserts it into every matching source window and,
  /// if the type triggers this statement, evaluates the join. Matches go to
  /// the registered listeners. Returns the number of matches emitted.
  size_t OnEvent(const EventPtr& event);

  void AddListener(Listener listener) { listeners_.push_back(std::move(listener)); }

  const std::string& name() const { return def_.name; }
  const StatementDef& def() const { return def_; }
  /// Whether this statement consumes the given event type.
  bool ConsumesType(const std::string& type_name) const;

  /// Cumulative matches emitted.
  size_t total_matches() const { return total_matches_; }
  /// Cumulative events consumed (insertions).
  size_t total_events() const { return total_events_; }
  /// Sum of retained window sizes; memory-pressure proxy.
  size_t RetainedEvents() const;

 private:
  Statement() = default;

  struct HashIndex {
    std::vector<int> field_indexes;  // fields of this source forming the key
    std::map<std::vector<Value>, std::vector<EventPtr>, ValueVectorLess> map;

    std::vector<Value> KeyFor(const Event& e) const;
    void Insert(const EventPtr& e);
    void Remove(const EventPtr& e);
  };

  /// Per-source lookup plan for the join cascade.
  struct SourcePlan {
    // Equi-join conjuncts usable when all prior sources are bound:
    // this source's field index i must equal `bound_exprs[i]` evaluated on
    // the partial row.
    std::vector<int> my_fields;
    std::vector<const Expr*> bound_exprs;
    // Lookup strategy.
    bool use_group_lookup = false;  // grouped window, group field in my_fields
    int group_expr_pos = -1;        // position in my_fields of the group field
    bool use_hash_index = false;
    int hash_index_id = -1;
  };

  struct Conjunct {
    const Expr* expr;
    uint32_t source_mask;  // sources referenced
    bool is_equi_used = false;  // consumed by a lookup plan; skip re-eval
  };

  void EvaluateJoin(std::vector<MatchResult>* out);
  void JoinRecurse(size_t depth, JoinRow* row, uint32_t bound_mask,
                   std::vector<JoinRow>* rows);
  bool ConjunctsPass(uint32_t bound_mask, uint32_t newly_bound, const JoinRow& row);
  void EmitGroups(const std::vector<JoinRow>& rows, std::vector<MatchResult>* out);

  StatementDef def_;
  SourceSchemas schemas_;
  std::vector<std::unique_ptr<Window>> windows_;
  std::vector<SourcePlan> plans_;
  std::vector<Conjunct> conjuncts_;
  std::vector<HashIndex> indexes_;           // global registry
  std::vector<std::vector<int>> source_indexes_;  // per-source index ids
  std::vector<AggregateExpr*> aggregates_;
  std::vector<Listener> listeners_;
  size_t total_matches_ = 0;
  size_t total_events_ = 0;
};

}  // namespace cep
}  // namespace insight

#endif  // INSIGHT_CEP_STATEMENT_H_
