#ifndef INSIGHT_CEP_STATEMENT_H_
#define INSIGHT_CEP_STATEMENT_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cep/batch.h"
#include "cep/expr.h"
#include "cep/view.h"
#include "common/stats.h"
#include "common/status.h"

namespace insight {
namespace cep {

/// One FROM item: `<event_type>.<view-chain> as <alias>`.
struct StreamSource {
  std::string event_type;
  std::vector<ViewSpec> views;
  std::string alias;
};

/// One projected column. `name` defaults to the expression's text.
struct SelectItem {
  ExprPtr expr;
  std::string name;
};

/// One ORDER BY key.
struct OrderByItem {
  ExprPtr expr;
  bool descending = false;
};

/// The parsed/constructed form of an EPL statement, before compilation
/// against the engine's type registry.
struct StatementDef {
  std::string name;
  /// INSERT INTO target: fired matches are re-injected into the engine as
  /// events of this registered type ("the triggered events can be pushed
  /// further into the Esper engine feeding other rules", Section 2.1.2).
  /// Empty = plain statement.
  std::string insert_into;
  bool select_all = false;
  std::vector<SelectItem> select;
  std::vector<StreamSource> from;
  ExprPtr where;               // may be null
  std::vector<ExprPtr> group_by;
  ExprPtr having;              // may be null
  /// Matches of one evaluation are sorted by these keys before delivery.
  std::vector<OrderByItem> order_by;
  /// Cap on matches delivered per evaluation (after ORDER BY); 0 = no cap.
  /// `ORDER BY avg(x) DESC LIMIT 3` yields the top-3 groups per event.
  size_t limit = 0;
  /// Event types whose arrival triggers join evaluation. Empty = all FROM
  /// types. The traffic rules set this to the bus stream so threshold
  /// refreshes do not fire detections by themselves.
  std::set<std::string> trigger_types;
};

/// A fired-rule output row delivered to listeners.
struct MatchResult {
  std::string statement_name;
  std::vector<std::pair<std::string, Value>> columns;

  /// First column with the given name; NotFound otherwise.
  Result<Value> Get(const std::string& column) const;
  std::string ToString() const;
};

/// Listener invoked for every group that passes HAVING on an evaluation
/// (Esper's UpdateListener). Keep these fast: they run on the engine path.
using Listener = std::function<void(const MatchResult&)>;

/// A compiled, stateful statement. Created via Statement::Compile; owned by
/// the Engine. Not thread-safe on its own (the Engine serializes access, as
/// Esper does per-engine).
class Statement {
 public:
  /// Compiles the definition: resolves expressions, builds windows, plans the
  /// join (group-window lookups and hash indexes for equi-join conjuncts),
  /// and — when the statement fits the incremental shape — an
  /// accumulator-based aggregation plan that avoids rescanning windows.
  static Result<std::unique_ptr<Statement>> Compile(
      StatementDef def, const std::map<std::string, EventTypePtr>& types);

  /// Processes one event: inserts it into every matching source window and,
  /// if the type triggers this statement, evaluates the join. Matches go to
  /// the registered listeners. Returns the number of matches emitted.
  size_t OnEvent(const EventPtr& event);

  /// A match produced by the batch path, tagged with the lane (row) that
  /// fired it so the engine can restore the exact row-path delivery order
  /// across statements before invoking listeners.
  struct BatchMatch {
    uint32_t lane = 0;
    Statement* statement = nullptr;
    MatchResult match;
  };

  /// Columnar batch entry point (called by Engine::SendBatch). Equivalent to
  /// calling OnEvent for each lane in order, except that matches are appended
  /// to `out` (lane-tagged) instead of delivered — the engine delivers them
  /// in lane-major order after every routed statement ran. Statements whose
  /// shape fits the compiled fast paths (single-source filters; shape-A
  /// incremental aggregation) evaluate column kernels per batch; everything
  /// else falls back to per-lane row evaluation on materialized events.
  void OnBatch(const EventBatch& batch, EventPool* pool,
               std::vector<BatchMatch>* out);

  /// Invokes the registered listeners for one match (the engine's batch path
  /// delivers deferred matches through this).
  void DeliverMatch(const MatchResult& match) const {
    for (const Listener& l : listeners_) l(match);
  }

  void AddListener(Listener listener) { listeners_.push_back(std::move(listener)); }

  const std::string& name() const { return def_.name; }
  const StatementDef& def() const { return def_; }
  /// Whether this statement consumes the given event type.
  bool ConsumesType(const std::string& type_name) const;

  /// Cumulative matches emitted.
  size_t total_matches() const { return total_matches_; }
  /// Cumulative events consumed (insertions).
  size_t total_events() const { return total_events_; }

  /// Diagnostic: true once a batch plan exists for some event type and it
  /// compiled to a column-kernel mode (filter or incremental aggregation)
  /// rather than the per-lane row fallback. Meaningful only after the first
  /// OnBatch call planned the statement; benches assert it to catch silent
  /// fallback regressions.
  bool UsingBatchFastPath() const {
    return batch_plan_.type != nullptr && batch_plan_.mode != BatchMode::kPerLane;
  }
  /// Sum of retained window sizes; memory-pressure proxy.
  size_t RetainedEvents() const;

  /// Whether the incremental aggregation plan is active (introspection for
  /// tests and benchmarks).
  bool incremental() const { return incremental_; }

  // --- Stateful recovery (DESIGN.md "State & recovery") ---

  /// Serializes this statement's operator state — every source window's
  /// retained events plus the event/match counters — into `writer`. Hash
  /// indexes, incremental accumulators, and group tables are derived state
  /// and are NOT serialized: RestoreState rebuilds them by replaying the
  /// retained events through the insertion path.
  void SnapshotState(ByteWriter* writer) const;

  /// Restores state written by SnapshotState against a statement compiled
  /// from the same definition. On any decode or schema mismatch the
  /// statement is reset to clean state and an error is returned — a corrupt
  /// snapshot can never leave partial state behind.
  Status RestoreState(ByteReader* reader);

  /// Drops all retained state (windows, indexes, accumulators, counters).
  void ResetState();

 private:
  Statement() = default;

  struct HashIndex {
    std::vector<int> field_indexes;  // fields of this source forming the key
    // Raw Event pointers: the source window retains the owning EventPtr for
    // as long as an event is indexed (Remove runs on window expiry, while
    // the expired EventPtr is still live).
    std::unordered_map<std::vector<Value>, std::vector<const Event*>,
                       ValueVectorHash, ValueVectorEq>
        map;
    std::vector<Value> key_scratch;

    void Insert(const Event* e);
    void Remove(const Event* e);
  };

  /// Per-source lookup plan for the join cascade.
  struct SourcePlan {
    // Equi-join conjuncts usable when all prior sources are bound:
    // this source's field index i must equal `bound_exprs[i]` evaluated on
    // the partial row.
    std::vector<int> my_fields;
    std::vector<const Expr*> bound_exprs;
    std::vector<int> conjunct_ids;  // conjuncts_ entry behind each pair
    // Lookup strategy.
    bool use_group_lookup = false;  // grouped window, group field in my_fields
    int group_expr_pos = -1;        // position in my_fields of the group field
    bool use_hash_index = false;
    int hash_index_id = -1;
  };

  struct Conjunct {
    const Expr* expr;
    uint32_t source_mask;       // sources referenced
    bool is_equi_used = false;  // enforced by a lookup plan; skip re-eval
  };

  /// How an aggregate is produced under the incremental plan.
  enum class IncAggSrc {
    kGroupCount,  // count(*): the group bucket's size
    kAccum,       // argument depends only on the grouped source: accumulator
    kRowConst,    // argument constant across the group's rows
  };
  struct IncAgg {
    AggFunc func = AggFunc::kCount;
    IncAggSrc src = IncAggSrc::kGroupCount;
    int accum_pos = -1;              // kAccum: index into inc_accum_args_
    const Expr* row_expr = nullptr;  // kRowConst: the argument
  };
  /// Running accumulator for one aggregated argument of one group. min/max
  /// go stale when a min/max-holding event is evicted; the next read rescans
  /// the bucket (which also refreshes sum, killing float drift).
  struct ArgAccum {
    double sum = 0.0;
    double min_v = std::numeric_limits<double>::infinity();
    double max_v = -std::numeric_limits<double>::infinity();
    bool minmax_valid = true;
  };
  struct GroupAccum {
    size_t count = 0;
    std::vector<ArgAccum> args;
  };

  /// Fallback GROUP BY state, persistent across evaluations so the table's
  /// nodes are reused instead of freed/reallocated per event. An entry is
  /// live for the current evaluation iff seq == eval_seq_.
  struct GroupState {
    uint64_t seq = 0;
    std::vector<uint32_t> rows;  // indexes into row_arena_ (by row, not slot)
  };

  struct Pending {
    std::vector<Value> sort_keys;
    MatchResult match;
  };

  JoinRow RowAt(size_t r) const {
    const size_t n = windows_.size();
    return JoinRow(row_arena_.data() + r * n, n);
  }

  void EvaluateJoin(std::vector<MatchResult>* out);
  void JoinRecurse(size_t depth, uint32_t bound_mask);
  bool ConjunctsPass(uint32_t bound_mask, uint32_t newly_bound,
                     const JoinRow& row);
  void EmitGroupsFallback();
  /// Fills agg_scratch_ for the rows in `row_ids`, or rows [0, nrows) when
  /// row_ids is null.
  void ComputeFallbackAggs(const std::vector<uint32_t>* row_ids, size_t nrows);
  /// HAVING-gates the representative row against agg_scratch_ and appends a
  /// Pending match. The no-match path allocates nothing.
  void EmitMatch(const JoinRow& representative);
  void FlushPending(std::vector<MatchResult>* out);

  /// Restore path of RestoreState: runs one event through the same
  /// window/index/accumulator insertion OnEvent uses, without triggering
  /// join evaluation or listeners.
  void InsertRestored(size_t source, const EventPtr& event);

  bool PlanIncremental();
  void EvaluateIncremental();
  /// `acc_hint` skips the accums_ lookup when the caller already resolved the
  /// group's accumulator (the batch path's flat cache); pass nullptr to look
  /// it up by key. Semantics are identical either way.
  void EmitIncrementalGroup(const Value& key, const EventRing& bucket,
                            EvalContext* ctx, GroupAccum* acc_hint = nullptr);
  void RescanAccum(GroupAccum* acc, const EventRing& bucket);
  void AccumInsert(const Event& e);
  void AccumRemove(const Event& e);

  // --- columnar batch path (DESIGN.md "Columnar CEP fast path") ---

  /// How OnBatch processes a batch of the plan's event type.
  enum class BatchMode : uint8_t {
    kPerLane,  // materialize each lane and run the row path
    kFilter,   // single-source filter: compiled predicate -> selected lanes
    kIncAgg,   // shape-A incremental aggregation over flat group slots
  };
  /// Flat open-addressed cache from int64 group key to the group's window
  /// ring and accumulator. Both pointers are stable (std::map / unordered_map
  /// nodes); the cache dies with ResetState/RestoreState and whenever the
  /// batch plan is recompiled.
  struct GroupSlot {
    int64_t key = 0;
    EventRing* ring = nullptr;
    GroupAccum* acc = nullptr;
    bool used = false;
  };
  struct BatchPlan {
    const EventType* type = nullptr;  // plan cache key (engine registry ptr)
    BatchMode mode = BatchMode::kPerLane;
    bool triggered = false;
    /// Compiled predicates, all ANDed per lane: the full WHERE (kFilter) or
    /// one program per non-group gate conjunct (kIncAgg). Empty = all-pass.
    std::vector<ColumnProgram> predicates;
    // kIncAgg only:
    int group_field = -1;             // batch column bucketing insertions
    int key_field = -1;               // batch column probed at emission
    std::vector<int> accum_fields;    // batch column per inc_accum_args_ entry
    std::vector<int> lastevent_sources;  // non-group sources bound per lane
    size_t group_capacity = 0;        // kLength window size
    std::vector<GroupSlot> group_slots;
    size_t group_slot_mask = 0;
    size_t group_slot_count = 0;
    /// Compiled HAVING gate: when HAVING is `agg cmp numeric-literal` over an
    /// incrementally maintained avg/sum/count (and no min/max aggregate whose
    /// lazy rescan a skipped emission would suppress), the gate reads the
    /// group accumulator directly and failing lanes skip match construction —
    /// the steady state of a detection rule, where the threshold almost never
    /// trips. The double compare is the row path's both-numeric semantics.
    bool having_gate = false;
    int having_agg = -1;               // index into inc_aggs_
    BinaryOp having_op = BinaryOp::kLt;
    double having_const = 0.0;
    bool having_agg_left = true;       // agg cmp const (vs const cmp agg)
  };

  /// OnEvent minus listener delivery: matches append to `out`. The batch
  /// path's per-lane fallback uses this so delivery can be deferred and
  /// re-ordered lane-major by the engine.
  size_t OnEventCollect(const EventPtr& event, std::vector<MatchResult>* out);

  void PlanBatch(const EventType* type);
  void OnBatchFilter(const EventBatch& batch, EventPool* pool,
                     std::vector<BatchMatch>* out);
  void OnBatchIncAgg(const EventBatch& batch, EventPool* pool,
                     std::vector<BatchMatch>* out);
  /// Flat-cache probe. `create` resolves a missing group through the window
  /// (creating the ring, as insertion does); non-creating probes return
  /// nullptr when the group does not exist — GroupContents semantics.
  GroupSlot* ProbeGroupSlot(int64_t key, bool create);
  /// Evaluates the compiled HAVING gate (BatchPlan::having_gate) against a
  /// group's accumulator state, exactly as the tree evaluation would
  /// (both-numeric double comparison, NaN-faithful).
  bool HavingGatePasses(const BatchPlan& p, const EventRing& ring,
                        const GroupAccum* acc) const;
  void GrowGroupSlots();

  StatementDef def_;
  SourceSchemas schemas_;
  std::vector<std::unique_ptr<Window>> windows_;
  std::vector<SourcePlan> plans_;
  std::vector<Conjunct> conjuncts_;
  std::vector<HashIndex> indexes_;                // global registry
  std::vector<std::vector<int>> source_indexes_;  // per-source index ids
  /// Unique aggregate nodes (per ToString); duplicated nodes share agg_id.
  std::vector<AggregateExpr*> aggregates_;
  std::vector<char> source_is_trigger_;
  std::vector<Listener> listeners_;
  size_t total_matches_ = 0;
  size_t total_events_ = 0;

  // --- evaluation scratch (reused across OnEvent calls; steady state does
  // not allocate on the no-match path) ---
  std::vector<const Event*> row_scratch_;        // current partial row
  std::vector<const Event*> row_arena_;          // completed rows, stride n
  std::vector<const Event*> accum_row_scratch_;  // only the grouped slot bound
  std::vector<EventPtr> expired_scratch_;
  std::vector<Value> probe_key_;
  std::vector<Value> group_key_scratch_;
  std::vector<Value> agg_scratch_;
  std::vector<RunningStats> stats_scratch_;
  std::vector<Pending> pending_;
  std::unordered_map<std::vector<Value>, GroupState, ValueVectorHash,
                     ValueVectorEq>
      group_table_;
  std::vector<std::pair<const std::vector<Value>*, GroupState*>> touched_groups_;
  uint64_t eval_seq_ = 0;

  // --- incremental aggregation plan ---
  bool incremental_ = false;
  bool inc_shape_a_ = false;  // single group via g's group lookup; else scan
  int inc_group_source_ = -1;
  std::vector<const Expr*> inc_accum_args_;  // distinct accumulated arguments
  std::vector<IncAgg> inc_aggs_;             // parallel to aggregates_
  std::vector<int> inc_gate_conjuncts_;      // conjuncts not touching g
  std::unordered_map<Value, GroupAccum, ValueHash, ValueEq> accums_;

  // --- columnar batch path state ---
  BatchPlan batch_plan_;
  std::vector<uint8_t> lane_mask_;           // per-lane predicate results
  std::vector<MatchResult> batch_flush_scratch_;
  std::vector<MatchResult> per_lane_scratch_;
};

}  // namespace cep
}  // namespace insight

#endif  // INSIGHT_CEP_STATEMENT_H_
