#include "cep/engine.h"

#include <algorithm>

#include "common/check.h"
#include "common/logging.h"

namespace insight {
namespace cep {

Status Engine::RegisterEventType(const std::string& name,
                                 std::vector<EventType::Field> fields) {
  if (types_.count(name) > 0) {
    return Status::AlreadyExists("event type '" + name + "' already registered");
  }
  types_[name] = std::make_shared<EventType>(name, std::move(fields));
  return Status::OK();
}

Result<EventTypePtr> Engine::GetEventType(const std::string& name) const {
  auto it = types_.find(name);
  if (it == types_.end()) {
    return Status::NotFound("unknown event type '" + name + "'");
  }
  return it->second;
}

Result<Statement*> Engine::AddStatement(StatementDef def) {
  if (def.name.empty()) {
    def.name = "stmt-" + std::to_string(next_statement_id_++);
  }
  if (statements_.count(def.name) > 0) {
    return Status::AlreadyExists("statement '" + def.name + "' already exists");
  }
  EventTypePtr insert_type;
  if (!def.insert_into.empty()) {
    INSIGHT_ASSIGN_OR_RETURN(insert_type, GetEventType(def.insert_into));
    if (def.select_all) {
      return Status::InvalidArgument(
          "INSERT INTO requires named SELECT columns matching the target type");
    }
  }
  INSIGHT_ASSIGN_OR_RETURN(auto stmt, Statement::Compile(std::move(def), types_));
  Statement* raw = stmt.get();
  if (insert_type != nullptr) {
    // Matches become events of the target type, fed back into this engine
    // ("the triggered events can be pushed further into the Esper engine
    // feeding other rules"). Column lookup is by name; missing columns keep
    // their default value.
    raw->AddListener([this, insert_type](const MatchResult& match) {
      EventBuilder builder(insert_type);
      for (const EventType::Field& field : insert_type->fields()) {
        auto value = match.Get(field.name);
        if (value.ok()) builder.Set(field.name, *value);
      }
      SendEvent(builder.Build());
    });
  }
  statements_[raw->name()] = std::move(stmt);
  RebuildRouting();
  return raw;
}

Result<Statement*> Engine::AddStatement(const std::string& epl,
                                        const std::string& name) {
  INSIGHT_ASSIGN_OR_RETURN(StatementDef def, ParseEpl(epl));
  if (!name.empty()) def.name = name;
  return AddStatement(std::move(def));
}

Status Engine::RemoveStatement(const std::string& name) {
  auto it = statements_.find(name);
  if (it == statements_.end()) {
    return Status::NotFound("no statement '" + name + "'");
  }
  statements_.erase(it);
  RebuildRouting();
  return Status::OK();
}

Result<Statement*> Engine::GetStatement(const std::string& name) const {
  auto it = statements_.find(name);
  if (it == statements_.end()) {
    return Status::NotFound("no statement '" + name + "'");
  }
  return it->second.get();
}

void Engine::RebuildRouting() {
  routing_.clear();
  routing_by_ptr_.clear();
  for (auto& [name, stmt] : statements_) {
    for (const StreamSource& src : stmt->def().from) {
      auto& vec = routing_[src.event_type];
      if (std::find(vec.begin(), vec.end(), stmt.get()) == vec.end()) {
        vec.push_back(stmt.get());
      }
    }
  }
  for (const auto& [type_name, stmts] : routing_) {
    auto type_it = types_.find(type_name);
    if (type_it != types_.end()) {
      routing_by_ptr_[type_it->second.get()] = stmts;
    }
  }
}

size_t Engine::SendEvent(const EventPtr& event) {
#if TMS_DCHECK_ENABLED
  // Serial-processing contract: every send must come from the one thread
  // that owns this engine. A violation means the DSPS layer routed two
  // executors into the same engine — statement windows would race.
  if (owner_thread_ == std::thread::id()) {
    owner_thread_ = std::this_thread::get_id();
  }
  TMS_DCHECK(owner_thread_ == std::this_thread::get_id())
      << "engine is single-threaded but SendEvent came from a second thread";
#endif
  // Guard against INSERT INTO cycles (a rule feeding a stream it consumes).
  if (send_depth_ >= kMaxInsertDepth) {
    INSIGHT_LOG(Warning) << "insert-into recursion capped at depth "
                         << kMaxInsertDepth << " for type "
                         << event->type().name();
    return 0;
  }
  ++send_depth_;
  // Only the outermost send stamps the trigger: matches fired by INSERT INTO
  // feedback report the external event that started the cascade, which is
  // what detection consumers timestamp against.
  if (send_depth_ == 1) current_trigger_ts_ = event->timestamp();
  MicrosT start = clock_->NowMicros();
  size_t matches = 0;
  // Pointer-keyed routing for events built from this engine's registry; the
  // string map only serves events carrying a foreign EventType instance.
  auto ptr_it = routing_by_ptr_.find(&event->type());
  if (ptr_it != routing_by_ptr_.end()) {
    for (Statement* stmt : ptr_it->second) matches += stmt->OnEvent(event);
  } else {
    auto it = routing_.find(event->type().name());
    if (it != routing_.end()) {
      for (Statement* stmt : it->second) matches += stmt->OnEvent(event);
    }
  }
  MicrosT elapsed = clock_->NowMicros() - start;
  latency_micros_.Add(static_cast<double>(elapsed));
  ++events_processed_;
  matches_fired_ += matches;
  --send_depth_;
  return matches;
}

size_t Engine::SendBatch(const EventBatch& batch) {
#if TMS_DCHECK_ENABLED
  if (owner_thread_ == std::thread::id()) {
    owner_thread_ = std::this_thread::get_id();
  }
  TMS_DCHECK(owner_thread_ == std::this_thread::get_id())
      << "engine is single-threaded but SendBatch came from a second thread";
#endif
  const size_t n = batch.size();
  if (n == 0) return 0;
  const std::vector<Statement*>* stmts = nullptr;
  auto ptr_it = routing_by_ptr_.find(&batch.type());
  if (ptr_it != routing_by_ptr_.end()) {
    stmts = &ptr_it->second;
  } else {
    auto it = routing_.find(batch.type().name());
    if (it != routing_.end()) stmts = &it->second;
  }
  if (stmts != nullptr) {
    for (Statement* stmt : *stmts) {
      if (!stmt->def().insert_into.empty()) {
        // A feedback statement re-enters SendEvent mid-stream; batching the
        // other statements would reorder their matches relative to the fed-
        // back events, so process the whole batch lane by lane instead.
        size_t matches = 0;
        for (size_t lane = 0; lane < n; ++lane) {
          matches += SendEvent(batch.LaneEvent(lane, &event_pool_));
        }
        return matches;
      }
    }
  }
  if (send_depth_ >= kMaxInsertDepth) {
    INSIGHT_LOG(Warning) << "insert-into recursion capped at depth "
                         << kMaxInsertDepth << " for type "
                         << batch.type().name();
    return 0;
  }
  ++send_depth_;
  MicrosT start = clock_->NowMicros();
  size_t matches = 0;
  if (stmts != nullptr) {
    batch_matches_.clear();
    // Deliver from a local vector so a listener that calls back into
    // SendBatch cannot clobber the one being iterated; the move dance
    // preserves capacity across batches.
    std::vector<Statement::BatchMatch> collected = std::move(batch_matches_);
    batch_matches_ = std::vector<Statement::BatchMatch>();
    for (Statement* stmt : *stmts) {
      stmt->OnBatch(batch, &event_pool_, &collected);
    }
    // Statements ran batch-major; the row path interleaves them per event.
    // A stable sort by lane restores that exact global delivery order.
    std::stable_sort(collected.begin(), collected.end(),
                     [](const Statement::BatchMatch& a,
                        const Statement::BatchMatch& b) {
                       return a.lane < b.lane;
                     });
    matches = collected.size();
    const std::vector<MicrosT>& lane_ts = batch.timestamps();
    for (Statement::BatchMatch& m : collected) {
      // Outermost send stamps the trigger per delivered match (see
      // SendEvent); a nested send from a listener keeps the outer stamp.
      if (send_depth_ == 1) current_trigger_ts_ = lane_ts[m.lane];
      m.statement->DeliverMatch(m.match);
    }
    collected.clear();
    batch_matches_ = std::move(collected);
  }
  MicrosT elapsed = clock_->NowMicros() - start;
  // One wall-clock sample per batch, scaled to per-event cost, keeps the
  // latency stats the calibration reads comparable with the row path.
  latency_micros_.Add(static_cast<double>(elapsed) / static_cast<double>(n));
  events_processed_ += n;
  matches_fired_ += matches;
  --send_depth_;
  return matches;
}

EventBuilder Engine::NewEvent(const std::string& type_name) const {
  auto it = types_.find(type_name);
  INSIGHT_CHECK(it != types_.end()) << "unknown event type " << type_name;
  return EventBuilder(it->second);
}

std::vector<std::string> Engine::StatementNames() const {
  std::vector<std::string> names;
  names.reserve(statements_.size());
  for (const auto& [name, stmt] : statements_) names.push_back(name);
  return names;
}

namespace {
// "SNP1" little-endian: identifies an engine snapshot container.
constexpr uint32_t kSnapshotMagic = 0x31504e53;
constexpr uint32_t kSnapshotVersion = 1;
}  // namespace

Status Engine::Snapshot(std::string* out) const {
  out->clear();
  ByteWriter writer(out);
  writer.PutU32(kSnapshotMagic);
  writer.PutU32(kSnapshotVersion);
  writer.PutU64(events_processed_);
  writer.PutU64(matches_fired_);
  writer.PutU32(static_cast<uint32_t>(statements_.size()));
  std::string blob;
  for (const auto& [name, stmt] : statements_) {
    writer.PutString(name);
    blob.clear();
    ByteWriter section(&blob);
    stmt->SnapshotState(&section);
    writer.PutString(blob);
  }
  return Status::OK();
}

Status Engine::Restore(const std::string& bytes) {
  auto fail = [this](const std::string& msg) {
    for (auto& [name, stmt] : statements_) stmt->ResetState();
    return Status::ParseError("engine snapshot: " + msg);
  };
  // Start from clean state so statements absent from the snapshot (or a
  // mid-stream decode failure) cannot retain stale windows.
  for (auto& [name, stmt] : statements_) stmt->ResetState();
  ByteReader reader(bytes);
  uint32_t magic, version;
  if (!reader.GetU32(&magic) || !reader.GetU32(&version)) {
    return fail("truncated header");
  }
  if (magic != kSnapshotMagic) return fail("bad magic");
  if (version != kSnapshotVersion) {
    return fail("unsupported version " + std::to_string(version));
  }
  uint64_t events_processed, matches_fired;
  uint32_t count;
  if (!reader.GetU64(&events_processed) || !reader.GetU64(&matches_fired) ||
      !reader.GetU32(&count)) {
    return fail("truncated totals");
  }
  std::string name, blob;
  for (uint32_t i = 0; i < count; ++i) {
    if (!reader.GetString(&name) || !reader.GetString(&blob)) {
      return fail("truncated statement section");
    }
    auto it = statements_.find(name);
    if (it == statements_.end()) {
      // The snapshot was taken under a different rule set; restoring a
      // subset would silently drop state, so treat it as a mismatch.
      return fail("unknown statement '" + name + "'");
    }
    ByteReader section(blob);
    Status status = it->second->RestoreState(&section);
    if (!status.ok()) return fail(status.message());
  }
  events_processed_ = events_processed;
  matches_fired_ = matches_fired;
  return Status::OK();
}

Engine::EngineStats Engine::GetStats() const {
  EngineStats stats;
  stats.events_processed = events_processed_;
  stats.matches_fired = matches_fired_;
  stats.latency_micros = latency_micros_;
  for (const auto& [name, stmt] : statements_) {
    stats.retained_events += stmt->RetainedEvents();
  }
  return stats;
}

void Engine::ResetStats() {
  events_processed_ = 0;
  matches_fired_ = 0;
  latency_micros_ = RunningStats();
}

}  // namespace cep
}  // namespace insight
