#include "cep/epl_parser.h"

#include <cctype>

#include "common/strings.h"

namespace insight {
namespace cep {

namespace {

enum class TokKind {
  kIdent,
  kInt,
  kDouble,
  kString,
  kOp,     // = != < <= > >= + - * / %
  kPunct,  // . , ( ) : @
  kEnd,
};

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;
  int64_t int_value = 0;
  double double_value = 0.0;
  size_t pos = 0;
};

class Lexer {
 public:
  explicit Lexer(const std::string& input) : in_(input) {}

  Status Tokenize(std::vector<Token>* out) {
    size_t i = 0;
    while (i < in_.size()) {
      char c = in_[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      Token tok;
      tok.pos = i;
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t start = i;
        while (i < in_.size() && (std::isalnum(static_cast<unsigned char>(in_[i])) ||
                                  in_[i] == '_')) {
          ++i;
        }
        tok.kind = TokKind::kIdent;
        tok.text = in_.substr(start, i - start);
        out->push_back(tok);
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c))) {
        size_t start = i;
        bool is_double = false;
        while (i < in_.size() && (std::isdigit(static_cast<unsigned char>(in_[i])) ||
                                  in_[i] == '.')) {
          if (in_[i] == '.') {
            // "1.foo" would be a field access on a number; not in our grammar.
            if (i + 1 < in_.size() &&
                !std::isdigit(static_cast<unsigned char>(in_[i + 1]))) {
              break;
            }
            is_double = true;
          }
          ++i;
        }
        // Scientific notation.
        if (i < in_.size() && (in_[i] == 'e' || in_[i] == 'E')) {
          size_t j = i + 1;
          if (j < in_.size() && (in_[j] == '+' || in_[j] == '-')) ++j;
          if (j < in_.size() && std::isdigit(static_cast<unsigned char>(in_[j]))) {
            is_double = true;
            i = j;
            while (i < in_.size() &&
                   std::isdigit(static_cast<unsigned char>(in_[i]))) {
              ++i;
            }
          }
        }
        std::string text = in_.substr(start, i - start);
        if (is_double) {
          INSIGHT_ASSIGN_OR_RETURN(tok.double_value, ParseDouble(text));
          tok.kind = TokKind::kDouble;
        } else {
          INSIGHT_ASSIGN_OR_RETURN(tok.int_value, ParseInt(text));
          tok.kind = TokKind::kInt;
        }
        tok.text = std::move(text);
        out->push_back(tok);
        continue;
      }
      if (c == '\'') {
        ++i;
        std::string text;
        while (i < in_.size() && in_[i] != '\'') {
          text.push_back(in_[i]);
          ++i;
        }
        if (i >= in_.size()) {
          return Status::ParseError("unterminated string literal");
        }
        ++i;
        tok.kind = TokKind::kString;
        tok.text = std::move(text);
        out->push_back(tok);
        continue;
      }
      if (c == '!' && i + 1 < in_.size() && in_[i + 1] == '=') {
        tok.kind = TokKind::kOp;
        tok.text = "!=";
        i += 2;
        out->push_back(tok);
        continue;
      }
      if ((c == '<' || c == '>') && i + 1 < in_.size() && in_[i + 1] == '=') {
        tok.kind = TokKind::kOp;
        tok.text = std::string(1, c) + "=";
        i += 2;
        out->push_back(tok);
        continue;
      }
      if (c == '=' || c == '<' || c == '>' || c == '+' || c == '-' || c == '*' ||
          c == '/' || c == '%') {
        tok.kind = TokKind::kOp;
        tok.text = std::string(1, c);
        ++i;
        out->push_back(tok);
        continue;
      }
      if (c == '.' || c == ',' || c == '(' || c == ')' || c == ':' || c == '@') {
        tok.kind = TokKind::kPunct;
        tok.text = std::string(1, c);
        ++i;
        out->push_back(tok);
        continue;
      }
      return Status::ParseError(StrFormat("unexpected character '%c' at %zu", c, i));
    }
    Token end;
    end.kind = TokKind::kEnd;
    end.pos = in_.size();
    out->push_back(end);
    return Status::OK();
  }

 private:
  const std::string& in_;
};

class EplParser {
 public:
  explicit EplParser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<StatementDef> Parse() {
    StatementDef def;
    while (PeekIsPunct("@")) {
      INSIGHT_RETURN_NOT_OK(ParseAnnotation(&def));
    }
    if (ConsumeKeyword("insert")) {
      if (!ConsumeKeyword("into")) return Err("expected INTO after INSERT");
      if (Peek().kind != TokKind::kIdent) {
        return Err("expected event type after INSERT INTO");
      }
      def.insert_into = Peek().text;
      Advance();
    }
    if (!ConsumeKeyword("select")) return Err("expected SELECT");
    INSIGHT_RETURN_NOT_OK(ParseSelectList(&def));
    if (!ConsumeKeyword("from")) return Err("expected FROM");
    INSIGHT_RETURN_NOT_OK(ParseFromList(&def));
    if (ConsumeKeyword("where")) {
      INSIGHT_ASSIGN_OR_RETURN(def.where, ParseExpr());
    }
    if (PeekKeyword("group")) {
      Advance();
      if (!ConsumeKeyword("by")) return Err("expected BY after GROUP");
      while (true) {
        INSIGHT_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        def.group_by.push_back(std::move(e));
        if (!ConsumePunct(",")) break;
      }
    }
    if (ConsumeKeyword("having")) {
      INSIGHT_ASSIGN_OR_RETURN(def.having, ParseExpr());
    }
    if (PeekKeyword("order")) {
      Advance();
      if (!ConsumeKeyword("by")) return Err("expected BY after ORDER");
      while (true) {
        OrderByItem item;
        INSIGHT_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (ConsumeKeyword("desc")) {
          item.descending = true;
        } else {
          (void)ConsumeKeyword("asc");
        }
        def.order_by.push_back(std::move(item));
        if (!ConsumePunct(",")) break;
      }
    }
    if (ConsumeKeyword("limit")) {
      if (Peek().kind != TokKind::kInt || Peek().int_value <= 0) {
        return Err("expected positive integer after LIMIT");
      }
      def.limit = static_cast<size_t>(Peek().int_value);
      Advance();
    }
    if (Peek().kind != TokKind::kEnd) {
      return Err("unexpected trailing input '" + Peek().text + "'");
    }
    return def;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t idx = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[idx];
  }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }

  Status Err(const std::string& msg) const {
    return Status::ParseError(
        StrFormat("EPL at offset %zu: %s", Peek().pos, msg.c_str()));
  }

  bool PeekKeyword(const char* kw) const {
    return Peek().kind == TokKind::kIdent && ToLower(Peek().text) == kw;
  }
  bool ConsumeKeyword(const char* kw) {
    if (!PeekKeyword(kw)) return false;
    Advance();
    return true;
  }
  bool PeekIsPunct(const char* p) const {
    return Peek().kind == TokKind::kPunct && Peek().text == p;
  }
  bool ConsumePunct(const char* p) {
    if (!PeekIsPunct(p)) return false;
    Advance();
    return true;
  }
  bool PeekIsOp(const char* op, size_t ahead = 0) const {
    return Peek(ahead).kind == TokKind::kOp && Peek(ahead).text == op;
  }
  bool ConsumeOp(const char* op) {
    if (!PeekIsOp(op)) return false;
    Advance();
    return true;
  }

  Status ParseAnnotation(StatementDef* def) {
    ConsumePunct("@");
    if (Peek().kind != TokKind::kIdent) return Err("expected annotation name");
    std::string name = ToLower(Peek().text);
    Advance();
    if (name != "trigger") return Err("unknown annotation @" + name);
    if (!ConsumePunct("(")) return Err("expected '(' after @Trigger");
    while (true) {
      if (Peek().kind != TokKind::kIdent) return Err("expected type in @Trigger");
      def->trigger_types.insert(Peek().text);
      Advance();
      if (!ConsumePunct(",")) break;
    }
    if (!ConsumePunct(")")) return Err("expected ')' after @Trigger list");
    return Status::OK();
  }

  Status ParseSelectList(StatementDef* def) {
    if (PeekIsOp("*")) {
      Advance();
      def->select_all = true;
      return Status::OK();
    }
    while (true) {
      SelectItem item;
      INSIGHT_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (ConsumeKeyword("as")) {
        if (Peek().kind != TokKind::kIdent) return Err("expected name after AS");
        item.name = Peek().text;
        Advance();
      }
      def->select.push_back(std::move(item));
      if (!ConsumePunct(",")) break;
    }
    return Status::OK();
  }

  Status ParseFromList(StatementDef* def) {
    while (true) {
      StreamSource src;
      if (Peek().kind != TokKind::kIdent) return Err("expected event type in FROM");
      src.event_type = Peek().text;
      Advance();
      while (PeekIsPunct(".")) {
        Advance();
        INSIGHT_ASSIGN_OR_RETURN(ViewSpec view, ParseView());
        src.views.push_back(view);
      }
      if (src.views.empty()) {
        // A bare stream behaves as keep-all (Esper default retains per the
        // statement's needs; keep-all is the conservative choice).
        src.views.push_back(ViewSpec::KeepAll());
      }
      if (ConsumeKeyword("as")) {
        if (Peek().kind != TokKind::kIdent) return Err("expected alias after AS");
        src.alias = Peek().text;
        Advance();
      }
      def->from.push_back(std::move(src));
      if (!ConsumePunct(",")) break;
    }
    return Status::OK();
  }

  Result<ViewSpec> ParseView() {
    if (Peek().kind != TokKind::kIdent) return Err("expected view namespace");
    std::string ns = ToLower(Peek().text);
    Advance();
    if (!ConsumePunct(":")) return Err("expected ':' in view");
    if (Peek().kind != TokKind::kIdent) return Err("expected view name");
    std::string name = ToLower(Peek().text);
    Advance();
    if (!ConsumePunct("(")) return Err("expected '(' after view name");

    auto parse_close = [&]() -> Status {
      if (!ConsumePunct(")")) return Err("expected ')' closing view");
      return Status::OK();
    };

    if (ns == "std" && name == "lastevent") {
      INSIGHT_RETURN_NOT_OK(parse_close());
      return ViewSpec::LastEvent();
    }
    if (ns == "std" && name == "groupwin") {
      if (Peek().kind != TokKind::kIdent) return Err("expected groupwin field");
      std::string field = Peek().text;
      Advance();
      INSIGHT_RETURN_NOT_OK(parse_close());
      return ViewSpec::GroupWin(field);
    }
    if (ns == "std" && name == "unique") {
      std::vector<std::string> fields;
      while (true) {
        if (Peek().kind != TokKind::kIdent) return Err("expected unique field");
        fields.push_back(Peek().text);
        Advance();
        if (!ConsumePunct(",")) break;
      }
      INSIGHT_RETURN_NOT_OK(parse_close());
      return ViewSpec::Unique(std::move(fields));
    }
    if (ns == "win" && name == "keepall") {
      INSIGHT_RETURN_NOT_OK(parse_close());
      return ViewSpec::KeepAll();
    }
    if (ns == "win" && (name == "length" || name == "length_batch")) {
      if (Peek().kind != TokKind::kInt) return Err("expected window length");
      int64_t n = Peek().int_value;
      Advance();
      if (n <= 0) return Err("window length must be positive");
      INSIGHT_RETURN_NOT_OK(parse_close());
      return name == "length" ? ViewSpec::Length(static_cast<size_t>(n))
                              : ViewSpec::LengthBatch(static_cast<size_t>(n));
    }
    if (ns == "win" && (name == "time" || name == "time_batch")) {
      if (Peek().kind != TokKind::kInt && Peek().kind != TokKind::kDouble) {
        return Err("expected window duration");
      }
      double amount = Peek().kind == TokKind::kInt
                          ? static_cast<double>(Peek().int_value)
                          : Peek().double_value;
      Advance();
      double scale = 1000000.0;  // default seconds
      if (Peek().kind == TokKind::kIdent) {
        std::string unit = ToLower(Peek().text);
        if (unit == "sec" || unit == "seconds" || unit == "second") {
          scale = 1000000.0;
        } else if (unit == "msec" || unit == "milliseconds") {
          scale = 1000.0;
        } else if (unit == "min" || unit == "minutes") {
          scale = 60000000.0;
        } else {
          return Err("unknown time unit '" + unit + "'");
        }
        Advance();
      }
      INSIGHT_RETURN_NOT_OK(parse_close());
      auto micros = static_cast<MicrosT>(amount * scale);
      return name == "time" ? ViewSpec::Time(micros) : ViewSpec::TimeBatch(micros);
    }
    return Err("unknown view " + ns + ":" + name);
  }

  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    INSIGHT_ASSIGN_OR_RETURN(ExprPtr left, ParseAnd());
    while (PeekKeyword("or")) {
      Advance();
      INSIGHT_ASSIGN_OR_RETURN(ExprPtr right, ParseAnd());
      left = Bin(BinaryOp::kOr, std::move(left), std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParseAnd() {
    INSIGHT_ASSIGN_OR_RETURN(ExprPtr left, ParseNot());
    while (PeekKeyword("and")) {
      Advance();
      INSIGHT_ASSIGN_OR_RETURN(ExprPtr right, ParseNot());
      left = Bin(BinaryOp::kAnd, std::move(left), std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParseNot() {
    if (PeekKeyword("not")) {
      Advance();
      INSIGHT_ASSIGN_OR_RETURN(ExprPtr operand, ParseNot());
      return ExprPtr(std::make_unique<UnaryExpr>(UnaryOp::kNot, std::move(operand)));
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    INSIGHT_ASSIGN_OR_RETURN(ExprPtr left, ParseAdditive());
    static const std::pair<const char*, BinaryOp> kOps[] = {
        {"=", BinaryOp::kEq},  {"!=", BinaryOp::kNe}, {"<=", BinaryOp::kLe},
        {">=", BinaryOp::kGe}, {"<", BinaryOp::kLt},  {">", BinaryOp::kGt},
    };
    for (const auto& [text, op] : kOps) {
      if (PeekIsOp(text)) {
        Advance();
        INSIGHT_ASSIGN_OR_RETURN(ExprPtr right, ParseAdditive());
        return Bin(op, std::move(left), std::move(right));
      }
    }
    return left;
  }

  Result<ExprPtr> ParseAdditive() {
    INSIGHT_ASSIGN_OR_RETURN(ExprPtr left, ParseMultiplicative());
    while (PeekIsOp("+") || PeekIsOp("-")) {
      BinaryOp op = PeekIsOp("+") ? BinaryOp::kAdd : BinaryOp::kSub;
      Advance();
      INSIGHT_ASSIGN_OR_RETURN(ExprPtr right, ParseMultiplicative());
      left = Bin(op, std::move(left), std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParseMultiplicative() {
    INSIGHT_ASSIGN_OR_RETURN(ExprPtr left, ParseUnary());
    while (PeekIsOp("*") || PeekIsOp("/") || PeekIsOp("%")) {
      BinaryOp op = PeekIsOp("*")   ? BinaryOp::kMul
                    : PeekIsOp("/") ? BinaryOp::kDiv
                                    : BinaryOp::kMod;
      Advance();
      INSIGHT_ASSIGN_OR_RETURN(ExprPtr right, ParseUnary());
      left = Bin(op, std::move(left), std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParseUnary() {
    if (PeekIsOp("-")) {
      Advance();
      INSIGHT_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
      return ExprPtr(std::make_unique<UnaryExpr>(UnaryOp::kNeg, std::move(operand)));
    }
    return ParsePrimary();
  }

  static bool AggFuncFromName(const std::string& lower, AggFunc* out) {
    if (lower == "avg") *out = AggFunc::kAvg;
    else if (lower == "sum") *out = AggFunc::kSum;
    else if (lower == "count") *out = AggFunc::kCount;
    else if (lower == "min") *out = AggFunc::kMin;
    else if (lower == "max") *out = AggFunc::kMax;
    else if (lower == "stddev" || lower == "stdev") *out = AggFunc::kStddev;
    else return false;
    return true;
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& tok = Peek();
    switch (tok.kind) {
      case TokKind::kInt: {
        int64_t v = tok.int_value;
        Advance();
        return Lit(Value(v));
      }
      case TokKind::kDouble: {
        double v = tok.double_value;
        Advance();
        return Lit(Value(v));
      }
      case TokKind::kString: {
        std::string v = tok.text;
        Advance();
        return Lit(Value(std::move(v)));
      }
      case TokKind::kPunct:
        if (tok.text == "(") {
          Advance();
          INSIGHT_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
          if (!ConsumePunct(")")) return Err("expected ')'");
          return inner;
        }
        return Err("unexpected '" + tok.text + "'");
      case TokKind::kIdent: {
        std::string lower = ToLower(tok.text);
        if (lower == "true" || lower == "false") {
          Advance();
          return Lit(Value(lower == "true"));
        }
        // Function call?
        AggFunc func;
        if (Peek(1).kind == TokKind::kPunct && Peek(1).text == "(" &&
            AggFuncFromName(lower, &func)) {
          Advance();  // name
          Advance();  // (
          if (PeekIsOp("*")) {
            Advance();
            if (!ConsumePunct(")")) return Err("expected ')' after count(*)");
            if (func != AggFunc::kCount) {
              return Err("only count(*) supports '*'");
            }
            return ExprPtr(std::make_unique<AggregateExpr>(func, nullptr));
          }
          INSIGHT_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
          if (!ConsumePunct(")")) return Err("expected ')' closing aggregate");
          return ExprPtr(std::make_unique<AggregateExpr>(func, std::move(arg)));
        }
        // Field ref: ident or ident.ident.
        std::string first = tok.text;
        Advance();
        if (PeekIsPunct(".")) {
          Advance();
          if (Peek().kind != TokKind::kIdent) {
            return Err("expected field name after '.'");
          }
          std::string field = Peek().text;
          Advance();
          return Field(first, field);
        }
        return Field(first);
      }
      case TokKind::kOp:
      case TokKind::kEnd:
        return Err("unexpected '" + tok.text + "' in expression");
    }
    return Err("unexpected token");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<StatementDef> ParseEpl(const std::string& epl) {
  std::vector<Token> tokens;
  Lexer lexer(epl);
  INSIGHT_RETURN_NOT_OK(lexer.Tokenize(&tokens));
  EplParser parser(std::move(tokens));
  return parser.Parse();
}

}  // namespace cep
}  // namespace insight
