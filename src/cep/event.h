#ifndef INSIGHT_CEP_EVENT_H_
#define INSIGHT_CEP_EVENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/static_analysis.h"
#include "common/status.h"

namespace insight {
namespace cep {

/// Field value types supported by event schemas.
enum class ValueType { kInt, kDouble, kBool, kString };

const char* ValueTypeToString(ValueType type);

class Value;

/// Serializes a Value (type tag + payload) for the snapshot formats.
void EncodeValue(const Value& v, ByteWriter* writer);
/// Decodes a Value written by EncodeValue; false on truncation or an unknown
/// type tag (the buffer is garbage, not a version skew).
bool DecodeValue(ByteReader* reader, Value* out);

/// A dynamically typed field value. Numeric comparisons coerce int to double,
/// mirroring EPL semantics.
class Value {
 public:
  Value() : data_(int64_t{0}) {}
  // Implicit constructors are the point: literals convert directly in
  // event field lists ({Value(3), "stop", 2.5}).
  Value(int64_t v) : data_(v) {}  // NOLINT(runtime/explicit): implicit by design
  Value(int v) : data_(int64_t{v}) {}  // NOLINT(runtime/explicit): implicit by design
  Value(double v) : data_(v) {}  // NOLINT(runtime/explicit): implicit by design
  Value(bool v) : data_(v) {}  // NOLINT(runtime/explicit): implicit by design
  Value(std::string v) : data_(std::move(v)) {}  // NOLINT(runtime/explicit): implicit by design
  Value(const char* v) : data_(std::string(v)) {}  // NOLINT(runtime/explicit): implicit by design

  ValueType type() const;

  bool is_numeric() const {
    return std::holds_alternative<int64_t>(data_) ||
           std::holds_alternative<double>(data_);
  }

  /// Numeric coercion; booleans coerce to 0/1; strings are an error caught by
  /// the expression type-checker, here they yield 0.
  double AsDouble() const;
  int64_t AsInt() const;
  bool AsBool() const;
  const std::string& AsString() const;

  std::string ToString() const;

  /// Equality: numerics compare by value across int/double; other types must
  /// match exactly.
  bool Equals(const Value& other) const;
  /// Ordering for numeric and string values.
  bool LessThan(const Value& other) const;

  bool operator==(const Value& other) const { return Equals(other); }

 private:
  std::variant<int64_t, double, bool, std::string> data_;
};

namespace detail {

/// Precomputed open-addressing hash table mapping names to ordinal indices.
/// Backs EventType::FieldIndex and dsps::Fields::IndexOf so by-name field
/// access is O(1) instead of a std::map walk / linear scan. Slots hold only
/// (hash, index), so copying the owner stays trivially safe — the candidate
/// name is re-verified against the owner's own storage via `get_name`.
class NameIndex {
 public:
  static uint64_t HashName(const std::string& name) {
    uint64_t h = 1469598103934665603ULL;
    for (char c : name) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ULL;
    }
    return h;
  }

  /// Builds the table over `count` names. `keep_first` selects the duplicate
  /// policy (Fields::IndexOf returned the first match; EventType's map kept
  /// the last).
  template <typename GetName>
  void Build(size_t count, bool keep_first, const GetName& get_name) {
    size_t capacity = 8;
    while (capacity < count * 2) capacity *= 2;
    slots_.assign(capacity, Slot{});
    mask_ = capacity - 1;
    for (size_t i = 0; i < count; ++i) {
      const std::string& name = get_name(i);
      uint64_t hash = HashName(name);
      size_t pos = static_cast<size_t>(hash) & mask_;
      while (true) {
        Slot& slot = slots_[pos];
        if (slot.index < 0) {
          slot.hash = hash;
          slot.index = static_cast<int32_t>(i);
          break;
        }
        if (slot.hash == hash &&
            get_name(static_cast<size_t>(slot.index)) == name) {
          if (!keep_first) slot.index = static_cast<int32_t>(i);
          break;
        }
        pos = (pos + 1) & mask_;
      }
    }
  }

  /// Index of `name` or -1.
  template <typename GetName>
  int Find(const std::string& name, const GetName& get_name) const
      TMS_NO_ALLOC {
    if (slots_.empty()) return -1;
    uint64_t hash = HashName(name);
    size_t pos = static_cast<size_t>(hash) & mask_;
    while (true) {
      const Slot& slot = slots_[pos];
      if (slot.index < 0) return -1;
      if (slot.hash == hash &&
          get_name(static_cast<size_t>(slot.index)) == name) {
        return slot.index;
      }
      pos = (pos + 1) & mask_;
    }
  }

 private:
  struct Slot {
    uint64_t hash = 0;
    int32_t index = -1;
  };
  std::vector<Slot> slots_;
  size_t mask_ = 0;
};

}  // namespace detail

/// An event schema: ordered, named, typed fields. Event types are shared
/// immutable objects owned by the engine's registry.
class EventType {
 public:
  struct Field {
    std::string name;
    ValueType type;
  };

  EventType(std::string name, std::vector<Field> fields);

  const std::string& name() const { return name_; }
  const std::vector<Field>& fields() const { return fields_; }
  size_t num_fields() const { return fields_.size(); }

  /// Index of a field or -1.
  int FieldIndex(const std::string& field_name) const TMS_NO_ALLOC {
    return index_.Find(field_name,
                       [this](size_t i) -> const std::string& {
                         return fields_[i].name;
                       });
  }
  bool HasField(const std::string& field_name) const {
    return FieldIndex(field_name) >= 0;
  }

 private:
  std::string name_;
  std::vector<Field> fields_;
  detail::NameIndex index_;
};

using EventTypePtr = std::shared_ptr<const EventType>;

/// An immutable event instance. Events are passed by shared_ptr so windows
/// can retain them without copying payloads.
class Event {
 public:
  /// Receives the event's value storage back when a pooled event dies, so
  /// the vector's capacity (and any string capacity inside, for fixed-width
  /// schemas the strings stay SSO) can be reused by the next event.
  class BufferSink {
   public:
    virtual ~BufferSink() = default;
    virtual void RecycleBuffer(std::vector<Value>&& values) = 0;
  };

  Event(EventTypePtr type, std::vector<Value> values, MicrosT timestamp = 0);
  ~Event();

  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;

  const EventType& type() const { return *type_; }
  const EventTypePtr& type_ptr() const { return type_; }
  MicrosT timestamp() const { return timestamp_; }

  const Value& Get(int index) const { return values_[static_cast<size_t>(index)]; }
  /// Field access by name; NotFound for unknown fields.
  Result<Value> Get(const std::string& field) const;

  const std::vector<Value>& values() const { return values_; }
  std::string ToString() const;

 private:
  friend class EventPool;
  void set_buffer_sink(BufferSink* sink) { buffer_sink_ = sink; }

  EventTypePtr type_;
  std::vector<Value> values_;
  MicrosT timestamp_;
  BufferSink* buffer_sink_ = nullptr;
};

using EventPtr = std::shared_ptr<const Event>;

/// Per-engine freelist for events: recycles both the combined
/// object+control-block allocation of a pooled event and the event's value
/// vector, so steady-state ingestion of fixed-width (non-string-growing)
/// schemas performs zero heap allocations per event.
///
/// Lifetime rules: the pool's shared state outlives every event it created —
/// each pooled event's control block holds a reference — so events may safely
/// outlive the pool object (and the engine owning it). Freelists are bounded;
/// overflow falls back to the global allocator. Not thread-safe: a pool
/// belongs to one engine, and engines are single-threaded by design.
class EventPool {
 public:
  struct State;

  EventPool();

  EventPool(const EventPool&) = delete;
  EventPool& operator=(const EventPool&) = delete;

  /// Creates a pooled event. Pass a buffer from TakeBuffer() (filled with the
  /// field values) for the zero-allocation round trip; any vector works.
  EventPtr Create(EventTypePtr type, std::vector<Value> values,
                  MicrosT timestamp = 0) TMS_NO_ALLOC;

  /// An empty value buffer with recycled capacity (empty capacity when the
  /// freelist is dry — the first few events warm it up).
  std::vector<Value> TakeBuffer() TMS_NO_ALLOC;

  /// Freelist introspection (tests).
  size_t free_blocks() const;
  size_t free_buffers() const;

 private:
  std::shared_ptr<State> state_;
};

/// Convenience builder used by tests and the traffic adapters.
class EventBuilder {
 public:
  explicit EventBuilder(EventTypePtr type) : type_(std::move(type)) {
    values_.resize(type_->num_fields());
  }

  EventBuilder& Set(const std::string& field, Value value);
  EventBuilder& SetTimestamp(MicrosT ts) {
    timestamp_ = ts;
    return *this;
  }
  EventPtr Build() const {
    return std::make_shared<Event>(type_, values_, timestamp_);
  }

 private:
  EventTypePtr type_;
  std::vector<Value> values_;
  MicrosT timestamp_ = 0;
};

}  // namespace cep
}  // namespace insight

#endif  // INSIGHT_CEP_EVENT_H_
