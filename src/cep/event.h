#ifndef INSIGHT_CEP_EVENT_H_
#define INSIGHT_CEP_EVENT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "common/clock.h"
#include "common/status.h"

namespace insight {
namespace cep {

/// Field value types supported by event schemas.
enum class ValueType { kInt, kDouble, kBool, kString };

const char* ValueTypeToString(ValueType type);

/// A dynamically typed field value. Numeric comparisons coerce int to double,
/// mirroring EPL semantics.
class Value {
 public:
  Value() : data_(int64_t{0}) {}
  Value(int64_t v) : data_(v) {}            // NOLINT(runtime/explicit)
  Value(int v) : data_(int64_t{v}) {}       // NOLINT(runtime/explicit)
  Value(double v) : data_(v) {}             // NOLINT(runtime/explicit)
  Value(bool v) : data_(v) {}               // NOLINT(runtime/explicit)
  Value(std::string v) : data_(std::move(v)) {}  // NOLINT(runtime/explicit)
  Value(const char* v) : data_(std::string(v)) {}  // NOLINT(runtime/explicit)

  ValueType type() const;

  bool is_numeric() const {
    return std::holds_alternative<int64_t>(data_) ||
           std::holds_alternative<double>(data_);
  }

  /// Numeric coercion; booleans coerce to 0/1; strings are an error caught by
  /// the expression type-checker, here they yield 0.
  double AsDouble() const;
  int64_t AsInt() const;
  bool AsBool() const;
  const std::string& AsString() const;

  std::string ToString() const;

  /// Equality: numerics compare by value across int/double; other types must
  /// match exactly.
  bool Equals(const Value& other) const;
  /// Ordering for numeric and string values.
  bool LessThan(const Value& other) const;

  bool operator==(const Value& other) const { return Equals(other); }

 private:
  std::variant<int64_t, double, bool, std::string> data_;
};

/// An event schema: ordered, named, typed fields. Event types are shared
/// immutable objects owned by the engine's registry.
class EventType {
 public:
  struct Field {
    std::string name;
    ValueType type;
  };

  EventType(std::string name, std::vector<Field> fields);

  const std::string& name() const { return name_; }
  const std::vector<Field>& fields() const { return fields_; }
  size_t num_fields() const { return fields_.size(); }

  /// Index of a field or -1.
  int FieldIndex(const std::string& field_name) const;
  bool HasField(const std::string& field_name) const {
    return FieldIndex(field_name) >= 0;
  }

 private:
  std::string name_;
  std::vector<Field> fields_;
  std::map<std::string, int> index_;
};

using EventTypePtr = std::shared_ptr<const EventType>;

/// An immutable event instance. Events are passed by shared_ptr so windows
/// can retain them without copying payloads.
class Event {
 public:
  Event(EventTypePtr type, std::vector<Value> values, MicrosT timestamp = 0);

  const EventType& type() const { return *type_; }
  const EventTypePtr& type_ptr() const { return type_; }
  MicrosT timestamp() const { return timestamp_; }

  const Value& Get(int index) const { return values_[static_cast<size_t>(index)]; }
  /// Field access by name; NotFound for unknown fields.
  Result<Value> Get(const std::string& field) const;

  const std::vector<Value>& values() const { return values_; }
  std::string ToString() const;

 private:
  EventTypePtr type_;
  std::vector<Value> values_;
  MicrosT timestamp_;
};

using EventPtr = std::shared_ptr<const Event>;

/// Convenience builder used by tests and the traffic adapters.
class EventBuilder {
 public:
  explicit EventBuilder(EventTypePtr type) : type_(std::move(type)) {
    values_.resize(type_->num_fields());
  }

  EventBuilder& Set(const std::string& field, Value value);
  EventBuilder& SetTimestamp(MicrosT ts) {
    timestamp_ = ts;
    return *this;
  }
  EventPtr Build() const {
    return std::make_shared<Event>(type_, values_, timestamp_);
  }

 private:
  EventTypePtr type_;
  std::vector<Value> values_;
  MicrosT timestamp_ = 0;
};

}  // namespace cep
}  // namespace insight

#endif  // INSIGHT_CEP_EVENT_H_
