#ifndef INSIGHT_CEP_ENGINE_H_
#define INSIGHT_CEP_ENGINE_H_

#include <map>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cep/epl_parser.h"
#include "cep/statement.h"
#include "common/clock.h"
#include "common/stats.h"

namespace insight {
namespace cep {

/// A CEP engine in the style of Esper: a registry of event types plus a set
/// of standing statements (rules). Incoming events are processed serially —
/// "new arriving data are processed serially and the Esper engine responds in
/// real time" (Section 2.1.2) — so an Engine is single-threaded by design and
/// the DSPS layer runs one engine per executor to scale out.
class Engine {
 public:
  explicit Engine(const Clock* clock = SystemClock::Get()) : clock_(clock) {}

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Registers an event schema. AlreadyExists if the name is taken.
  Status RegisterEventType(const std::string& name,
                           std::vector<EventType::Field> fields);
  Result<EventTypePtr> GetEventType(const std::string& name) const;

  /// Compiles and installs a statement from a definition. The returned
  /// pointer stays valid until RemoveStatement / engine destruction.
  Result<Statement*> AddStatement(StatementDef def);

  /// Compiles and installs a statement from EPL text. `name` overrides any
  /// generated statement name.
  Result<Statement*> AddStatement(const std::string& epl,
                                  const std::string& name = "");

  Status RemoveStatement(const std::string& name);
  Result<Statement*> GetStatement(const std::string& name) const;

  /// Processes one event through every statement that consumes its type.
  /// Returns the number of matches fired across statements.
  size_t SendEvent(const EventPtr& event);

  /// Processes a column-major batch of events of one registered type.
  /// Semantically equivalent to calling SendEvent per lane in order — every
  /// listener sees the same matches in the same order — but statements whose
  /// shape fits the compiled batch fast paths evaluate column kernels over
  /// the whole batch instead of re-interpreting expression trees per event.
  /// Statements targeted by INSERT INTO feedback shred the batch back into
  /// per-lane sends (feedback interleaving must match the row path exactly).
  /// Returns the number of matches fired across statements.
  size_t SendBatch(const EventBatch& batch);

  /// Builder bound to a registered type; CHECK-fails on unknown type (use
  /// GetEventType for fallible lookup).
  EventBuilder NewEvent(const std::string& type_name) const;

  size_t num_statements() const { return statements_.size(); }
  std::vector<std::string> StatementNames() const;

  /// Per-engine processing metrics (used to calibrate the latency model).
  struct EngineStats {
    size_t events_processed = 0;
    size_t matches_fired = 0;
    /// Wall time spent inside SendEvent.
    RunningStats latency_micros;
    /// Sum of events retained across all statement windows right now.
    size_t retained_events = 0;
  };
  EngineStats GetStats() const;
  void ResetStats();

  // --- Stateful recovery (DESIGN.md "State & recovery") ---

  /// Serializes every statement's operator state (view buffers, incremental
  /// accumulator inputs, last-event/unique state, counters) plus the engine
  /// totals into a versioned byte format. The rule set and type registry are
  /// NOT serialized: Restore targets an engine prepared with the same
  /// statements, which is what the DSPS layer guarantees by reinstalling a
  /// task's rules before restoring its checkpoint.
  Status Snapshot(std::string* out) const;

  /// Restores a snapshot taken by Snapshot() on an engine with the same
  /// statements installed. On failure (truncated or corrupt bytes, version
  /// or rule-set mismatch) every statement is reset to clean state and an
  /// error is returned — a bad snapshot degrades to a clean restart, it
  /// never crashes and never leaves partial state.
  Status Restore(const std::string& bytes);

  /// Per-engine event freelist. Adapters on the ingest hot path should build
  /// events with `event_pool().Create(...)` (reusing `TakeBuffer()` storage)
  /// so steady-state ingestion does not touch the heap.
  EventPool& event_pool() { return event_pool_; }

  /// Timestamp of the outermost event whose processing is firing the
  /// currently-running listener — valid only inside a listener callback.
  /// SendEvent stamps it with the event's timestamp; SendBatch stamps it per
  /// delivered match with the triggering lane's timestamp. Nested sends
  /// (INSERT INTO feedback) keep the outer stamp, so matches fired by
  /// fed-back events still report the external event that started the
  /// cascade — identical on the row and batch paths.
  MicrosT current_trigger_timestamp() const { return current_trigger_ts_; }

 private:
  static constexpr int kMaxInsertDepth = 16;

  const Clock* clock_;
  /// Engines are single-threaded by design (see class comment); debug
  /// builds pin the engine to the first thread that sends an event and
  /// DCHECK every later send against it. Default-constructed = unbound.
  std::thread::id owner_thread_;
  int send_depth_ = 0;
  std::map<std::string, EventTypePtr> types_;
  std::map<std::string, std::unique_ptr<Statement>> statements_;
  /// type name -> statements consuming it (rebuilt on add/remove).
  std::map<std::string, std::vector<Statement*>> routing_;
  /// Registered-type instance -> statements; the hot lookup. Events carrying
  /// a foreign EventType instance fall back to the name map.
  std::unordered_map<const EventType*, std::vector<Statement*>> routing_by_ptr_;
  EventPool event_pool_;
  size_t next_statement_id_ = 0;
  size_t events_processed_ = 0;
  size_t matches_fired_ = 0;
  RunningStats latency_micros_;
  /// SendBatch scratch: lane-tagged matches collected across statements,
  /// re-sorted into row-path delivery order before listeners run.
  std::vector<Statement::BatchMatch> batch_matches_;
  /// See current_trigger_timestamp(). Written only when send_depth_ == 1 so
  /// nested (feedback) sends never overwrite the external trigger.
  MicrosT current_trigger_ts_ = 0;

  void RebuildRouting();
};

}  // namespace cep
}  // namespace insight

#endif  // INSIGHT_CEP_ENGINE_H_
