#include "cep/event.h"

#include <algorithm>

#include "common/check.h"
#include "common/logging.h"
#include "common/strings.h"

namespace insight {
namespace cep {

const char* ValueTypeToString(ValueType type) {
  switch (type) {
    case ValueType::kInt:
      return "int";
    case ValueType::kDouble:
      return "double";
    case ValueType::kBool:
      return "bool";
    case ValueType::kString:
      return "string";
  }
  return "?";
}

void EncodeValue(const Value& v, ByteWriter* writer) {
  writer->PutU8(static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case ValueType::kInt:
      writer->PutI64(v.AsInt());
      break;
    case ValueType::kDouble:
      writer->PutDouble(v.AsDouble());
      break;
    case ValueType::kBool:
      writer->PutU8(v.AsBool() ? 1 : 0);
      break;
    case ValueType::kString:
      writer->PutString(v.AsString());
      break;
  }
}

bool DecodeValue(ByteReader* reader, Value* out) {
  uint8_t tag;
  if (!reader->GetU8(&tag)) return false;
  switch (static_cast<ValueType>(tag)) {
    case ValueType::kInt: {
      int64_t v;
      if (!reader->GetI64(&v)) return false;
      *out = Value(v);
      return true;
    }
    case ValueType::kDouble: {
      double v;
      if (!reader->GetDouble(&v)) return false;
      *out = Value(v);
      return true;
    }
    case ValueType::kBool: {
      uint8_t v;
      if (!reader->GetU8(&v)) return false;
      *out = Value(v != 0);
      return true;
    }
    case ValueType::kString: {
      std::string v;
      if (!reader->GetString(&v)) return false;
      *out = Value(std::move(v));
      return true;
    }
  }
  return false;
}

ValueType Value::type() const {
  if (std::holds_alternative<int64_t>(data_)) return ValueType::kInt;
  if (std::holds_alternative<double>(data_)) return ValueType::kDouble;
  if (std::holds_alternative<bool>(data_)) return ValueType::kBool;
  return ValueType::kString;
}

double Value::AsDouble() const {
  if (const auto* d = std::get_if<double>(&data_)) return *d;
  if (const auto* i = std::get_if<int64_t>(&data_)) return static_cast<double>(*i);
  if (const auto* b = std::get_if<bool>(&data_)) return *b ? 1.0 : 0.0;
  return 0.0;
}

int64_t Value::AsInt() const {
  if (const auto* i = std::get_if<int64_t>(&data_)) return *i;
  if (const auto* d = std::get_if<double>(&data_)) return static_cast<int64_t>(*d);
  if (const auto* b = std::get_if<bool>(&data_)) return *b ? 1 : 0;
  return 0;
}

bool Value::AsBool() const {
  if (const auto* b = std::get_if<bool>(&data_)) return *b;
  if (const auto* i = std::get_if<int64_t>(&data_)) return *i != 0;
  if (const auto* d = std::get_if<double>(&data_)) return *d != 0.0;
  return !std::get<std::string>(data_).empty();
}

const std::string& Value::AsString() const {
  static const std::string kEmpty;
  if (const auto* s = std::get_if<std::string>(&data_)) return *s;
  return kEmpty;
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kInt:
      return std::to_string(std::get<int64_t>(data_));
    case ValueType::kDouble:
      return StrFormat("%g", std::get<double>(data_));
    case ValueType::kBool:
      return std::get<bool>(data_) ? "true" : "false";
    case ValueType::kString:
      return std::get<std::string>(data_);
  }
  return "?";
}

bool Value::Equals(const Value& other) const {
  if (is_numeric() && other.is_numeric()) return AsDouble() == other.AsDouble();
  if (type() != other.type()) return false;
  return data_ == other.data_;
}

bool Value::LessThan(const Value& other) const {
  if (is_numeric() && other.is_numeric()) return AsDouble() < other.AsDouble();
  if (type() == ValueType::kString && other.type() == ValueType::kString) {
    return AsString() < other.AsString();
  }
  if (type() == ValueType::kBool && other.type() == ValueType::kBool) {
    return !AsBool() && other.AsBool();
  }
  return false;
}

EventType::EventType(std::string name, std::vector<Field> fields)
    : name_(std::move(name)), fields_(std::move(fields)) {
  index_.Build(fields_.size(), /*keep_first=*/false,
               [this](size_t i) -> const std::string& {
                 return fields_[i].name;
               });
}

Event::Event(EventTypePtr type, std::vector<Value> values, MicrosT timestamp)
    : type_(std::move(type)), values_(std::move(values)), timestamp_(timestamp) {
  INSIGHT_CHECK(values_.size() == type_->num_fields())
      << "event for type " << type_->name() << " has " << values_.size()
      << " values, schema has " << type_->num_fields();
}

Event::~Event() {
  if (buffer_sink_ != nullptr) {
    buffer_sink_->RecycleBuffer(std::move(values_));
  }
}

Result<Value> Event::Get(const std::string& field) const {
  int idx = type_->FieldIndex(field);
  if (idx < 0) {
    return Status::NotFound("event type " + type_->name() + " has no field '" +
                            field + "'");
  }
  return values_[static_cast<size_t>(idx)];
}

std::string Event::ToString() const {
  std::string out = type_->name() + "{";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) out += ", ";
    out += type_->fields()[i].name + "=" + values_[i].ToString();
  }
  out += "}";
  return out;
}

// ---------------------------------------------------------------------------
// EventPool
// ---------------------------------------------------------------------------

/// Shared freelist state. Held by shared_ptr from the pool AND from each
/// pooled event's control block (via the allocator copy stored there), so the
/// recycled storage outlives every event regardless of destruction order.
struct EventPool::State : Event::BufferSink {
  static constexpr size_t kMaxBlocks = 4096;
  static constexpr size_t kMaxBuffers = 4096;

  /// Size of the fused object+control-block allocation, fixed after the
  /// first pooled event; foreign sizes bypass the freelist.
  size_t block_size = 0;
  std::vector<void*> blocks;
  std::vector<std::vector<Value>> buffers;

  ~State() override {
    for (void* block : blocks) ::operator delete(block);
  }

  void RecycleBuffer(std::vector<Value>&& values) override {
    if (buffers.size() >= kMaxBuffers) return;  // let it free normally
    values.clear();  // destroys Values; keeps the vector's capacity
    buffers.push_back(std::move(values));
  }
};

namespace {

/// Allocator handed to allocate_shared: recycles the single fixed-size block
/// that holds an Event fused with its shared_ptr control block.
template <typename T>
struct PoolAllocator {
  using value_type = T;

  explicit PoolAllocator(std::shared_ptr<EventPool::State> s)
      : state(std::move(s)) {}
  template <typename U>
  PoolAllocator(const PoolAllocator<U>& other)  // NOLINT(runtime/explicit): rebind conversion required by allocator_traits
      : state(other.state) {}

  T* allocate(size_t n) {
    if (n == 1) {
      if (state->block_size == 0) state->block_size = sizeof(T);
      if (sizeof(T) == state->block_size && !state->blocks.empty()) {
        void* block = state->blocks.back();
        state->blocks.pop_back();
        return static_cast<T*>(block);
      }
    }
    return static_cast<T*>(::operator new(n * sizeof(T)));
  }

  void deallocate(T* p, size_t n) {
    if (n == 1 && sizeof(T) == state->block_size &&
        state->blocks.size() < EventPool::State::kMaxBlocks) {
      // Double-free detection: a block returning to the freelist while
      // already on it means two shared_ptr control blocks ended up on one
      // allocation. O(freelist) scan, debug builds only.
      TMS_DCHECK(std::find(state->blocks.begin(), state->blocks.end(),
                           static_cast<void*>(p)) == state->blocks.end())
          << "event pool block freed twice";
      state->blocks.push_back(p);
      return;
    }
    ::operator delete(p);
  }

  template <typename U>
  bool operator==(const PoolAllocator<U>& other) const {
    return state == other.state;
  }

  std::shared_ptr<EventPool::State> state;
};

}  // namespace

EventPool::EventPool() : state_(std::make_shared<State>()) {}

EventPtr EventPool::Create(EventTypePtr type, std::vector<Value> values,
                           MicrosT timestamp) {
  // TMS_ANALYZE_EXEMPT(allocate_shared draws from the pool's freelist via
  // PoolAllocator; the global allocator is hit only while the freelist warms
  // up or overflows its bound)
  std::shared_ptr<Event> event = std::allocate_shared<Event>(
      PoolAllocator<Event>(state_), std::move(type), std::move(values),
      timestamp);
  event->set_buffer_sink(state_.get());
  return event;
}

std::vector<Value> EventPool::TakeBuffer() {
  if (state_->buffers.empty()) return {};
  std::vector<Value> buffer = std::move(state_->buffers.back());
  state_->buffers.pop_back();
  return buffer;
}

size_t EventPool::free_blocks() const { return state_->blocks.size(); }
size_t EventPool::free_buffers() const { return state_->buffers.size(); }

EventBuilder& EventBuilder::Set(const std::string& field, Value value) {
  int idx = type_->FieldIndex(field);
  INSIGHT_CHECK(idx >= 0) << "unknown field '" << field << "' on type "
                          << type_->name();
  values_[static_cast<size_t>(idx)] = std::move(value);
  return *this;
}

}  // namespace cep
}  // namespace insight
