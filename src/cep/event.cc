#include "cep/event.h"

#include "common/logging.h"
#include "common/strings.h"

namespace insight {
namespace cep {

const char* ValueTypeToString(ValueType type) {
  switch (type) {
    case ValueType::kInt:
      return "int";
    case ValueType::kDouble:
      return "double";
    case ValueType::kBool:
      return "bool";
    case ValueType::kString:
      return "string";
  }
  return "?";
}

ValueType Value::type() const {
  if (std::holds_alternative<int64_t>(data_)) return ValueType::kInt;
  if (std::holds_alternative<double>(data_)) return ValueType::kDouble;
  if (std::holds_alternative<bool>(data_)) return ValueType::kBool;
  return ValueType::kString;
}

double Value::AsDouble() const {
  if (const auto* d = std::get_if<double>(&data_)) return *d;
  if (const auto* i = std::get_if<int64_t>(&data_)) return static_cast<double>(*i);
  if (const auto* b = std::get_if<bool>(&data_)) return *b ? 1.0 : 0.0;
  return 0.0;
}

int64_t Value::AsInt() const {
  if (const auto* i = std::get_if<int64_t>(&data_)) return *i;
  if (const auto* d = std::get_if<double>(&data_)) return static_cast<int64_t>(*d);
  if (const auto* b = std::get_if<bool>(&data_)) return *b ? 1 : 0;
  return 0;
}

bool Value::AsBool() const {
  if (const auto* b = std::get_if<bool>(&data_)) return *b;
  if (const auto* i = std::get_if<int64_t>(&data_)) return *i != 0;
  if (const auto* d = std::get_if<double>(&data_)) return *d != 0.0;
  return !std::get<std::string>(data_).empty();
}

const std::string& Value::AsString() const {
  static const std::string kEmpty;
  if (const auto* s = std::get_if<std::string>(&data_)) return *s;
  return kEmpty;
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kInt:
      return std::to_string(std::get<int64_t>(data_));
    case ValueType::kDouble:
      return StrFormat("%g", std::get<double>(data_));
    case ValueType::kBool:
      return std::get<bool>(data_) ? "true" : "false";
    case ValueType::kString:
      return std::get<std::string>(data_);
  }
  return "?";
}

bool Value::Equals(const Value& other) const {
  if (is_numeric() && other.is_numeric()) return AsDouble() == other.AsDouble();
  if (type() != other.type()) return false;
  return data_ == other.data_;
}

bool Value::LessThan(const Value& other) const {
  if (is_numeric() && other.is_numeric()) return AsDouble() < other.AsDouble();
  if (type() == ValueType::kString && other.type() == ValueType::kString) {
    return AsString() < other.AsString();
  }
  if (type() == ValueType::kBool && other.type() == ValueType::kBool) {
    return !AsBool() && other.AsBool();
  }
  return false;
}

EventType::EventType(std::string name, std::vector<Field> fields)
    : name_(std::move(name)), fields_(std::move(fields)) {
  for (size_t i = 0; i < fields_.size(); ++i) {
    index_[fields_[i].name] = static_cast<int>(i);
  }
}

int EventType::FieldIndex(const std::string& field_name) const {
  auto it = index_.find(field_name);
  return it == index_.end() ? -1 : it->second;
}

Event::Event(EventTypePtr type, std::vector<Value> values, MicrosT timestamp)
    : type_(std::move(type)), values_(std::move(values)), timestamp_(timestamp) {
  INSIGHT_CHECK(values_.size() == type_->num_fields())
      << "event for type " << type_->name() << " has " << values_.size()
      << " values, schema has " << type_->num_fields();
}

Result<Value> Event::Get(const std::string& field) const {
  int idx = type_->FieldIndex(field);
  if (idx < 0) {
    return Status::NotFound("event type " + type_->name() + " has no field '" +
                            field + "'");
  }
  return values_[static_cast<size_t>(idx)];
}

std::string Event::ToString() const {
  std::string out = type_->name() + "{";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) out += ", ";
    out += type_->fields()[i].name + "=" + values_[i].ToString();
  }
  out += "}";
  return out;
}

EventBuilder& EventBuilder::Set(const std::string& field, Value value) {
  int idx = type_->FieldIndex(field);
  INSIGHT_CHECK(idx >= 0) << "unknown field '" << field << "' on type "
                          << type_->name();
  values_[static_cast<size_t>(idx)] = std::move(value);
  return *this;
}

}  // namespace cep
}  // namespace insight
