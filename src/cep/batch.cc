#include "cep/batch.h"

#include "cep/expr.h"
#include "common/check.h"

namespace insight {
namespace cep {

EventBatch::EventBatch(EventTypePtr type) : type_(std::move(type)) {
  cols_.resize(type_->num_fields());
  for (size_t f = 0; f < cols_.size(); ++f) {
    cols_[f].type = type_->fields()[f].type;
  }
}

int32_t EventBatch::InternString(const std::string& v) {
  auto it = dict_index_.find(v);
  if (it != dict_index_.end()) return it->second;
  int32_t code = static_cast<int32_t>(dict_.size());
  dict_.push_back(v);
  dict_index_.emplace(v, code);
  return code;
}

bool EventBatch::AppendRow(const std::vector<Value>& values, MicrosT timestamp) {
  if (values.size() != cols_.size()) return false;
  // Validate every field first so a mismatch leaves the batch untouched.
  for (size_t f = 0; f < cols_.size(); ++f) {
    if (values[f].type() != cols_[f].type) return false;
  }
  timestamps_.push_back(timestamp);
  for (size_t f = 0; f < cols_.size(); ++f) {
    Column& c = cols_[f];
    const Value& v = values[f];
    switch (c.type) {
      case ValueType::kInt:
        c.i.push_back(v.AsInt());
        break;
      case ValueType::kDouble:
        c.d.push_back(v.AsDouble());
        break;
      case ValueType::kBool:
        c.b.push_back(v.AsBool() ? 1 : 0);
        break;
      case ValueType::kString:
        c.s.push_back(InternString(v.AsString()));
        break;
    }
  }
  return true;
}

void EventBatch::EndRow() {
#if TMS_DCHECK_ENABLED
  for (size_t f = 0; f < cols_.size(); ++f) {
    const Column& c = cols_[f];
    size_t len = 0;
    switch (c.type) {
      case ValueType::kInt:
        len = c.i.size();
        break;
      case ValueType::kDouble:
        len = c.d.size();
        break;
      case ValueType::kBool:
        len = c.b.size();
        break;
      case ValueType::kString:
        len = c.s.size();
        break;
    }
    TMS_DCHECK(len == timestamps_.size())
        << "field " << type_->fields()[f].name
        << " not set exactly once this row";
  }
#endif
}

void EventBatch::Clear() {
  timestamps_.clear();
  for (Column& c : cols_) {
    c.d.clear();
    c.i.clear();
    c.b.clear();
    c.s.clear();
  }
  lane_events_.clear();
}

const EventPtr& EventBatch::LaneEvent(size_t lane, EventPool* pool) const {
  if (lane_events_.size() != timestamps_.size()) {
    lane_events_.resize(timestamps_.size());
  }
  EventPtr& slot = lane_events_[lane];
  if (slot == nullptr) {
    std::vector<Value> buffer = pool->TakeBuffer();
    buffer.reserve(cols_.size());
    for (size_t f = 0; f < cols_.size(); ++f) {
      const Column& c = cols_[f];
      switch (c.type) {
        case ValueType::kInt:
          buffer.emplace_back(c.i[lane]);
          break;
        case ValueType::kDouble:
          buffer.emplace_back(c.d[lane]);
          break;
        case ValueType::kBool:
          buffer.emplace_back(c.b[lane] != 0);
          break;
        case ValueType::kString:
          buffer.emplace_back(dict_[static_cast<size_t>(c.s[lane])]);
          break;
      }
    }
    slot = pool->Create(type_, std::move(buffer), timestamps_[lane]);
  }
  return slot;
}

void EventBatch::MaterializeAll(EventPool* pool) const {
  const size_t n = timestamps_.size();
  if (lane_events_.size() != n) lane_events_.resize(n);
  mat_lanes_.clear();
  for (size_t lane = 0; lane < n; ++lane) {
    if (lane_events_[lane] == nullptr) {
      mat_lanes_.push_back(static_cast<uint32_t>(lane));
    }
  }
  const size_t m = mat_lanes_.size();
  if (m == 0) return;
  if (mat_bufs_.size() < m) mat_bufs_.resize(m);
  const size_t fields = cols_.size();
  for (size_t k = 0; k < m; ++k) {
    mat_bufs_[k] = pool->TakeBuffer();
    mat_bufs_[k].reserve(fields);
  }
  // Column-major fill: the per-field type switch runs once per field, and
  // because lanes are the inner loop each buffer still receives its fields
  // in schema order, so plain emplace_back works (no default-construct +
  // reassign round-trip per value).
  for (size_t f = 0; f < fields; ++f) {
    const Column& c = cols_[f];
    switch (c.type) {
      case ValueType::kInt:
        for (size_t k = 0; k < m; ++k) {
          mat_bufs_[k].emplace_back(c.i[mat_lanes_[k]]);
        }
        break;
      case ValueType::kDouble:
        for (size_t k = 0; k < m; ++k) {
          mat_bufs_[k].emplace_back(c.d[mat_lanes_[k]]);
        }
        break;
      case ValueType::kBool:
        for (size_t k = 0; k < m; ++k) {
          mat_bufs_[k].emplace_back(c.b[mat_lanes_[k]] != 0);
        }
        break;
      case ValueType::kString:
        for (size_t k = 0; k < m; ++k) {
          mat_bufs_[k].emplace_back(dict_[static_cast<size_t>(c.s[mat_lanes_[k]])]);
        }
        break;
    }
  }
  for (size_t k = 0; k < m; ++k) {
    const size_t lane = mat_lanes_[k];
    lane_events_[lane] =
        pool->Create(type_, std::move(mat_bufs_[k]), timestamps_[lane]);
  }
}

// --- ColumnProgram -----------------------------------------------------------

ColumnProgram::Reg ColumnProgram::AsBoolReg(Reg r) {
  if (!r.ok || r.is_bool) return r;
  Ins ins;
  ins.op = Op::kBoolFromD;
  ins.dst = NewB();
  ins.a = r.id;
  code_.push_back(ins);
  return {true, true, ins.dst};
}

ColumnProgram::Reg ColumnProgram::AsNumReg(Reg r) {
  if (!r.ok || !r.is_bool) return r;
  Ins ins;
  ins.op = Op::kNumFromB;
  ins.dst = NewD();
  ins.a = r.id;
  code_.push_back(ins);
  return {true, false, ins.dst};
}

ColumnProgram::Reg ColumnProgram::CompileExpr(const Expr& expr,
                                              const EventType& type) {
  const Reg fail{};
  if (const auto* lit = dynamic_cast<const LiteralExpr*>(&expr)) {
    const Value& v = lit->value();
    Ins ins;
    switch (v.type()) {
      case ValueType::kInt:
      case ValueType::kDouble:
        ins.op = Op::kConstD;
        ins.dst = NewD();
        ins.imm = v.AsDouble();
        code_.push_back(ins);
        return {true, false, ins.dst};
      case ValueType::kBool:
        ins.op = Op::kConstB;
        ins.dst = NewB();
        ins.imm = v.AsBool() ? 1.0 : 0.0;
        code_.push_back(ins);
        return {true, true, ins.dst};
      case ValueType::kString:
        return fail;
    }
    return fail;
  }
  if (const auto* ref = dynamic_cast<const FieldRefExpr*>(&expr)) {
    int f = ref->field_index();
    if (f < 0 || static_cast<size_t>(f) >= type.num_fields()) return fail;
    Ins ins;
    ins.col = f;
    switch (type.fields()[static_cast<size_t>(f)].type) {
      case ValueType::kInt:
        ins.op = Op::kLoadI;
        ins.dst = NewD();
        code_.push_back(ins);
        return {true, false, ins.dst};
      case ValueType::kDouble:
        ins.op = Op::kLoadD;
        ins.dst = NewD();
        code_.push_back(ins);
        return {true, false, ins.dst};
      case ValueType::kBool:
        ins.op = Op::kLoadB;
        ins.dst = NewB();
        code_.push_back(ins);
        return {true, true, ins.dst};
      case ValueType::kString:
        return fail;  // string compute falls back to the row path
    }
    return fail;
  }
  if (const auto* un = dynamic_cast<const UnaryExpr*>(&expr)) {
    Reg a = CompileExpr(*un->operand(), type);
    if (!a.ok) return fail;
    Ins ins;
    if (un->op() == UnaryOp::kNot) {
      a = AsBoolReg(a);
      ins.op = Op::kNot;
      ins.dst = NewB();
      ins.a = a.id;
      code_.push_back(ins);
      return {true, true, ins.dst};
    }
    a = AsNumReg(a);
    ins.op = Op::kNeg;
    ins.dst = NewD();
    ins.a = a.id;
    code_.push_back(ins);
    return {true, false, ins.dst};
  }
  if (const auto* bin = dynamic_cast<const BinaryExpr*>(&expr)) {
    Reg l = CompileExpr(*bin->left(), type);
    if (!l.ok) return fail;
    Reg r = CompileExpr(*bin->right(), type);
    if (!r.ok) return fail;
    Ins ins;
    switch (bin->op()) {
      case BinaryOp::kAnd:
      case BinaryOp::kOr:
        l = AsBoolReg(l);
        r = AsBoolReg(r);
        ins.op = bin->op() == BinaryOp::kAnd ? Op::kAnd : Op::kOr;
        ins.dst = NewB();
        ins.a = l.id;
        ins.b = r.id;
        code_.push_back(ins);
        return {true, true, ins.dst};
      case BinaryOp::kEq:
      case BinaryOp::kNe:
      case BinaryOp::kLt:
      case BinaryOp::kLe:
      case BinaryOp::kGt:
      case BinaryOp::kGe:
        // A statically-bool operand makes the row path take the variant
        // comparison branch (bool never equals a number); refuse rather
        // than approximate.
        if (l.is_bool || r.is_bool) return fail;
        switch (bin->op()) {
          case BinaryOp::kEq:
            ins.op = Op::kCmpEq;
            break;
          case BinaryOp::kNe:
            ins.op = Op::kCmpNe;
            break;
          case BinaryOp::kLt:
            ins.op = Op::kCmpLt;
            break;
          case BinaryOp::kLe:
            ins.op = Op::kCmpLe;
            break;
          case BinaryOp::kGt:
            ins.op = Op::kCmpGt;
            break;
          default:
            ins.op = Op::kCmpGe;
            break;
        }
        ins.dst = NewB();
        ins.a = l.id;
        ins.b = r.id;
        code_.push_back(ins);
        return {true, true, ins.dst};
      case BinaryOp::kAdd:
      case BinaryOp::kSub:
      case BinaryOp::kMul:
      case BinaryOp::kDiv:
        l = AsNumReg(l);
        r = AsNumReg(r);
        switch (bin->op()) {
          case BinaryOp::kAdd:
            ins.op = Op::kAdd;
            break;
          case BinaryOp::kSub:
            ins.op = Op::kSub;
            break;
          case BinaryOp::kMul:
            ins.op = Op::kMul;
            break;
          default:
            ins.op = Op::kDiv;
            break;
        }
        ins.dst = NewD();
        ins.a = l.id;
        ins.b = r.id;
        code_.push_back(ins);
        return {true, false, ins.dst};
      case BinaryOp::kMod:
        // % needs exact int64 operands; keeping it on the row path avoids a
        // double round-trip that could diverge past 2^53.
        return fail;
    }
    return fail;
  }
  return fail;  // aggregates and unknown node kinds
}

bool ColumnProgram::CompileBool(const Expr& expr, const EventType& type) {
  code_.clear();
  num_dregs_ = 0;
  num_bregs_ = 0;
  out_breg_ = -1;
  Reg r = CompileExpr(expr, type);
  if (r.ok) r = AsBoolReg(r);
  if (!r.ok) {
    code_.clear();
    return false;
  }
  out_breg_ = r.id;
  return true;
}

void ColumnProgram::BindColumns(const EventBatch& batch) const {
  // TMS_ANALYZE_EXEMPT(scratch sized once per program: capacity is retained
  // across batches, so steady-state binds never allocate)
  col_ptrs_.resize(code_.size());
  for (size_t k = 0; k < code_.size(); ++k) {
    const Ins& ins = code_[k];
    switch (ins.op) {
      case Op::kLoadD:
        col_ptrs_[k] = batch.DoubleCol(ins.col)->data();
        break;
      case Op::kLoadI:
        col_ptrs_[k] = batch.IntCol(ins.col)->data();
        break;
      case Op::kLoadB:
        col_ptrs_[k] = batch.BoolCol(ins.col)->data();
        break;
      default:
        col_ptrs_[k] = nullptr;
        break;
    }
  }
}

void ColumnProgram::Run(size_t n) const {
  for (size_t k = 0; k < code_.size(); ++k) {
    const Ins& ins = code_[k];
    auto dst_d = [&]() { return dregs_[static_cast<size_t>(ins.dst)].data(); };
    switch (ins.op) {
      case Op::kLoadD: {
        const double* src = static_cast<const double*>(col_ptrs_[k]);
        double* dd = dst_d();
        for (size_t i = 0; i < n; ++i) dd[i] = src[i];
        break;
      }
      case Op::kLoadI: {
        const int64_t* src = static_cast<const int64_t*>(col_ptrs_[k]);
        double* dd = dst_d();
        for (size_t i = 0; i < n; ++i) dd[i] = static_cast<double>(src[i]);
        break;
      }
      case Op::kLoadB: {
        const uint8_t* src = static_cast<const uint8_t*>(col_ptrs_[k]);
        uint8_t* bd = bregs_[static_cast<size_t>(ins.dst)].data();
        for (size_t i = 0; i < n; ++i) bd[i] = src[i];
        break;
      }
      case Op::kConstD: {
        double* dd = dst_d();
        for (size_t i = 0; i < n; ++i) dd[i] = ins.imm;
        break;
      }
      case Op::kConstB: {
        uint8_t* bd = bregs_[static_cast<size_t>(ins.dst)].data();
        uint8_t v = ins.imm != 0.0 ? 1 : 0;
        for (size_t i = 0; i < n; ++i) bd[i] = v;
        break;
      }
      case Op::kBoolFromD: {
        const double* a = dregs_[static_cast<size_t>(ins.a)].data();
        uint8_t* bd = bregs_[static_cast<size_t>(ins.dst)].data();
        for (size_t i = 0; i < n; ++i) bd[i] = a[i] != 0.0 ? 1 : 0;
        break;
      }
      case Op::kNumFromB: {
        const uint8_t* a = bregs_[static_cast<size_t>(ins.a)].data();
        double* dd = dst_d();
        for (size_t i = 0; i < n; ++i) dd[i] = a[i] != 0 ? 1.0 : 0.0;
        break;
      }
      case Op::kAdd: {
        const double* a = dregs_[static_cast<size_t>(ins.a)].data();
        const double* b = dregs_[static_cast<size_t>(ins.b)].data();
        double* dd = dst_d();
        for (size_t i = 0; i < n; ++i) dd[i] = a[i] + b[i];
        break;
      }
      case Op::kSub: {
        const double* a = dregs_[static_cast<size_t>(ins.a)].data();
        const double* b = dregs_[static_cast<size_t>(ins.b)].data();
        double* dd = dst_d();
        for (size_t i = 0; i < n; ++i) dd[i] = a[i] - b[i];
        break;
      }
      case Op::kMul: {
        const double* a = dregs_[static_cast<size_t>(ins.a)].data();
        const double* b = dregs_[static_cast<size_t>(ins.b)].data();
        double* dd = dst_d();
        for (size_t i = 0; i < n; ++i) dd[i] = a[i] * b[i];
        break;
      }
      case Op::kDiv: {
        const double* a = dregs_[static_cast<size_t>(ins.a)].data();
        const double* b = dregs_[static_cast<size_t>(ins.b)].data();
        double* dd = dst_d();
        for (size_t i = 0; i < n; ++i) {
          dd[i] = b[i] == 0.0 ? 0.0 : a[i] / b[i];
        }
        break;
      }
      case Op::kNeg: {
        const double* a = dregs_[static_cast<size_t>(ins.a)].data();
        double* dd = dst_d();
        for (size_t i = 0; i < n; ++i) dd[i] = -a[i];
        break;
      }
      case Op::kCmpEq:
      case Op::kCmpNe:
      case Op::kCmpLt:
      case Op::kCmpLe:
      case Op::kCmpGt:
      case Op::kCmpGe: {
        const double* a = dregs_[static_cast<size_t>(ins.a)].data();
        const double* b = dregs_[static_cast<size_t>(ins.b)].data();
        uint8_t* bd = bregs_[static_cast<size_t>(ins.dst)].data();
        switch (ins.op) {
          case Op::kCmpEq:
            for (size_t i = 0; i < n; ++i) bd[i] = a[i] == b[i] ? 1 : 0;
            break;
          case Op::kCmpNe:
            for (size_t i = 0; i < n; ++i) bd[i] = a[i] != b[i] ? 1 : 0;
            break;
          case Op::kCmpLt:
            for (size_t i = 0; i < n; ++i) bd[i] = a[i] < b[i] ? 1 : 0;
            break;
          case Op::kCmpLe:
            for (size_t i = 0; i < n; ++i) bd[i] = a[i] <= b[i] ? 1 : 0;
            break;
          case Op::kCmpGt:
            for (size_t i = 0; i < n; ++i) bd[i] = a[i] > b[i] ? 1 : 0;
            break;
          default:
            for (size_t i = 0; i < n; ++i) bd[i] = a[i] >= b[i] ? 1 : 0;
            break;
        }
        break;
      }
      case Op::kAnd: {
        const uint8_t* a = bregs_[static_cast<size_t>(ins.a)].data();
        const uint8_t* b = bregs_[static_cast<size_t>(ins.b)].data();
        uint8_t* bd = bregs_[static_cast<size_t>(ins.dst)].data();
        for (size_t i = 0; i < n; ++i) bd[i] = a[i] & b[i];
        break;
      }
      case Op::kOr: {
        const uint8_t* a = bregs_[static_cast<size_t>(ins.a)].data();
        const uint8_t* b = bregs_[static_cast<size_t>(ins.b)].data();
        uint8_t* bd = bregs_[static_cast<size_t>(ins.dst)].data();
        for (size_t i = 0; i < n; ++i) bd[i] = a[i] | b[i];
        break;
      }
      case Op::kNot: {
        const uint8_t* a = bregs_[static_cast<size_t>(ins.a)].data();
        uint8_t* bd = bregs_[static_cast<size_t>(ins.dst)].data();
        for (size_t i = 0; i < n; ++i) bd[i] = a[i] == 0 ? 1 : 0;
        break;
      }
    }
  }
}

void ColumnProgram::RunScalar(size_t n) const {
  // Lane-at-a-time interpreter: same ops, same results, no vector loops.
  for (size_t i = 0; i < n; ++i) {
    for (size_t k = 0; k < code_.size(); ++k) {
      const Ins& ins = code_[k];
      auto d = [&](int16_t r) -> double& {
        return dregs_[static_cast<size_t>(r)][i];
      };
      auto b = [&](int16_t r) -> uint8_t& {
        return bregs_[static_cast<size_t>(r)][i];
      };
      switch (ins.op) {
        case Op::kLoadD:
          d(ins.dst) = static_cast<const double*>(col_ptrs_[k])[i];
          break;
        case Op::kLoadI:
          d(ins.dst) = static_cast<double>(
              static_cast<const int64_t*>(col_ptrs_[k])[i]);
          break;
        case Op::kLoadB:
          b(ins.dst) = static_cast<const uint8_t*>(col_ptrs_[k])[i];
          break;
        case Op::kConstD:
          d(ins.dst) = ins.imm;
          break;
        case Op::kConstB:
          b(ins.dst) = ins.imm != 0.0 ? 1 : 0;
          break;
        case Op::kBoolFromD:
          b(ins.dst) = d(ins.a) != 0.0 ? 1 : 0;
          break;
        case Op::kNumFromB:
          d(ins.dst) = b(ins.a) != 0 ? 1.0 : 0.0;
          break;
        case Op::kAdd:
          d(ins.dst) = d(ins.a) + d(ins.b);
          break;
        case Op::kSub:
          d(ins.dst) = d(ins.a) - d(ins.b);
          break;
        case Op::kMul:
          d(ins.dst) = d(ins.a) * d(ins.b);
          break;
        case Op::kDiv:
          d(ins.dst) = d(ins.b) == 0.0 ? 0.0 : d(ins.a) / d(ins.b);
          break;
        case Op::kNeg:
          d(ins.dst) = -d(ins.a);
          break;
        case Op::kCmpEq:
          b(ins.dst) = d(ins.a) == d(ins.b) ? 1 : 0;
          break;
        case Op::kCmpNe:
          b(ins.dst) = d(ins.a) != d(ins.b) ? 1 : 0;
          break;
        case Op::kCmpLt:
          b(ins.dst) = d(ins.a) < d(ins.b) ? 1 : 0;
          break;
        case Op::kCmpLe:
          b(ins.dst) = d(ins.a) <= d(ins.b) ? 1 : 0;
          break;
        case Op::kCmpGt:
          b(ins.dst) = d(ins.a) > d(ins.b) ? 1 : 0;
          break;
        case Op::kCmpGe:
          b(ins.dst) = d(ins.a) >= d(ins.b) ? 1 : 0;
          break;
        case Op::kAnd:
          b(ins.dst) = b(ins.a) & b(ins.b);
          break;
        case Op::kOr:
          b(ins.dst) = b(ins.a) | b(ins.b);
          break;
        case Op::kNot:
          b(ins.dst) = b(ins.a) == 0 ? 1 : 0;
          break;
      }
    }
  }
}

void ColumnProgram::EvalAndInto(const EventBatch& batch,
                                std::vector<uint8_t>* mask) const {
  TMS_DCHECK(out_breg_ >= 0) << "evaluating an uncompiled ColumnProgram";
  const size_t n = batch.size();
  if (n == 0) return;
  // TMS_ANALYZE_EXEMPT(register scratch grows to the high-water batch size
  // once and is reused across batches — steady state stays allocation-free)
  dregs_.resize(static_cast<size_t>(num_dregs_));
  for (auto& r : dregs_) {
    if (r.size() < n) r.resize(n);  // TMS_ANALYZE_EXEMPT(high-water reuse)
  }
  // TMS_ANALYZE_EXEMPT(register scratch, as above)
  bregs_.resize(static_cast<size_t>(num_bregs_));
  for (auto& r : bregs_) {
    if (r.size() < n) r.resize(n);  // TMS_ANALYZE_EXEMPT(high-water reuse)
  }
  BindColumns(batch);
#if defined(TMS_NO_SIMD)
  RunScalar(n);
#else
  Run(n);
#endif
  const uint8_t* out = bregs_[static_cast<size_t>(out_breg_)].data();
  uint8_t* m = mask->data();
  for (size_t i = 0; i < n; ++i) m[i] &= out[i];
}

}  // namespace cep
}  // namespace insight
