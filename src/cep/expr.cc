#include "cep/expr.h"

#include <cmath>

#include "common/logging.h"

namespace insight {
namespace cep {

int SourceSchemas::AliasIndex(const std::string& alias) const {
  for (size_t i = 0; i < aliases.size(); ++i) {
    if (aliases[i] == alias) return static_cast<int>(i);
  }
  return -1;
}

const char* BinaryOpToString(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAnd:
      return "and";
    case BinaryOp::kOr:
      return "or";
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNe:
      return "!=";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
    case BinaryOp::kMod:
      return "%";
  }
  return "?";
}

const char* AggFuncToString(AggFunc func) {
  switch (func) {
    case AggFunc::kAvg:
      return "avg";
    case AggFunc::kSum:
      return "sum";
    case AggFunc::kCount:
      return "count";
    case AggFunc::kMin:
      return "min";
    case AggFunc::kMax:
      return "max";
    case AggFunc::kStddev:
      return "stddev";
  }
  return "?";
}

Status FieldRefExpr::Resolve(const SourceSchemas& schemas) {
  if (!alias_.empty()) {
    source_index_ = schemas.AliasIndex(alias_);
    if (source_index_ < 0) {
      return Status::NotFound("unknown stream alias '" + alias_ + "'");
    }
    field_index_ =
        schemas.types[static_cast<size_t>(source_index_)]->FieldIndex(field_);
    if (field_index_ < 0) {
      return Status::NotFound("stream '" + alias_ + "' has no field '" + field_ +
                              "'");
    }
    declared_type_ = schemas.types[static_cast<size_t>(source_index_)]
                         ->fields()[static_cast<size_t>(field_index_)]
                         .type;
    return Status::OK();
  }
  // Bare field: must be unique across sources.
  int found_source = -1, found_field = -1;
  for (size_t i = 0; i < schemas.types.size(); ++i) {
    int idx = schemas.types[i]->FieldIndex(field_);
    if (idx >= 0) {
      if (found_source >= 0) {
        return Status::InvalidArgument("ambiguous field '" + field_ +
                                       "'; qualify with an alias");
      }
      found_source = static_cast<int>(i);
      found_field = idx;
    }
  }
  if (found_source < 0) {
    return Status::NotFound("no stream has field '" + field_ + "'");
  }
  source_index_ = found_source;
  field_index_ = found_field;
  declared_type_ = schemas.types[static_cast<size_t>(found_source)]
                       ->fields()[static_cast<size_t>(found_field)]
                       .type;
  return Status::OK();
}

Value FieldRefExpr::Eval(const EvalContext& ctx) const {
  const Event* event = (*ctx.row)[static_cast<size_t>(source_index_)];
  return event->Get(field_index_);
}

Result<ValueType> FieldRefExpr::DeduceType() const {
  if (declared_type_.has_value()) return *declared_type_;
  return Status::FailedPrecondition("field '" + field_ + "' not resolved");
}

Value UnaryExpr::Eval(const EvalContext& ctx) const {
  Value v = operand_->Eval(ctx);
  switch (op_) {
    case UnaryOp::kNot:
      return !v.AsBool();
    case UnaryOp::kNeg:
      return -v.AsDouble();
  }
  return Value();
}

Result<ValueType> UnaryExpr::DeduceType() const {
  INSIGHT_ASSIGN_OR_RETURN(ValueType operand_type, operand_->DeduceType());
  switch (op_) {
    case UnaryOp::kNot:
      if (operand_type == ValueType::kString) {
        return Status::InvalidArgument("'not' applied to a string: " +
                                       operand_->ToString());
      }
      return ValueType::kBool;
    case UnaryOp::kNeg:
      if (operand_type == ValueType::kString) {
        return Status::InvalidArgument("negation of a string: " +
                                       operand_->ToString());
      }
      return ValueType::kDouble;
  }
  return ValueType::kDouble;
}

std::string UnaryExpr::ToString() const {
  return std::string(op_ == UnaryOp::kNot ? "not " : "-") + "(" +
         operand_->ToString() + ")";
}

Value BinaryExpr::Eval(const EvalContext& ctx) const {
  // Short-circuit logic ops.
  if (op_ == BinaryOp::kAnd) {
    return left_->Eval(ctx).AsBool() && right_->Eval(ctx).AsBool();
  }
  if (op_ == BinaryOp::kOr) {
    return left_->Eval(ctx).AsBool() || right_->Eval(ctx).AsBool();
  }
  Value l = left_->Eval(ctx);
  Value r = right_->Eval(ctx);
  switch (op_) {
    case BinaryOp::kEq:
      return l.Equals(r);
    case BinaryOp::kNe:
      return !l.Equals(r);
    case BinaryOp::kLt:
      return l.LessThan(r);
    case BinaryOp::kLe:
      return l.LessThan(r) || l.Equals(r);
    case BinaryOp::kGt:
      return r.LessThan(l);
    case BinaryOp::kGe:
      return r.LessThan(l) || l.Equals(r);
    case BinaryOp::kAdd:
      return l.AsDouble() + r.AsDouble();
    case BinaryOp::kSub:
      return l.AsDouble() - r.AsDouble();
    case BinaryOp::kMul:
      return l.AsDouble() * r.AsDouble();
    case BinaryOp::kDiv: {
      double denom = r.AsDouble();
      return denom == 0.0 ? Value(0.0) : Value(l.AsDouble() / denom);
    }
    case BinaryOp::kMod: {
      int64_t denom = r.AsInt();
      return denom == 0 ? Value(int64_t{0}) : Value(l.AsInt() % denom);
    }
    default:
      return Value();
  }
}

Result<ValueType> BinaryExpr::DeduceType() const {
  INSIGHT_ASSIGN_OR_RETURN(ValueType left, left_->DeduceType());
  INSIGHT_ASSIGN_OR_RETURN(ValueType right, right_->DeduceType());
  switch (op_) {
    case BinaryOp::kAnd:
    case BinaryOp::kOr:
      return ValueType::kBool;
    case BinaryOp::kEq:
    case BinaryOp::kNe:
      return ValueType::kBool;
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      // Ordering a string against a number is a bug the runtime would
      // otherwise hide (LessThan returns false for mixed types).
      if ((left == ValueType::kString) != (right == ValueType::kString)) {
        return Status::InvalidArgument("ordering comparison between string "
                                       "and non-string in " +
                                       ToString());
      }
      return ValueType::kBool;
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
    case BinaryOp::kMul:
    case BinaryOp::kDiv:
      if (left == ValueType::kString || right == ValueType::kString) {
        return Status::InvalidArgument("arithmetic on a string in " +
                                       ToString());
      }
      return ValueType::kDouble;
    case BinaryOp::kMod:
      if (left == ValueType::kString || right == ValueType::kString) {
        return Status::InvalidArgument("arithmetic on a string in " +
                                       ToString());
      }
      return ValueType::kInt;
  }
  return ValueType::kDouble;
}

std::string BinaryExpr::ToString() const {
  return "(" + left_->ToString() + " " + BinaryOpToString(op_) + " " +
         right_->ToString() + ")";
}

Value AggregateExpr::Eval(const EvalContext& ctx) const {
  INSIGHT_CHECK(ctx.agg_values != nullptr && agg_id_ >= 0)
      << "aggregate evaluated without aggregate context";
  return (*ctx.agg_values)[static_cast<size_t>(agg_id_)];
}

Result<ValueType> AggregateExpr::DeduceType() const {
  if (argument_ != nullptr) {
    INSIGHT_ASSIGN_OR_RETURN(ValueType argument_type, argument_->DeduceType());
    if (argument_type == ValueType::kString && func_ != AggFunc::kCount) {
      return Status::InvalidArgument(
          std::string(AggFuncToString(func_)) +
          "() over a string field: " + argument_->ToString());
    }
  }
  return func_ == AggFunc::kCount ? ValueType::kInt : ValueType::kDouble;
}

std::string AggregateExpr::ToString() const {
  return std::string(AggFuncToString(func_)) + "(" +
         (argument_ ? argument_->ToString() : "*") + ")";
}

ExprPtr Lit(Value v) { return std::make_unique<LiteralExpr>(std::move(v)); }
ExprPtr Field(std::string alias, std::string field) {
  return std::make_unique<FieldRefExpr>(std::move(alias), std::move(field));
}
ExprPtr Field(std::string field) {
  return std::make_unique<FieldRefExpr>("", std::move(field));
}
ExprPtr Bin(BinaryOp op, ExprPtr l, ExprPtr r) {
  return std::make_unique<BinaryExpr>(op, std::move(l), std::move(r));
}
ExprPtr And(ExprPtr l, ExprPtr r) {
  return Bin(BinaryOp::kAnd, std::move(l), std::move(r));
}
ExprPtr Eq(ExprPtr l, ExprPtr r) {
  return Bin(BinaryOp::kEq, std::move(l), std::move(r));
}
ExprPtr Gt(ExprPtr l, ExprPtr r) {
  return Bin(BinaryOp::kGt, std::move(l), std::move(r));
}
ExprPtr Agg(AggFunc func, ExprPtr argument) {
  return std::make_unique<AggregateExpr>(func, std::move(argument));
}

}  // namespace cep
}  // namespace insight
