#ifndef INSIGHT_CEP_VIEW_H_
#define INSIGHT_CEP_VIEW_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cep/event.h"
#include "common/status.h"

namespace insight {
namespace cep {

/// The EPL view kinds used by the system. Chains combine `std:groupwin(f)`
/// with one data window, mirroring Listing 1:
///   bus.std:lastevent()
///   bus.std:groupwin(location).win:length(l)
///   thresholdLocation.win:keepall()
enum class ViewKind {
  kLastEvent,    // std:lastevent()
  kLength,       // win:length(n)
  kLengthBatch,  // win:length_batch(n)
  kTime,         // win:time(seconds)
  kTimeBatch,    // win:time_batch(seconds)
  kKeepAll,      // win:keepall()
  kGroupWin,     // std:groupwin(field)
  kUnique,       // std:unique(f1, f2, ...) — latest event per key
};

struct ViewSpec {
  ViewKind kind = ViewKind::kKeepAll;
  /// kLength / kLengthBatch: window size in events.
  size_t length = 0;
  /// kTime / kTimeBatch: window duration.
  MicrosT duration_micros = 0;
  /// kGroupWin: grouping field name.
  std::string group_field;
  /// kUnique: key field names (the latest event per distinct key is kept —
  /// this is how dynamically refreshed thresholds replace stale ones).
  std::vector<std::string> unique_fields;

  static ViewSpec LastEvent() { return {ViewKind::kLastEvent, 0, 0, ""}; }
  static ViewSpec Length(size_t n) { return {ViewKind::kLength, n, 0, ""}; }
  static ViewSpec LengthBatch(size_t n) {
    return {ViewKind::kLengthBatch, n, 0, ""};
  }
  static ViewSpec Time(MicrosT micros) { return {ViewKind::kTime, 0, micros, ""}; }
  static ViewSpec TimeBatch(MicrosT micros) {
    return {ViewKind::kTimeBatch, 0, micros, ""};
  }
  static ViewSpec KeepAll() { return {ViewKind::kKeepAll, 0, 0, ""}; }
  static ViewSpec GroupWin(std::string field) {
    ViewSpec spec;
    spec.kind = ViewKind::kGroupWin;
    spec.group_field = std::move(field);
    return spec;
  }
  static ViewSpec Unique(std::vector<std::string> fields) {
    ViewSpec spec;
    spec.kind = ViewKind::kUnique;
    spec.unique_fields = std::move(fields);
    return spec;
  }

  std::string ToString() const;
};

/// Ordering for Values usable as map keys: numerics compare by value, other
/// types by (type rank, content).
struct ValueLess {
  bool operator()(const Value& a, const Value& b) const;
};

struct ValueVectorLess {
  bool operator()(const std::vector<Value>& a, const std::vector<Value>& b) const;
};

/// Materialized window state for one FROM source. Create() validates the
/// chain (at most one groupwin, exactly one data view).
class Window {
 public:
  static Result<std::unique_ptr<Window>> Create(const std::vector<ViewSpec>& chain,
                                                EventTypePtr type);

  /// Inserts an event; any events the window expels (length overflow, batch
  /// flush, time expiry at the event's timestamp) are appended to *expired
  /// when non-null.
  void Insert(const EventPtr& event, std::vector<EventPtr>* expired = nullptr);

  /// Expires time-window contents older than `now - duration`.
  void AdvanceTime(MicrosT now, std::vector<EventPtr>* expired = nullptr);

  bool grouped() const { return group_field_index_ >= 0; }
  int group_field_index() const { return group_field_index_; }
  const std::string& group_field() const { return group_field_; }

  /// Contents of an ungrouped window.
  const std::deque<EventPtr>& Contents() const;
  /// Contents of one group (nullptr when the key was never seen). Only valid
  /// for grouped windows.
  const std::deque<EventPtr>* GroupContents(const Value& key) const;

  /// Invokes fn(event) over every event currently retained.
  void ForEach(const std::function<void(const EventPtr&)>& fn) const;

  size_t TotalSize() const;
  /// Removes all contents.
  void Clear();

  const std::vector<ViewSpec>& chain() const { return chain_; }

 private:
  Window() = default;

  struct Bucket {
    std::deque<EventPtr> events;
  };

  void InsertInto(Bucket* bucket, const EventPtr& event,
                  std::vector<EventPtr>* expired);
  void ExpireBucket(Bucket* bucket, MicrosT now, std::vector<EventPtr>* expired);

  std::vector<ViewSpec> chain_;
  ViewSpec data_view_;
  std::string group_field_;
  int group_field_index_ = -1;
  Bucket global_;
  std::map<Value, Bucket, ValueLess> groups_;
  /// kUnique storage: latest event per key.
  std::vector<int> unique_field_indexes_;
  std::map<std::vector<Value>, EventPtr, ValueVectorLess> unique_;
};

}  // namespace cep
}  // namespace insight

#endif  // INSIGHT_CEP_VIEW_H_
