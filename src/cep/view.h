#ifndef INSIGHT_CEP_VIEW_H_
#define INSIGHT_CEP_VIEW_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cep/event.h"
#include "common/status.h"

namespace insight {
namespace cep {

/// The EPL view kinds used by the system. Chains combine `std:groupwin(f)`
/// with one data window, mirroring Listing 1:
///   bus.std:lastevent()
///   bus.std:groupwin(location).win:length(l)
///   thresholdLocation.win:keepall()
enum class ViewKind {
  kLastEvent,    // std:lastevent()
  kLength,       // win:length(n)
  kLengthBatch,  // win:length_batch(n)
  kTime,         // win:time(seconds)
  kTimeBatch,    // win:time_batch(seconds)
  kKeepAll,      // win:keepall()
  kGroupWin,     // std:groupwin(field)
  kUnique,       // std:unique(f1, f2, ...) — latest event per key
};

struct ViewSpec {
  ViewKind kind = ViewKind::kKeepAll;
  /// kLength / kLengthBatch: window size in events.
  size_t length = 0;
  /// kTime / kTimeBatch: window duration.
  MicrosT duration_micros = 0;
  /// kGroupWin: grouping field name.
  std::string group_field;
  /// kUnique: key field names (the latest event per distinct key is kept —
  /// this is how dynamically refreshed thresholds replace stale ones).
  std::vector<std::string> unique_fields;

  static ViewSpec LastEvent() { return {ViewKind::kLastEvent, 0, 0, ""}; }
  static ViewSpec Length(size_t n) { return {ViewKind::kLength, n, 0, ""}; }
  static ViewSpec LengthBatch(size_t n) {
    return {ViewKind::kLengthBatch, n, 0, ""};
  }
  static ViewSpec Time(MicrosT micros) { return {ViewKind::kTime, 0, micros, ""}; }
  static ViewSpec TimeBatch(MicrosT micros) {
    return {ViewKind::kTimeBatch, 0, micros, ""};
  }
  static ViewSpec KeepAll() { return {ViewKind::kKeepAll, 0, 0, ""}; }
  static ViewSpec GroupWin(std::string field) {
    ViewSpec spec;
    spec.kind = ViewKind::kGroupWin;
    spec.group_field = std::move(field);
    return spec;
  }
  static ViewSpec Unique(std::vector<std::string> fields) {
    ViewSpec spec;
    spec.kind = ViewKind::kUnique;
    spec.unique_fields = std::move(fields);
    return spec;
  }

  std::string ToString() const;
};

/// Ordering for Values usable as map keys: numerics compare by value, other
/// types by (type rank, content).
struct ValueLess {
  bool operator()(const Value& a, const Value& b) const;
};

struct ValueVectorLess {
  bool operator()(const std::vector<Value>& a, const std::vector<Value>& b) const;
};

/// Hash/equality for Values usable as unordered_map keys, consistent with
/// Value::Equals: int 5 and double 5.0 hash identically (both hash their
/// double image, with -0.0 collapsed onto +0.0).
struct ValueHash {
  size_t operator()(const Value& v) const;
};

struct ValueEq {
  bool operator()(const Value& a, const Value& b) const { return a.Equals(b); }
};

struct ValueVectorHash {
  size_t operator()(const std::vector<Value>& v) const;
};

struct ValueVectorEq {
  bool operator()(const std::vector<Value>& a,
                  const std::vector<Value>& b) const;
};

/// Contiguous ring buffer of events, oldest first. Replaces std::deque on the
/// window hot path: a sliding window at steady state (push_back + pop_front)
/// churns deque chunk allocations, while the ring only allocates on growth.
class EventRing {
 public:
  EventRing() = default;

  bool empty() const { return count_ == 0; }
  size_t size() const { return count_; }

  /// i = 0 is the oldest retained event.
  const EventPtr& operator[](size_t i) const {
    return slots_[(head_ + i) & mask_];
  }
  const EventPtr& front() const { return slots_[head_]; }
  const EventPtr& back() const { return (*this)[count_ - 1]; }

  void push_back(EventPtr event) {
    if (count_ == slots_.size()) Grow();
    slots_[(head_ + count_) & mask_] = std::move(event);
    ++count_;
  }

  void pop_front() {
    slots_[head_] = nullptr;  // release the reference
    head_ = (head_ + 1) & mask_;
    --count_;
  }

  /// pop_front that hands the evicted event to the caller — no refcount
  /// round-trip for evict-and-inspect loops.
  EventPtr TakeFront() {
    EventPtr ev = std::move(slots_[head_]);
    head_ = (head_ + 1) & mask_;
    --count_;
    return ev;
  }

  void clear() {
    for (size_t i = 0; i < count_; ++i) slots_[(head_ + i) & mask_] = nullptr;
    head_ = 0;
    count_ = 0;
  }

  class const_iterator {
   public:
    const_iterator(const EventRing* ring, size_t pos) : ring_(ring), pos_(pos) {}
    const EventPtr& operator*() const { return (*ring_)[pos_]; }
    const_iterator& operator++() {
      ++pos_;
      return *this;
    }
    bool operator!=(const const_iterator& other) const {
      return pos_ != other.pos_;
    }

   private:
    const EventRing* ring_;
    size_t pos_;
  };
  const_iterator begin() const { return {this, 0}; }
  const_iterator end() const { return {this, count_}; }

 private:
  void Grow();

  std::vector<EventPtr> slots_;  // size is a power of two (or empty)
  size_t mask_ = 0;
  size_t head_ = 0;
  size_t count_ = 0;
};

/// Materialized window state for one FROM source. Create() validates the
/// chain (at most one groupwin, exactly one data view).
class Window {
 public:
  static Result<std::unique_ptr<Window>> Create(const std::vector<ViewSpec>& chain,
                                                EventTypePtr type);

  /// Inserts an event; any events the window expels (length overflow, batch
  /// flush, time expiry at the event's timestamp) are appended to *expired
  /// when non-null.
  void Insert(const EventPtr& event, std::vector<EventPtr>* expired = nullptr);

  /// Expires time-window contents older than `now - duration`.
  void AdvanceTime(MicrosT now, std::vector<EventPtr>* expired = nullptr);

  bool grouped() const { return group_field_index_ >= 0; }
  int group_field_index() const { return group_field_index_; }
  const std::string& group_field() const { return group_field_; }
  /// Kind of the single data view in the chain.
  ViewKind data_kind() const { return data_view_.kind; }
  /// Field indexes forming the kUnique key (empty otherwise).
  const std::vector<int>& unique_field_indexes() const {
    return unique_field_indexes_;
  }

  /// Contents of an ungrouped window.
  const EventRing& Contents() const;
  /// Contents of one group (nullptr when the key was never seen). Only valid
  /// for grouped windows.
  const EventRing* GroupContents(const Value& key) const;
  /// Grouped windows: the ring for `key`, created on demand. The pointer is
  /// stable until Clear() (std::map nodes do not move), which is what lets
  /// the columnar batch path cache group rings in a flat table instead of
  /// re-walking the map per event.
  EventRing* MutableGroupRing(const Value& key) { return &groups_[key].events; }
  /// kLength / kLengthBatch windows: declared size. 0 for other data views.
  size_t data_length() const { return data_view_.length; }

  /// Invokes fn(event) over every event currently retained.
  void ForEach(const std::function<void(const EventPtr&)>& fn) const;
  /// Grouped windows: fn(key, contents) per group in ValueLess key order
  /// (buckets that have drained to empty are skipped).
  void ForEachGroup(
      const std::function<void(const Value&, const EventRing&)>& fn) const;

  /// Template variants of the above for hot paths: no std::function, so no
  /// per-call allocation for capturing lambdas.
  template <typename Fn>
  void ForEachEvent(Fn&& fn) const {
    if (data_view_.kind == ViewKind::kUnique) {
      for (const auto& [key, event] : unique_) fn(event);
      return;
    }
    if (grouped()) {
      for (const auto& [key, bucket] : groups_) {
        for (const EventPtr& e : bucket.events) fn(e);
      }
    } else {
      for (const EventPtr& e : global_.events) fn(e);
    }
  }
  template <typename Fn>
  void ForEachGroupT(Fn&& fn) const {
    for (const auto& [key, bucket] : groups_) {
      if (!bucket.events.empty()) fn(key, bucket.events);
    }
  }

  size_t TotalSize() const;
  /// Removes all contents.
  void Clear();

  const std::vector<ViewSpec>& chain() const { return chain_; }

 private:
  Window() = default;

  struct Bucket {
    EventRing events;
  };

  void InsertInto(Bucket* bucket, const EventPtr& event,
                  std::vector<EventPtr>* expired);
  void ExpireBucket(Bucket* bucket, MicrosT now, std::vector<EventPtr>* expired);

  std::vector<ViewSpec> chain_;
  ViewSpec data_view_;
  std::string group_field_;
  int group_field_index_ = -1;
  Bucket global_;
  std::map<Value, Bucket, ValueLess> groups_;
  /// kUnique storage: latest event per key.
  std::vector<int> unique_field_indexes_;
  std::map<std::vector<Value>, EventPtr, ValueVectorLess> unique_;
  /// Probe key reused by Insert so steady-state kUnique refreshes (the
  /// threshold-update path) do not allocate a key vector per event.
  std::vector<Value> unique_key_scratch_;
};

}  // namespace cep
}  // namespace insight

#endif  // INSIGHT_CEP_VIEW_H_
