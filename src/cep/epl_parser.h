#ifndef INSIGHT_CEP_EPL_PARSER_H_
#define INSIGHT_CEP_EPL_PARSER_H_

#include <string>

#include "cep/statement.h"
#include "common/status.h"

namespace insight {
namespace cep {

/// Parses the EPL subset used by the system into a StatementDef:
///
///   [@Trigger(type[, type...])]
///   [INSERT INTO type]
///   SELECT (* | expr [AS name], ...)
///   FROM type[.view]... [AS alias], ...
///   [WHERE expr]
///   [GROUP BY expr, ...]
///   [HAVING expr]
///   [ORDER BY expr [ASC|DESC], ...]
///   [LIMIT n]
///
/// Views: std:lastevent(), std:groupwin(field), win:length(n),
/// win:length_batch(n), win:time(n [sec|msec|min]), win:time_batch(n ...),
/// win:keepall().
///
/// Expressions: and/or/not, comparisons (= != < <= > >=), arithmetic
/// (+ - * / %), literals (ints, doubles, 'strings', true/false), field refs
/// (field or alias.field), aggregates avg/sum/count/min/max/stddev.
///
/// The optional @Trigger annotation restricts which event types fire join
/// evaluation (Listing 1's rules trigger on the bus stream only, so threshold
/// refreshes never fire detections by themselves).
Result<StatementDef> ParseEpl(const std::string& epl);

}  // namespace cep
}  // namespace insight

#endif  // INSIGHT_CEP_EPL_PARSER_H_
