#ifndef INSIGHT_CEP_EXPR_H_
#define INSIGHT_CEP_EXPR_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cep/event.h"
#include "common/status.h"

namespace insight {
namespace cep {

/// Schemas of the FROM sources of a statement, in declaration order. Field
/// references resolve against these.
struct SourceSchemas {
  std::vector<std::string> aliases;
  std::vector<EventTypePtr> types;

  int AliasIndex(const std::string& alias) const;
};

/// A join row: one event per FROM source, positionally aligned with
/// SourceSchemas. Non-owning view over a contiguous span of `const Event*` —
/// the statement's windows keep the events alive for the duration of an
/// evaluation, so rows can be stacked in a flat arena without refcounting.
class JoinRow {
 public:
  JoinRow() = default;
  JoinRow(const Event* const* events, size_t size)
      : events_(events), size_(size) {}

  const Event* operator[](size_t i) const { return events_[i]; }
  size_t size() const { return size_; }

 private:
  const Event* const* events_ = nullptr;
  size_t size_ = 0;
};

/// Evaluation context for expressions. `agg_values` carries precomputed
/// aggregate results (indexed by AggregateExpr::agg_id) when evaluating
/// HAVING / SELECT over a group.
struct EvalContext {
  const JoinRow* row = nullptr;
  const std::vector<Value>* agg_values = nullptr;
};

enum class BinaryOp {
  kAnd,
  kOr,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
};

enum class UnaryOp { kNot, kNeg };

enum class AggFunc { kAvg, kSum, kCount, kMin, kMax, kStddev };

const char* BinaryOpToString(BinaryOp op);
const char* AggFuncToString(AggFunc func);

class AggregateExpr;
class FieldRefExpr;

/// Base expression node. Expressions are built by the EPL parser (or
/// programmatically), then Resolve()d against the statement's sources before
/// evaluation.
class Expr {
 public:
  virtual ~Expr() = default;

  /// Binds field references to (source, field) indexes. Returns an error for
  /// unknown aliases/fields or ambiguous bare field names.
  virtual Status Resolve(const SourceSchemas& schemas) = 0;

  /// Evaluates on a single row. Aggregate nodes read from ctx.agg_values.
  virtual Value Eval(const EvalContext& ctx) const = 0;

  /// Appends all aggregate nodes in this subtree (pre-order).
  virtual void CollectAggregates(std::vector<AggregateExpr*>* /*out*/) {}

  /// Appends all field references in this subtree (pre-order). Used by the
  /// join planner to determine which sources an expression depends on.
  virtual void CollectFieldRefs(std::vector<const FieldRefExpr*>* /*out*/) const {}

  /// Static result type of this expression. Requires Resolve(). Returns
  /// InvalidArgument for type errors (e.g. aggregating a string, arithmetic
  /// on strings), caught at statement compile time.
  virtual Result<ValueType> DeduceType() const = 0;

  virtual std::string ToString() const = 0;
};

using ExprPtr = std::unique_ptr<Expr>;

class LiteralExpr : public Expr {
 public:
  explicit LiteralExpr(Value value) : value_(std::move(value)) {}
  Status Resolve(const SourceSchemas&) override { return Status::OK(); }
  Value Eval(const EvalContext&) const override { return value_; }
  Result<ValueType> DeduceType() const override { return value_.type(); }
  std::string ToString() const override { return value_.ToString(); }
  const Value& value() const { return value_; }

 private:
  Value value_;
};

/// `alias.field` or bare `field` (resolved when unambiguous across sources).
class FieldRefExpr : public Expr {
 public:
  FieldRefExpr(std::string alias, std::string field)
      : alias_(std::move(alias)), field_(std::move(field)) {}

  Status Resolve(const SourceSchemas& schemas) override;
  Value Eval(const EvalContext& ctx) const override;
  void CollectFieldRefs(std::vector<const FieldRefExpr*>* out) const override {
    out->push_back(this);
  }
  Result<ValueType> DeduceType() const override;
  std::string ToString() const override {
    return alias_.empty() ? field_ : alias_ + "." + field_;
  }

  const std::string& alias() const { return alias_; }
  const std::string& field() const { return field_; }
  int source_index() const { return source_index_; }
  int field_index() const { return field_index_; }

 private:
  std::string alias_;
  std::string field_;
  int source_index_ = -1;
  int field_index_ = -1;
  std::optional<ValueType> declared_type_;
};

class UnaryExpr : public Expr {
 public:
  UnaryExpr(UnaryOp op, ExprPtr operand)
      : op_(op), operand_(std::move(operand)) {}
  Status Resolve(const SourceSchemas& schemas) override {
    return operand_->Resolve(schemas);
  }
  Value Eval(const EvalContext& ctx) const override;
  void CollectAggregates(std::vector<AggregateExpr*>* out) override {
    operand_->CollectAggregates(out);
  }
  void CollectFieldRefs(std::vector<const FieldRefExpr*>* out) const override {
    operand_->CollectFieldRefs(out);
  }
  Result<ValueType> DeduceType() const override;
  std::string ToString() const override;

  UnaryOp op() const { return op_; }
  const Expr* operand() const { return operand_.get(); }

 private:
  UnaryOp op_;
  ExprPtr operand_;
};

class BinaryExpr : public Expr {
 public:
  BinaryExpr(BinaryOp op, ExprPtr left, ExprPtr right)
      : op_(op), left_(std::move(left)), right_(std::move(right)) {}

  Status Resolve(const SourceSchemas& schemas) override {
    INSIGHT_RETURN_NOT_OK(left_->Resolve(schemas));
    return right_->Resolve(schemas);
  }
  Value Eval(const EvalContext& ctx) const override;
  void CollectAggregates(std::vector<AggregateExpr*>* out) override {
    left_->CollectAggregates(out);
    right_->CollectAggregates(out);
  }
  void CollectFieldRefs(std::vector<const FieldRefExpr*>* out) const override {
    left_->CollectFieldRefs(out);
    right_->CollectFieldRefs(out);
  }
  Result<ValueType> DeduceType() const override;
  std::string ToString() const override;

  BinaryOp op() const { return op_; }
  const Expr* left() const { return left_.get(); }
  const Expr* right() const { return right_.get(); }

 private:
  BinaryOp op_;
  ExprPtr left_;
  ExprPtr right_;
};

/// avg(x), count(*), stddev(bd2.delay), ... Evaluated over the rows of a
/// group; Eval() reads the precomputed value for this node's agg_id.
class AggregateExpr : public Expr {
 public:
  AggregateExpr(AggFunc func, ExprPtr argument)
      : func_(func), argument_(std::move(argument)) {}

  Status Resolve(const SourceSchemas& schemas) override {
    if (argument_ == nullptr) {
      if (func_ != AggFunc::kCount) {
        return Status::InvalidArgument("only count() may omit its argument");
      }
      return Status::OK();
    }
    return argument_->Resolve(schemas);
  }

  Value Eval(const EvalContext& ctx) const override;
  void CollectAggregates(std::vector<AggregateExpr*>* out) override {
    out->push_back(this);
  }
  void CollectFieldRefs(std::vector<const FieldRefExpr*>* out) const override {
    if (argument_ != nullptr) argument_->CollectFieldRefs(out);
  }
  Result<ValueType> DeduceType() const override;
  std::string ToString() const override;

  AggFunc func() const { return func_; }
  const Expr* argument() const { return argument_.get(); }
  void set_agg_id(int id) { agg_id_ = id; }
  int agg_id() const { return agg_id_; }

 private:
  AggFunc func_;
  ExprPtr argument_;  // nullptr means count(*)
  int agg_id_ = -1;
};

/// Helpers for building expression trees programmatically (used by the rule
/// template and tests).
ExprPtr Lit(Value v);
ExprPtr Field(std::string alias, std::string field);
ExprPtr Field(std::string field);
ExprPtr Bin(BinaryOp op, ExprPtr l, ExprPtr r);
ExprPtr And(ExprPtr l, ExprPtr r);
ExprPtr Eq(ExprPtr l, ExprPtr r);
ExprPtr Gt(ExprPtr l, ExprPtr r);
ExprPtr Agg(AggFunc func, ExprPtr argument);

}  // namespace cep
}  // namespace insight

#endif  // INSIGHT_CEP_EXPR_H_
