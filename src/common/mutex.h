#ifndef INSIGHT_COMMON_MUTEX_H_
#define INSIGHT_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/static_analysis.h"
#include "common/thread_annotations.h"

/// Debug builds validate the declared lock-rank order (TMS_LOCK_RANK) on
/// every acquisition: each thread keeps a stack of the ranks it holds, and
/// acquiring a rank lower than or equal to the innermost held rank aborts
/// with both ranks. Release and RelWithDebInfo builds compile the validator
/// out entirely — Lock/Unlock stay exactly the raw std::mutex calls.
/// (Define TMS_FORCE_LOCK_RANK_CHECKS to keep it in an optimized build.)
#if defined(TMS_FORCE_LOCK_RANK_CHECKS) || !defined(NDEBUG)
#define TMS_LOCK_RANK_CHECKS_ENABLED 1
#else
#define TMS_LOCK_RANK_CHECKS_ENABLED 0
#endif

#if TMS_LOCK_RANK_CHECKS_ENABLED
#include <vector>

#include "common/check.h"
#endif

namespace insight {

class CondVar;

/// A mutex's position in the global lock order; write TMS_LOCK_RANK(n)
/// (common/static_analysis.h) rather than constructing one directly. Ranks
/// are acquired in strictly increasing order: outermost coordinators get
/// low ranks, leaf locks (nothing acquired while they are held) get high
/// ranks, and two same-ranked mutexes must never nest. tools/analyze.py
/// checks the order statically over the cross-TU call graph; Debug builds
/// check the actual per-thread acquisition order below.
struct MutexRank {
  int value;
};

#if TMS_LOCK_RANK_CHECKS_ENABLED
namespace mutex_internal {

/// Ranks currently held by this thread, in acquisition order (unranked
/// mutexes do not participate). Function-local so the header needs no TU.
inline std::vector<int>& HeldRankStack() {
  static thread_local std::vector<int> stack;
  return stack;
}

inline void OnRankedAcquire(int rank) {
  std::vector<int>& held = HeldRankStack();
  if (!held.empty()) {
    TMS_CHECK(held.back() < rank)
        << "lock-rank order violation: acquiring rank " << rank
        << " while holding rank " << held.back()
        << " (ranks must be acquired in strictly increasing order; see "
           "DESIGN.md \"Static analysis\")";
  }
  held.push_back(rank);
}

inline void OnRankedRelease(int rank) {
  std::vector<int>& held = HeldRankStack();
  // Manual Lock/Unlock pairs may release out of LIFO order; drop the
  // innermost occurrence of this rank.
  for (size_t i = held.size(); i-- > 0;) {
    if (held[i] == rank) {
      held.erase(held.begin() + static_cast<long>(i));
      return;
    }
  }
  TMS_CHECK(false) << "lock-rank bookkeeping: releasing rank " << rank
                   << " that this thread does not hold";
}

}  // namespace mutex_internal
#endif  // TMS_LOCK_RANK_CHECKS_ENABLED

/// Annotated wrapper over std::mutex (abseil style). All forwarding is
/// inline and stateless, so a Lock/Unlock pair compiles to exactly the raw
/// std::mutex calls — the annotations cost nothing at runtime; they exist so
/// clang -Wthread-safety can prove the lock discipline (see
/// thread_annotations.h and DESIGN.md "Concurrency discipline").
class CAPABILITY("mutex") Mutex {
 public:
  /// Sentinel rank of an unranked mutex (participates in no ordering
  /// checks; TMS_NON_BLOCKING paths may not acquire one).
  static constexpr int kNoRank = -1;

  Mutex() = default;
  /// Ranked constructor: Mutex mutex_{TMS_LOCK_RANK(n)}.
  explicit Mutex(MutexRank rank) : rank_(rank.value) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() {
    mu_.lock();
#if TMS_LOCK_RANK_CHECKS_ENABLED
    if (rank_ != kNoRank) mutex_internal::OnRankedAcquire(rank_);
#endif
  }
  void Unlock() RELEASE() {
#if TMS_LOCK_RANK_CHECKS_ENABLED
    if (rank_ != kNoRank) mutex_internal::OnRankedRelease(rank_);
#endif
    mu_.unlock();
  }
  bool TryLock() TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
#if TMS_LOCK_RANK_CHECKS_ENABLED
    if (rank_ != kNoRank) mutex_internal::OnRankedAcquire(rank_);
#endif
    return true;
  }

  /// Tells the analysis the capability is held (e.g. in a helper reached
  /// only with the lock taken, where the proof is out of clang's view).
  void AssertHeld() const ASSERT_CAPABILITY(this) {}

  /// Declared lock rank, kNoRank if unranked. The rank is stored in every
  /// build (4 bytes next to a 40-byte std::mutex) so mixed-NDEBUG object
  /// files agree on the layout; only the validation is Debug-gated.
  int rank() const { return rank_; }

 private:
  friend class CondVar;
  std::mutex mu_;
  int rank_ = kNoRank;
};

/// RAII lock for Mutex; the scoped acquire/release is visible to the
/// analysis. Prefer this over manual Lock/Unlock pairs.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable bound to Mutex. Waits take the Mutex explicitly so
/// REQUIRES(mu) documents — and clang verifies — that the caller holds the
/// lock. There are deliberately no predicate overloads: writing the wait as
///
///   MutexLock lock(mu_);
///   while (!condition) cv_.Wait(mu_);
///
/// keeps the predicate's guarded-field accesses inside the annotated caller,
/// where the analysis can check them (a predicate lambda would be analyzed
/// as an unannotated function and defeat the proof).
class CondVar {
 public:
  CondVar() = default;

  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks until notified (or spuriously woken),
  /// and re-acquires `mu` before returning. Callers must re-check their
  /// condition in a loop.
  void Wait(Mutex& mu) REQUIRES(mu) {
    // Adopt the already-held native mutex so the wait uses the fast
    // std::condition_variable path, then release the unique_lock without
    // unlocking — ownership stays with the caller's MutexLock.
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  /// Like Wait, but also returns (with `mu` re-acquired) once `timeout`
  /// elapses. Returns false on timeout, true when notified/spurious.
  template <typename Rep, typename Period>
  bool WaitFor(Mutex& mu, std::chrono::duration<Rep, Period> timeout)
      REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    std::cv_status status = cv_.wait_for(native, timeout);
    native.release();
    return status == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace insight

#endif  // INSIGHT_COMMON_MUTEX_H_
