#ifndef INSIGHT_COMMON_MUTEX_H_
#define INSIGHT_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace insight {

class CondVar;

/// Annotated wrapper over std::mutex (abseil style). All forwarding is
/// inline and stateless, so a Lock/Unlock pair compiles to exactly the raw
/// std::mutex calls — the annotations cost nothing at runtime; they exist so
/// clang -Wthread-safety can prove the lock discipline (see
/// thread_annotations.h and DESIGN.md "Concurrency discipline").
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// Tells the analysis the capability is held (e.g. in a helper reached
  /// only with the lock taken, where the proof is out of clang's view).
  void AssertHeld() const ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock for Mutex; the scoped acquire/release is visible to the
/// analysis. Prefer this over manual Lock/Unlock pairs.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable bound to Mutex. Waits take the Mutex explicitly so
/// REQUIRES(mu) documents — and clang verifies — that the caller holds the
/// lock. There are deliberately no predicate overloads: writing the wait as
///
///   MutexLock lock(mu_);
///   while (!condition) cv_.Wait(mu_);
///
/// keeps the predicate's guarded-field accesses inside the annotated caller,
/// where the analysis can check them (a predicate lambda would be analyzed
/// as an unannotated function and defeat the proof).
class CondVar {
 public:
  CondVar() = default;

  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks until notified (or spuriously woken),
  /// and re-acquires `mu` before returning. Callers must re-check their
  /// condition in a loop.
  void Wait(Mutex& mu) REQUIRES(mu) {
    // Adopt the already-held native mutex so the wait uses the fast
    // std::condition_variable path, then release the unique_lock without
    // unlocking — ownership stays with the caller's MutexLock.
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  /// Like Wait, but also returns (with `mu` re-acquired) once `timeout`
  /// elapses. Returns false on timeout, true when notified/spurious.
  template <typename Rep, typename Period>
  bool WaitFor(Mutex& mu, std::chrono::duration<Rep, Period> timeout)
      REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    std::cv_status status = cv_.wait_for(native, timeout);
    native.release();
    return status == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace insight

#endif  // INSIGHT_COMMON_MUTEX_H_
