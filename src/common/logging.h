#ifndef INSIGHT_COMMON_LOGGING_H_
#define INSIGHT_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace insight {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kOff = 4 };

/// Sets the global minimum level emitted by INSIGHT_LOG. Default: kWarning so
/// tests and benches stay quiet; examples raise it to kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();
  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows the streamed expression when the level is filtered out.
struct NullStream {
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal

#define INSIGHT_LOG(level)                                              \
  if (::insight::LogLevel::k##level < ::insight::GetLogLevel()) {      \
  } else                                                                \
    ::insight::internal::LogMessage(::insight::LogLevel::k##level,     \
                                    __FILE__, __LINE__)                 \
        .stream()

/// Fatal invariant check: logs and aborts. Use for programming errors only;
/// expected failures go through Status.
#define INSIGHT_CHECK(cond)                                                 \
  if (cond) {                                                               \
  } else                                                                    \
    ::insight::internal::FatalMessage(__FILE__, __LINE__, #cond).stream()

namespace internal {

class FatalMessage {
 public:
  FatalMessage(const char* file, int line, const char* expr);
  [[noreturn]] ~FatalMessage();
  std::ostringstream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace insight

#endif  // INSIGHT_COMMON_LOGGING_H_
