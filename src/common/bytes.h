#ifndef INSIGHT_COMMON_BYTES_H_
#define INSIGHT_COMMON_BYTES_H_

#include <cstdint>
#include <cstring>
#include <string>

namespace insight {

/// Append-only little-endian byte serializer backing the versioned snapshot
/// formats (cep::Engine::Snapshot, the runtime's checkpoint container). The
/// writer owns no storage: it appends to a caller-provided string so a
/// multi-section snapshot can be assembled into one buffer.
class ByteWriter {
 public:
  explicit ByteWriter(std::string* out) : out_(out) {}

  ByteWriter(const ByteWriter&) = delete;
  ByteWriter& operator=(const ByteWriter&) = delete;

  void PutU8(uint8_t v) { out_->push_back(static_cast<char>(v)); }

  void PutU32(uint32_t v) {
    char buf[4];
    for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
    out_->append(buf, 4);
  }

  void PutU64(uint64_t v) {
    char buf[8];
    for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
    out_->append(buf, 8);
  }

  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }

  void PutDouble(double v) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
    std::memcpy(&bits, &v, sizeof(bits));
    PutU64(bits);
  }

  /// Length-prefixed (u32) byte string.
  void PutString(const std::string& s) {
    PutU32(static_cast<uint32_t>(s.size()));
    out_->append(s);
  }

  size_t size() const { return out_->size(); }

 private:
  std::string* out_;
};

/// Bounds-checked reader over a byte buffer. Every Get returns false on
/// truncation instead of reading past the end, so a corrupted or truncated
/// snapshot degrades into a decode error the caller can turn into a
/// clean-state fallback — never undefined behaviour.
class ByteReader {
 public:
  ByteReader(const char* data, size_t size) : data_(data), size_(size) {}
  explicit ByteReader(const std::string& s) : ByteReader(s.data(), s.size()) {}

  ByteReader(const ByteReader&) = delete;
  ByteReader& operator=(const ByteReader&) = delete;

  bool GetU8(uint8_t* v) {
    if (pos_ + 1 > size_) return false;
    *v = static_cast<uint8_t>(data_[pos_++]);
    return true;
  }

  bool GetU32(uint32_t* v) {
    if (pos_ + 4 > size_) return false;
    uint32_t out = 0;
    for (int i = 0; i < 4; ++i) {
      out |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i])) << (8 * i);
    }
    pos_ += 4;
    *v = out;
    return true;
  }

  bool GetU64(uint64_t* v) {
    if (pos_ + 8 > size_) return false;
    uint64_t out = 0;
    for (int i = 0; i < 8; ++i) {
      out |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i])) << (8 * i);
    }
    pos_ += 8;
    *v = out;
    return true;
  }

  bool GetI64(int64_t* v) {
    uint64_t raw;
    if (!GetU64(&raw)) return false;
    *v = static_cast<int64_t>(raw);
    return true;
  }

  bool GetDouble(double* v) {
    uint64_t bits;
    if (!GetU64(&bits)) return false;
    std::memcpy(v, &bits, sizeof(bits));
    return true;
  }

  /// Length-prefixed byte string; a length that overruns the buffer (a
  /// typical symptom of garbage data) fails without allocating.
  bool GetString(std::string* s) {
    uint32_t len;
    if (!GetU32(&len)) return false;
    if (pos_ + len > size_) return false;
    s->assign(data_ + pos_, len);
    pos_ += len;
    return true;
  }

  size_t remaining() const { return size_ - pos_; }
  bool exhausted() const { return pos_ == size_; }

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace insight

#endif  // INSIGHT_COMMON_BYTES_H_
