#include "common/strings.h"

#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace insight {

std::vector<std::string> Split(std::string_view input, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(input.substr(start));
      break;
    }
    out.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view input) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < input.size()) {
    while (i < input.size() && std::isspace(static_cast<unsigned char>(input[i]))) ++i;
    size_t start = i;
    while (i < input.size() && !std::isspace(static_cast<unsigned char>(input[i]))) ++i;
    if (i > start) out.emplace_back(input.substr(start, i - start));
  }
  return out;
}

std::string_view Trim(std::string_view input) {
  size_t begin = 0;
  while (begin < input.size() &&
         std::isspace(static_cast<unsigned char>(input[begin]))) {
    ++begin;
  }
  size_t end = input.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(input[end - 1]))) {
    --end;
  }
  return input.substr(begin, end - begin);
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string ToLower(std::string_view input) {
  std::string out(input);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

Result<double> ParseDouble(std::string_view s) {
  std::string trimmed(Trim(s));
  if (trimmed.empty()) return Status::ParseError("empty string is not a double");
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(trimmed.c_str(), &end);
  if (errno == ERANGE) return Status::OutOfRange("double out of range: " + trimmed);
  if (end != trimmed.c_str() + trimmed.size()) {
    return Status::ParseError("not a double: '" + trimmed + "'");
  }
  return v;
}

Result<long long> ParseInt(std::string_view s) {
  std::string trimmed(Trim(s));
  if (trimmed.empty()) return Status::ParseError("empty string is not an integer");
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(trimmed.c_str(), &end, 10);
  if (errno == ERANGE) return Status::OutOfRange("integer out of range: " + trimmed);
  if (end != trimmed.c_str() + trimmed.size()) {
    return Status::ParseError("not an integer: '" + trimmed + "'");
  }
  return v;
}

Result<bool> ParseBool(std::string_view s) {
  std::string lower = ToLower(Trim(s));
  if (lower == "true" || lower == "1" || lower == "yes") return true;
  if (lower == "false" || lower == "0" || lower == "no") return false;
  return Status::ParseError("not a boolean: '" + lower + "'");
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace insight
