#include "common/csv.h"

namespace insight {

namespace {

/// Appends a parsed field list from `line` into *fields. Returns false on a
/// quoting error.
bool ParseLineInto(const std::string& line, std::vector<std::string>* fields,
                   std::string* error) {
  fields->clear();
  std::string field;
  bool in_quotes = false;
  size_t i = 0;
  while (i < line.size()) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          field.push_back('"');
          i += 2;
          continue;
        }
        in_quotes = false;
        ++i;
        continue;
      }
      field.push_back(c);
      ++i;
      continue;
    }
    if (c == '"') {
      if (!field.empty()) {
        *error = "quote in the middle of an unquoted field";
        return false;
      }
      in_quotes = true;
      ++i;
      continue;
    }
    if (c == ',') {
      fields->push_back(std::move(field));
      field.clear();
      ++i;
      continue;
    }
    field.push_back(c);
    ++i;
  }
  if (in_quotes) {
    *error = "unterminated quoted field";
    return false;
  }
  fields->push_back(std::move(field));
  return true;
}

bool NeedsQuoting(const std::string& field) {
  for (char c : field) {
    if (c == ',' || c == '"' || c == '\n' || c == '\r') return true;
  }
  return false;
}

}  // namespace

bool CsvReader::Next(std::vector<std::string>* fields) {
  if (!status_.ok()) return false;
  std::string line;
  if (!std::getline(*in_, line)) return false;
  ++line_;
  if (!line.empty() && line.back() == '\r') line.pop_back();
  std::string error;
  if (!ParseLineInto(line, fields, &error)) {
    status_ = Status::ParseError("csv line " + std::to_string(line_) + ": " + error);
    return false;
  }
  return true;
}

void CsvWriter::Write(const std::vector<std::string>& fields) {
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) *out_ << ',';
    const std::string& f = fields[i];
    if (NeedsQuoting(f)) {
      *out_ << '"';
      for (char c : f) {
        if (c == '"') *out_ << '"';
        *out_ << c;
      }
      *out_ << '"';
    } else {
      *out_ << f;
    }
  }
  *out_ << '\n';
}

Result<std::vector<std::string>> ParseCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string error;
  if (!ParseLineInto(line, &fields, &error)) return Status::ParseError(error);
  return fields;
}

}  // namespace insight
