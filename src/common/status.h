#ifndef INSIGHT_COMMON_STATUS_H_
#define INSIGHT_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace insight {

/// Error category carried by Status / Result.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kParseError,
  kIoError,
  kInternal,
  kUnimplemented,
  kResourceExhausted,
};

/// Returns a human-readable name for a status code ("InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// Lightweight, exception-free error propagation type, in the style used by
/// RocksDB and Arrow. Functions that can fail in expected ways return Status
/// (or Result<T> below) instead of throwing.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Value-or-error holder. Either contains a T or a non-OK Status.
template <typename T>
class Result {
 public:
  /// Implicit from value: allows `return value;` in Result-returning functions.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit): allows `return value;`
  /// Implicit from error status; aborts if the status is OK (an OK Result
  /// must carry a value).
  Result(Status status) : status_(std::move(status)) {}  // NOLINT(runtime/explicit): allows `return status;`

  bool ok() const { return value_.has_value(); }
  /// The error, or OK when a value is held.
  const Status& status() const {
    static const Status kOk;
    return value_.has_value() ? kOk : status_;
  }

  /// Value accessors. Calling these on an error Result is a programming bug;
  /// behaviour mirrors std::optional (undefined access).
  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return std::move(*value_); }
  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

  /// Returns the value or `fallback` if this holds an error.
  T value_or(T fallback) const {
    return value_.has_value() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_ = Status::Internal("result has no status");
};

/// Propagates a non-OK Status from an expression (use inside Status-returning
/// functions).
#define INSIGHT_RETURN_NOT_OK(expr)                    \
  do {                                                 \
    ::insight::Status _st = (expr);                    \
    if (!_st.ok()) return _st;                         \
  } while (false)

/// Assigns the value of a Result expression to `lhs` or propagates its error.
#define INSIGHT_ASSIGN_OR_RETURN(lhs, rexpr)           \
  auto INSIGHT_CONCAT_(_res, __LINE__) = (rexpr);      \
  if (!INSIGHT_CONCAT_(_res, __LINE__).ok())           \
    return INSIGHT_CONCAT_(_res, __LINE__).status();   \
  lhs = std::move(INSIGHT_CONCAT_(_res, __LINE__)).value()

#define INSIGHT_CONCAT_IMPL_(a, b) a##b
#define INSIGHT_CONCAT_(a, b) INSIGHT_CONCAT_IMPL_(a, b)

}  // namespace insight

#endif  // INSIGHT_COMMON_STATUS_H_
