#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "common/mutex.h"

namespace insight {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarning};
Mutex g_log_mutex{TMS_LOCK_RANK(100)};  // serializes whole-line writes to stderr

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level_) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  MutexLock lock(g_log_mutex);
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
}

FatalMessage::FatalMessage(const char* file, int line, const char* expr) {
  stream_ << "[FATAL " << file << ":" << line << "] check failed: " << expr
          << " ";
}

FatalMessage::~FatalMessage() {
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
  std::abort();
}

}  // namespace internal
}  // namespace insight
