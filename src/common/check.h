#ifndef INSIGHT_COMMON_CHECK_H_
#define INSIGHT_COMMON_CHECK_H_

#include "common/logging.h"

/// Invariant checks with formatted (streamed) messages.
///
///   TMS_CHECK(ptr != nullptr) << "context " << id;   // all builds
///   TMS_DCHECK(in_flight >= 0) << "went negative";   // debug builds only
///   TMS_DCHECK_EQ(flushed, staged);                  // prints both values
///
/// TMS_CHECK is for invariants cheap enough to verify in production builds
/// (it aborts with file:line and the failed expression). TMS_DCHECK and its
/// comparison variants compile to nothing when TMS_DCHECK_ENABLED is 0 —
/// the condition is parsed but never evaluated — so hot-path invariants
/// (acker tree balance, in-flight accounting, outbox consistency) cost
/// nothing in RelWithDebInfo/Release. Debug builds (and any TU compiled
/// with -DTMS_FORCE_DCHECK) run them for real; the asan-ubsan CI job builds
/// Debug so every DCHECK is exercised on every PR.
///
/// Do not use TMS_DCHECK in headers: a header inlined into TUs with
/// different TMS_DCHECK_ENABLED settings would violate the ODR. Keep
/// DCHECKed invariants in .cc files (lint.py does not automate this rule;
/// reviewers enforce it).
///
/// On the failure path the checked operands of the _EQ/_NE/... variants are
/// evaluated a second time to print them; don't use expressions with side
/// effects.

#if defined(TMS_FORCE_DCHECK) || !defined(NDEBUG)
#define TMS_DCHECK_ENABLED 1
#else
#define TMS_DCHECK_ENABLED 0
#endif

#define TMS_CHECK(cond)                                                     \
  if (cond) {                                                               \
  } else                                                                    \
    ::insight::internal::FatalMessage(__FILE__, __LINE__, #cond).stream()

#define TMS_CHECK_OP_(a, op, b)                                             \
  if ((a)op(b)) {                                                           \
  } else                                                                    \
    ::insight::internal::FatalMessage(__FILE__, __LINE__,                   \
                                      #a " " #op " " #b)                    \
        .stream()                                                           \
        << "(" << (a) << " vs " << (b) << ") "

#define TMS_CHECK_EQ(a, b) TMS_CHECK_OP_(a, ==, b)
#define TMS_CHECK_NE(a, b) TMS_CHECK_OP_(a, !=, b)
#define TMS_CHECK_LT(a, b) TMS_CHECK_OP_(a, <, b)
#define TMS_CHECK_LE(a, b) TMS_CHECK_OP_(a, <=, b)
#define TMS_CHECK_GT(a, b) TMS_CHECK_OP_(a, >, b)
#define TMS_CHECK_GE(a, b) TMS_CHECK_OP_(a, >=, b)

#if TMS_DCHECK_ENABLED
#define TMS_DCHECK(cond) TMS_CHECK(cond)
#define TMS_DCHECK_EQ(a, b) TMS_CHECK_EQ(a, b)
#define TMS_DCHECK_NE(a, b) TMS_CHECK_NE(a, b)
#define TMS_DCHECK_LT(a, b) TMS_CHECK_LT(a, b)
#define TMS_DCHECK_LE(a, b) TMS_CHECK_LE(a, b)
#define TMS_DCHECK_GT(a, b) TMS_CHECK_GT(a, b)
#define TMS_DCHECK_GE(a, b) TMS_CHECK_GE(a, b)
#else
// `while (false)` keeps the condition compiled (names stay checked, no
// unused-variable warnings) but dead-code eliminated.
#define TMS_DCHECK(cond) \
  while (false) TMS_CHECK(cond)
#define TMS_DCHECK_EQ(a, b) \
  while (false) TMS_CHECK_EQ(a, b)
#define TMS_DCHECK_NE(a, b) \
  while (false) TMS_CHECK_NE(a, b)
#define TMS_DCHECK_LT(a, b) \
  while (false) TMS_CHECK_LT(a, b)
#define TMS_DCHECK_LE(a, b) \
  while (false) TMS_CHECK_LE(a, b)
#define TMS_DCHECK_GT(a, b) \
  while (false) TMS_CHECK_GT(a, b)
#define TMS_DCHECK_GE(a, b) \
  while (false) TMS_CHECK_GE(a, b)
#endif  // TMS_DCHECK_ENABLED

#endif  // INSIGHT_COMMON_CHECK_H_
