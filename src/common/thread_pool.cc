#include "common/thread_pool.h"

namespace insight {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(mutex_);
    queue_.push_back(std::move(task));
  }
  work_available_.NotifyOne();
}

void ThreadPool::Wait() {
  MutexLock lock(mutex_);
  while (!queue_.empty() || in_flight_ != 0) {
    all_done_.Wait(mutex_);
  }
}

void ThreadPool::Shutdown() {
  {
    MutexLock lock(mutex_);
    if (shutdown_) return;
    shutdown_ = true;
  }
  work_available_.NotifyAll();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      while (!shutdown_ && queue_.empty()) {
        work_available_.Wait(mutex_);
      }
      if (queue_.empty()) return;  // shutdown_ with drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      MutexLock lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) all_done_.NotifyAll();
    }
  }
}

}  // namespace insight
