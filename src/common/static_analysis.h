#ifndef INSIGHT_COMMON_STATIC_ANALYSIS_H_
#define INSIGHT_COMMON_STATIC_ANALYSIS_H_

/// Semantic-invariant annotations checked by tools/analyze.py.
///
/// Where clang's -Wthread-safety proves "which lock guards which field"
/// (common/thread_annotations.h), these annotations declare whole-call-graph
/// properties of the hot path that the analyzer verifies across translation
/// units — the static twin of the dynamic gates (bench_hotpath's zero-alloc
/// gate, the TSan job, the chaos suites), catching regressions on *every*
/// path at analysis time instead of on exercised paths at run time.
///
/// Vocabulary
/// ----------
///   TMS_NO_ALLOC      The function and every intra-project function
///                     reachable from it must not allocate: no new/malloc,
///                     no growing-container call, no string construction.
///                     Deliberate amortized growth (capacity retained across
///                     batches, bounded freelist warm-up) is exempted at the
///                     offending line with TMS_ANALYZE_EXEMPT.
///
///   TMS_NON_BLOCKING  Nothing reachable from the function may block: no
///                     sleeps, no CondVar waits, no thread joins, no
///                     blocking file I/O, no poll/select, and no acquisition
///                     of an *unranked* mutex (ranked mutexes guard bounded
///                     leaf critical sections by construction; an unranked
///                     one has made no such promise). Required on
///                     net::EventLoop callbacks — one stalled callback
///                     stalls every connection on the loop.
///
///   TMS_LOCK_RANK(n)  Declares a mutex's position in the global lock
///                     order; pass it to the insight::Mutex constructor:
///                       Mutex mutex_{TMS_LOCK_RANK(80)};
///                     Ranks must be acquired in strictly increasing order
///                     (outermost coordinators low, leaf locks high — see
///                     DESIGN.md "Static analysis" for the rank table).
///                     tools/analyze.py flags any path that acquires a
///                     lower-or-equal rank while a higher one is held, and
///                     Debug builds validate the actual per-thread
///                     acquisition order at run time (common/mutex.h).
///
///   TMS_ANALYZE_EXEMPT(reason)
///                     Suppresses analyzer findings, with an audit trail.
///                     Two forms:
///                       - on a function (trailing, like REQUIRES): the
///                         analyzer treats the whole body as clean;
///                       - in a trailing comment on the offending line:
///                         // TMS_ANALYZE_EXEMPT(warm-up only: freelist
///                         //                     capacity retained)
///                         suppresses findings at exactly that line.
///                     The reason is mandatory: a bare exemption is itself
///                     a finding (mirroring lint.py's reasoned-marker
///                     hygiene rule).
///
/// The annotations compile to clang `annotate` attributes (visible to the
/// libclang frontend of tools/analyze.py) and to nothing under GCC/MSVC;
/// the analyzer's text frontend reads the macro tokens directly, so the
/// checks run identically on builds that never see clang.
#if defined(__clang__)
#define TMS_ANNOTATE_(x) __attribute__((annotate(x)))
#else
#define TMS_ANNOTATE_(x)
#endif

#define TMS_NO_ALLOC TMS_ANNOTATE_("tms_no_alloc")
#define TMS_NON_BLOCKING TMS_ANNOTATE_("tms_non_blocking")
#define TMS_ANALYZE_EXEMPT(reason) TMS_ANNOTATE_("tms_exempt:" reason)

/// Expands to a MutexRank so ranked declarations read as one annotation:
///   Mutex mutex_{TMS_LOCK_RANK(80)};
/// (MutexRank itself lives in common/mutex.h next to the Debug-build
/// acquisition-order validator.)
#define TMS_LOCK_RANK(n) \
  ::insight::MutexRank { (n) }

#endif  // INSIGHT_COMMON_STATIC_ANALYSIS_H_
