#ifndef INSIGHT_COMMON_THREAD_ANNOTATIONS_H_
#define INSIGHT_COMMON_THREAD_ANNOTATIONS_H_

/// Clang Thread Safety Analysis annotations (no-ops on GCC and MSVC).
///
/// Annotate shared state with GUARDED_BY(mu) and lock-requiring functions
/// with REQUIRES(mu); a clang build with -Wthread-safety -Werror then proves
/// the lock discipline at compile time (the `thread-safety` CI job). See
/// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html and the
/// "Concurrency discipline" section of DESIGN.md for project conventions.
///
/// New code must use insight::Mutex / MutexLock / CondVar (common/mutex.h)
/// instead of raw std::mutex / std::condition_variable — tools/lint.py
/// rejects the raw types outside src/common/.

#if defined(__clang__)
#define INSIGHT_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define INSIGHT_THREAD_ANNOTATION_(x)
#endif

/// Declares a class to be a lockable capability (e.g. a mutex wrapper).
#ifndef CAPABILITY
#define CAPABILITY(x) INSIGHT_THREAD_ANNOTATION_(capability(x))
#endif

/// Declares an RAII class that acquires a capability at construction and
/// releases it at destruction.
#ifndef SCOPED_CAPABILITY
#define SCOPED_CAPABILITY INSIGHT_THREAD_ANNOTATION_(scoped_lockable)
#endif

/// The field or variable is protected by the given capability; it may only
/// be read or written while the capability is held.
#ifndef GUARDED_BY
#define GUARDED_BY(x) INSIGHT_THREAD_ANNOTATION_(guarded_by(x))
#endif

/// The pointed-to data (not the pointer itself) is protected by the given
/// capability.
#ifndef PT_GUARDED_BY
#define PT_GUARDED_BY(x) INSIGHT_THREAD_ANNOTATION_(pt_guarded_by(x))
#endif

/// The function may only be called while holding the given capabilities;
/// they are neither acquired nor released by the call.
#ifndef REQUIRES
#define REQUIRES(...) \
  INSIGHT_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#endif

/// The function acquires the given capabilities and holds them on return.
#ifndef ACQUIRE
#define ACQUIRE(...) \
  INSIGHT_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#endif

/// The function releases the given capabilities; they must be held on entry.
#ifndef RELEASE
#define RELEASE(...) \
  INSIGHT_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#endif

/// The function attempts to acquire the capability and returns the given
/// boolean value on success.
#ifndef TRY_ACQUIRE
#define TRY_ACQUIRE(...) \
  INSIGHT_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
#endif

/// The caller must NOT hold the given capabilities (anti-deadlock: the
/// function acquires them itself, or would deadlock/invert the hierarchy).
#ifndef EXCLUDES
#define EXCLUDES(...) \
  INSIGHT_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
#endif

/// Documents the lock hierarchy: this capability must be acquired after the
/// listed ones.
#ifndef ACQUIRED_AFTER
#define ACQUIRED_AFTER(...) \
  INSIGHT_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))
#endif

/// Documents the lock hierarchy: this capability must be acquired before the
/// listed ones.
#ifndef ACQUIRED_BEFORE
#define ACQUIRED_BEFORE(...) \
  INSIGHT_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#endif

/// Runtime assertion that the capability is held (informs the static
/// analysis without acquiring anything).
#ifndef ASSERT_CAPABILITY
#define ASSERT_CAPABILITY(x) INSIGHT_THREAD_ANNOTATION_(assert_capability(x))
#endif

/// The function returns a reference to the given capability.
#ifndef RETURN_CAPABILITY
#define RETURN_CAPABILITY(x) INSIGHT_THREAD_ANNOTATION_(lock_returned(x))
#endif

/// Escape hatch: disables analysis for one function. Requires a written
/// justification at the use site (tools/lint.py checks for one).
#ifndef NO_THREAD_SAFETY_ANALYSIS
#define NO_THREAD_SAFETY_ANALYSIS \
  INSIGHT_THREAD_ANNOTATION_(no_thread_safety_analysis)
#endif

#endif  // INSIGHT_COMMON_THREAD_ANNOTATIONS_H_
