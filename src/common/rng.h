#ifndef INSIGHT_COMMON_RNG_H_
#define INSIGHT_COMMON_RNG_H_

#include <cmath>
#include <cstdint>

namespace insight {

/// Deterministic splitmix64-based random generator. Every stochastic component
/// in the library takes an explicit seed so experiments are reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) : state_(seed) {}

  /// Next raw 64-bit value.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

  /// Uniform integer in [0, n). n must be > 0.
  uint64_t NextUint(uint64_t n) { return Next() % n; }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(NextUint(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Standard normal via Box-Muller (one value per call; the pair's second
  /// value is cached).
  double Gaussian() {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    double u1 = NextDouble();
    double u2 = NextDouble();
    while (u1 <= 1e-12) u1 = NextDouble();
    double r = std::sqrt(-2.0 * std::log(u1));
    double theta = 2.0 * 3.14159265358979323846 * u2;
    cached_ = r * std::sin(theta);
    has_cached_ = true;
    return r * std::cos(theta);
  }

  /// Normal with explicit mean and standard deviation.
  double Gaussian(double mean, double stdev) { return mean + stdev * Gaussian(); }

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  uint64_t state_;
  bool has_cached_ = false;
  double cached_ = 0.0;
};

}  // namespace insight

#endif  // INSIGHT_COMMON_RNG_H_
