#ifndef INSIGHT_COMMON_STRINGS_H_
#define INSIGHT_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace insight {

/// Splits `input` on `delim`; empty fields are preserved.
std::vector<std::string> Split(std::string_view input, char delim);

/// Splits on runs of ASCII whitespace; empty fields are dropped.
std::vector<std::string> SplitWhitespace(std::string_view input);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view input);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// ASCII lower-casing (locale independent).
std::string ToLower(std::string_view input);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Strict numeric parsers: the whole (trimmed) string must be consumed.
Result<double> ParseDouble(std::string_view s);
Result<long long> ParseInt(std::string_view s);
Result<bool> ParseBool(std::string_view s);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace insight

#endif  // INSIGHT_COMMON_STRINGS_H_
