#ifndef INSIGHT_COMMON_THREAD_POOL_H_
#define INSIGHT_COMMON_THREAD_POOL_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace insight {

/// Fixed-size worker pool used by the MapReduce layer to run map/reduce tasks
/// in parallel. Tasks are plain std::function<void()>; completion is observed
/// via Wait() which drains the queue and all in-flight work.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Must not be called after Shutdown().
  void Submit(std::function<void()> task) EXCLUDES(mutex_);

  /// Blocks until the queue is empty and no task is running.
  void Wait() EXCLUDES(mutex_);

  /// Stops accepting work and joins all threads. Idempotent; also called by
  /// the destructor.
  void Shutdown() EXCLUDES(mutex_);

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop() EXCLUDES(mutex_);

  Mutex mutex_{TMS_LOCK_RANK(85)};
  CondVar work_available_;
  CondVar all_done_;
  std::deque<std::function<void()>> queue_ GUARDED_BY(mutex_);
  /// Written only by the constructor, before any concurrent access.
  std::vector<std::thread> threads_;
  size_t in_flight_ GUARDED_BY(mutex_) = 0;
  bool shutdown_ GUARDED_BY(mutex_) = false;
};

}  // namespace insight

#endif  // INSIGHT_COMMON_THREAD_POOL_H_
