#ifndef INSIGHT_COMMON_THREAD_POOL_H_
#define INSIGHT_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace insight {

/// Fixed-size worker pool used by the MapReduce layer to run map/reduce tasks
/// in parallel. Tasks are plain std::function<void()>; completion is observed
/// via Wait() which drains the queue and all in-flight work.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Must not be called after Shutdown().
  void Submit(std::function<void()> task);

  /// Blocks until the queue is empty and no task is running.
  void Wait();

  /// Stops accepting work and joins all threads. Idempotent; also called by
  /// the destructor.
  void Shutdown();

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
};

}  // namespace insight

#endif  // INSIGHT_COMMON_THREAD_POOL_H_
