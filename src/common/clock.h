#ifndef INSIGHT_COMMON_CLOCK_H_
#define INSIGHT_COMMON_CLOCK_H_

#include <chrono>
#include <cstdint>

namespace insight {

/// Microseconds since an arbitrary epoch. All latencies in the library are in
/// microseconds; evaluation output converts to msec to match the paper.
using MicrosT = int64_t;

/// Abstract time source. The multithreaded LocalRuntime uses the system
/// clock; the discrete-event simulator supplies virtual time so cluster
/// experiments are deterministic.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual MicrosT NowMicros() const = 0;
};

/// Monotonic wall clock.
class SystemClock : public Clock {
 public:
  MicrosT NowMicros() const override {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }
  /// Shared process-wide instance.
  static const SystemClock* Get();
};

/// Manually advanced clock for simulation and tests.
class ManualClock : public Clock {
 public:
  explicit ManualClock(MicrosT start = 0) : now_(start) {}
  MicrosT NowMicros() const override { return now_; }
  void Advance(MicrosT delta) { now_ += delta; }
  void Set(MicrosT t) { now_ = t; }

 private:
  MicrosT now_;
};

}  // namespace insight

#endif  // INSIGHT_COMMON_CLOCK_H_
