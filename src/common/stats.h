#ifndef INSIGHT_COMMON_STATS_H_
#define INSIGHT_COMMON_STATS_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace insight {

/// Numerically stable streaming mean / variance (Welford). Used by the batch
/// statistics job and by the metrics collectors.
class RunningStats {
 public:
  void Add(double x) {
    ++count_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = count_ == 1 ? x : std::min(min_, x);
    max_ = count_ == 1 ? x : std::max(max_, x);
  }

  /// Merges another accumulator (parallel/Chan variant). Enables combiners in
  /// the MapReduce layer.
  void Merge(const RunningStats& other) {
    if (other.count_ == 0) return;
    if (count_ == 0) {
      *this = other;
      return;
    }
    double delta = other.mean_ - mean_;
    size_t total = count_ + other.count_;
    mean_ += delta * static_cast<double>(other.count_) / static_cast<double>(total);
    m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                           static_cast<double>(other.count_) /
                           static_cast<double>(total);
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    count_ = total;
  }

  size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  /// Population variance; 0 for fewer than 2 samples.
  double variance() const {
    return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_);
  }
  double stdev() const { return std::sqrt(variance()); }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Simple percentile helper over a captured sample (copies and sorts).
inline double Percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  double rank = p / 100.0 * static_cast<double>(samples.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, samples.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

}  // namespace insight

#endif  // INSIGHT_COMMON_STATS_H_
