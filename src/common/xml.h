#ifndef INSIGHT_COMMON_XML_H_
#define INSIGHT_COMMON_XML_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace insight {

/// A node in a parsed XML document. The topology description files users
/// submit (Section 3.2: "Users in our framework complete an XML file that
/// includes the description of the submitted topology along with the Esper
/// rules") are parsed with this minimal, dependency-free parser.
///
/// Supported subset: elements, attributes (single or double quoted), text
/// content, comments, XML declaration, CDATA. Not supported: DTDs, processing
/// instructions, namespaces-aware resolution (prefixes are kept verbatim).
struct XmlNode {
  std::string name;
  std::map<std::string, std::string> attributes;
  std::vector<std::unique_ptr<XmlNode>> children;
  /// Concatenated text content directly inside this element (trimmed).
  std::string text;

  /// First child with the given element name, or nullptr.
  const XmlNode* FirstChild(const std::string& child_name) const;
  /// All children with the given element name.
  std::vector<const XmlNode*> Children(const std::string& child_name) const;
  /// Attribute value, or `fallback` when absent.
  std::string Attr(const std::string& key, const std::string& fallback = "") const;
  bool HasAttr(const std::string& key) const;
  /// Text of the first child with that name, or `fallback`.
  std::string ChildText(const std::string& child_name,
                        const std::string& fallback = "") const;
};

/// Parses an XML document; returns the root element.
Result<std::unique_ptr<XmlNode>> ParseXml(const std::string& input);

}  // namespace insight

#endif  // INSIGHT_COMMON_XML_H_
