#ifndef INSIGHT_COMMON_CSV_H_
#define INSIGHT_COMMON_CSV_H_

#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "common/status.h"

namespace insight {

/// RFC-4180-ish CSV: comma separated, double-quote quoting with "" escapes.
/// The bus traces the system ingests are stored as CSV files (Section 4.3.2:
/// "the traces are stored in csv files so we use this spout for reading").
class CsvReader {
 public:
  /// Reads from a caller-owned stream; the stream must outlive the reader.
  explicit CsvReader(std::istream* in) : in_(in) {}

  /// Reads the next record into *fields. Returns false at end of input.
  /// Malformed quoting yields a ParseError through `last_status()`.
  bool Next(std::vector<std::string>* fields);

  const Status& last_status() const { return status_; }
  size_t line_number() const { return line_; }

 private:
  std::istream* in_;
  Status status_;
  size_t line_ = 0;
};

/// Writes records with minimal quoting (only when a field contains a comma,
/// quote, or newline).
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream* out) : out_(out) {}
  void Write(const std::vector<std::string>& fields);

 private:
  std::ostream* out_;
};

/// Parses one CSV line (no embedded newlines) into fields.
Result<std::vector<std::string>> ParseCsvLine(const std::string& line);

}  // namespace insight

#endif  // INSIGHT_COMMON_CSV_H_
