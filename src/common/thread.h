#ifndef INSIGHT_COMMON_THREAD_H_
#define INSIGHT_COMMON_THREAD_H_

#include <thread>
#include <utility>

#include "common/check.h"

namespace insight {

/// The sanctioned thread-spawn wrapper: a thin shim over std::thread with
/// the same join/joinable surface. tools/lint.py bans raw std::thread
/// construction outside src/common/ and src/dist/ (the supervisor spawns
/// worker *processes*) so every long-lived thread in the system is born
/// through one auditable doorway — the static analyzer and the reviewers
/// reason about "which threads exist" by grepping two directories.
///
/// Deliberately minimal: no detach (a detached thread outliving its state
/// is how shutdown races start — every insight thread is joined), and
/// destruction of a still-joinable Thread aborts with a message instead of
/// std::terminate's silent stack.
class Thread {
 public:
  Thread() noexcept = default;

  template <typename Fn, typename... Args>
  explicit Thread(Fn&& fn, Args&&... args)
      : thread_(std::forward<Fn>(fn), std::forward<Args>(args)...) {}

  Thread(Thread&& other) noexcept = default;
  Thread& operator=(Thread&& other) {
    TMS_CHECK(!joinable())
        << "assigning over a running Thread; join it first";
    thread_ = std::move(other.thread_);
    return *this;
  }

  Thread(const Thread&) = delete;
  Thread& operator=(const Thread&) = delete;

  ~Thread() {
    TMS_CHECK(!joinable())
        << "Thread destroyed while joinable; join it first";
  }

  bool joinable() const { return thread_.joinable(); }
  void join() { thread_.join(); }
  std::thread::id get_id() const { return thread_.get_id(); }

 private:
  std::thread thread_;
};

}  // namespace insight

#endif  // INSIGHT_COMMON_THREAD_H_
