#include "common/clock.h"

namespace insight {

const SystemClock* SystemClock::Get() {
  static SystemClock clock;
  return &clock;
}

}  // namespace insight
