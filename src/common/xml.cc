#include "common/xml.h"

#include "common/strings.h"

namespace insight {

const XmlNode* XmlNode::FirstChild(const std::string& child_name) const {
  for (const auto& c : children) {
    if (c->name == child_name) return c.get();
  }
  return nullptr;
}

std::vector<const XmlNode*> XmlNode::Children(const std::string& child_name) const {
  std::vector<const XmlNode*> out;
  for (const auto& c : children) {
    if (c->name == child_name) out.push_back(c.get());
  }
  return out;
}

std::string XmlNode::Attr(const std::string& key, const std::string& fallback) const {
  auto it = attributes.find(key);
  return it == attributes.end() ? fallback : it->second;
}

bool XmlNode::HasAttr(const std::string& key) const {
  return attributes.count(key) > 0;
}

std::string XmlNode::ChildText(const std::string& child_name,
                               const std::string& fallback) const {
  const XmlNode* c = FirstChild(child_name);
  return c == nullptr ? fallback : c->text;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& input) : in_(input) {}

  Result<std::unique_ptr<XmlNode>> Parse() {
    SkipProlog();
    auto root = ParseElement();
    if (!root.ok()) return root.status();
    SkipMisc();
    if (pos_ != in_.size()) {
      return Err("trailing content after root element");
    }
    return root;
  }

 private:
  Status Err(const std::string& msg) const {
    size_t line = 1;
    for (size_t i = 0; i < pos_ && i < in_.size(); ++i) {
      if (in_[i] == '\n') ++line;
    }
    return Status::ParseError("xml line " + std::to_string(line) + ": " + msg);
  }

  bool Eof() const { return pos_ >= in_.size(); }
  char Peek() const { return in_[pos_]; }
  bool LookingAt(const char* s) const {
    size_t n = 0;
    while (s[n]) ++n;
    return in_.compare(pos_, n, s) == 0;
  }

  void SkipWhitespace() {
    while (!Eof() && (Peek() == ' ' || Peek() == '\t' || Peek() == '\n' ||
                      Peek() == '\r')) {
      ++pos_;
    }
  }

  bool SkipComment() {
    if (!LookingAt("<!--")) return false;
    size_t end = in_.find("-->", pos_ + 4);
    pos_ = end == std::string::npos ? in_.size() : end + 3;
    return true;
  }

  void SkipProlog() {
    SkipWhitespace();
    if (LookingAt("<?xml")) {
      size_t end = in_.find("?>", pos_);
      pos_ = end == std::string::npos ? in_.size() : end + 2;
    }
    SkipMisc();
  }

  void SkipMisc() {
    while (true) {
      SkipWhitespace();
      if (!SkipComment()) break;
    }
  }

  static bool IsNameChar(char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
           (c >= '0' && c <= '9') || c == '_' || c == '-' || c == '.' || c == ':';
  }

  std::string ParseName() {
    size_t start = pos_;
    while (!Eof() && IsNameChar(Peek())) ++pos_;
    return in_.substr(start, pos_ - start);
  }

  static std::string DecodeEntities(std::string_view raw) {
    std::string out;
    out.reserve(raw.size());
    size_t i = 0;
    while (i < raw.size()) {
      if (raw[i] == '&') {
        if (raw.compare(i, 4, "&lt;") == 0) {
          out.push_back('<');
          i += 4;
          continue;
        }
        if (raw.compare(i, 4, "&gt;") == 0) {
          out.push_back('>');
          i += 4;
          continue;
        }
        if (raw.compare(i, 5, "&amp;") == 0) {
          out.push_back('&');
          i += 5;
          continue;
        }
        if (raw.compare(i, 6, "&quot;") == 0) {
          out.push_back('"');
          i += 6;
          continue;
        }
        if (raw.compare(i, 6, "&apos;") == 0) {
          out.push_back('\'');
          i += 6;
          continue;
        }
      }
      out.push_back(raw[i]);
      ++i;
    }
    return out;
  }

  Status ParseAttributes(XmlNode* node) {
    while (true) {
      SkipWhitespace();
      if (Eof()) return Err("unexpected end inside tag");
      if (Peek() == '>' || Peek() == '/' || Peek() == '?') return Status::OK();
      std::string key = ParseName();
      if (key.empty()) return Err("expected attribute name");
      SkipWhitespace();
      if (Eof() || Peek() != '=') return Err("expected '=' after attribute name");
      ++pos_;
      SkipWhitespace();
      if (Eof() || (Peek() != '"' && Peek() != '\'')) {
        return Err("expected quoted attribute value");
      }
      char quote = Peek();
      ++pos_;
      size_t start = pos_;
      while (!Eof() && Peek() != quote) ++pos_;
      if (Eof()) return Err("unterminated attribute value");
      node->attributes[key] = DecodeEntities(in_.substr(start, pos_ - start));
      ++pos_;
    }
  }

  Result<std::unique_ptr<XmlNode>> ParseElement() {
    if (Eof() || Peek() != '<') return Err("expected '<'");
    ++pos_;
    auto node = std::make_unique<XmlNode>();
    node->name = ParseName();
    if (node->name.empty()) return Err("expected element name");
    INSIGHT_RETURN_NOT_OK(ParseAttributes(node.get()));
    if (LookingAt("/>")) {
      pos_ += 2;
      return node;
    }
    if (Eof() || Peek() != '>') return Err("expected '>'");
    ++pos_;
    std::string text;
    while (true) {
      if (Eof()) return Err("unterminated element <" + node->name + ">");
      if (LookingAt("<![CDATA[")) {
        size_t end = in_.find("]]>", pos_ + 9);
        if (end == std::string::npos) return Err("unterminated CDATA");
        text += in_.substr(pos_ + 9, end - (pos_ + 9));
        pos_ = end + 3;
        continue;
      }
      if (SkipComment()) continue;
      if (LookingAt("</")) {
        pos_ += 2;
        std::string close = ParseName();
        if (close != node->name) {
          return Err("mismatched close tag </" + close + "> for <" + node->name +
                     ">");
        }
        SkipWhitespace();
        if (Eof() || Peek() != '>') return Err("expected '>' in close tag");
        ++pos_;
        node->text = std::string(Trim(text));
        return node;
      }
      if (Peek() == '<') {
        auto child = ParseElement();
        if (!child.ok()) return child.status();
        node->children.push_back(std::move(child).value());
        continue;
      }
      size_t start = pos_;
      while (!Eof() && Peek() != '<') ++pos_;
      text += DecodeEntities(in_.substr(start, pos_ - start));
    }
  }

  const std::string& in_;
  size_t pos_ = 0;
};

}  // namespace

Result<std::unique_ptr<XmlNode>> ParseXml(const std::string& input) {
  return Parser(input).Parse();
}

}  // namespace insight
