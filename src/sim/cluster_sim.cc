#include "sim/cluster_sim.h"

#include <deque>
#include <queue>

#include "common/strings.h"

namespace insight {
namespace sim {

ClusterSimulation::ClusterSimulation(Config config,
                                     std::vector<EngineSpec> engines)
    : config_(std::move(config)), engines_(std::move(engines)) {}

Status ClusterSimulation::Validate() const {
  if (config_.node_cores.empty()) {
    return Status::InvalidArgument("at least one node required");
  }
  for (int cores : config_.node_cores) {
    if (cores <= 0) return Status::InvalidArgument("node cores must be positive");
  }
  if (engines_.empty()) {
    return Status::InvalidArgument("at least one engine required");
  }
  for (const EngineSpec& e : engines_) {
    if (e.node < 0 || e.node >= static_cast<int>(config_.node_cores.size())) {
      return Status::OutOfRange("engine node " + std::to_string(e.node) +
                                " out of range");
    }
    if (e.service_micros <= 0) {
      return Status::InvalidArgument("engine service time must be positive");
    }
  }
  if (config_.source_node < 0 ||
      config_.source_node >= static_cast<int>(config_.node_cores.size())) {
    return Status::OutOfRange("source node out of range");
  }
  if (config_.duration_micros <= 0) {
    return Status::InvalidArgument("duration must be positive");
  }
  return Status::OK();
}

namespace {

enum class EventKind { kArrivalSpawn, kTupleArrive, kServiceDone };

struct SimEvent {
  double time = 0.0;
  EventKind kind = EventKind::kTupleArrive;
  uint64_t seq = 0;  // tie-break for determinism
  int engine = -1;
  double enqueue_time = 0.0;  // kTupleArrive: copy creation time
  double service_scale = 1.0;

  bool operator>(const SimEvent& other) const {
    if (time != other.time) return time > other.time;
    return seq > other.seq;
  }
};

struct QueuedCopy {
  double enqueue_time = 0.0;
  double service_scale = 1.0;
};

struct EngineState {
  std::deque<QueuedCopy> queue;  // waiting copies
  bool serving = false;
  double current_service = 0.0;  // duration of the in-flight service
  uint64_t arrivals = 0;
  uint64_t processed = 0;
  double sojourn_sum = 0.0;
  double service_sum = 0.0;
  uint64_t max_queue = 0;
};

struct NodeState {
  int cores = 1;
  int busy = 0;  // engines currently serving on this node
};

}  // namespace

Result<ClusterSimulation::RunResult> ClusterSimulation::Run(
    double tuples_per_second, const Router& router) const {
  return Run(tuples_per_second,
             RouterEx([&router](uint64_t index, std::vector<Target>* targets) {
               std::vector<int> engines;
               router(index, &engines);
               for (int e : engines) targets->push_back({e, 1.0});
             }));
}

Result<ClusterSimulation::RunResult> ClusterSimulation::Run(
    double tuples_per_second, const RouterEx& router) const {
  INSIGHT_RETURN_NOT_OK(Validate());
  if (tuples_per_second <= 0) {
    return Status::InvalidArgument("arrival rate must be positive");
  }

  const double horizon = static_cast<double>(config_.duration_micros);
  const double inter_arrival = 1e6 / tuples_per_second;

  std::priority_queue<SimEvent, std::vector<SimEvent>, std::greater<SimEvent>>
      events;
  uint64_t seq = 0;
  auto push = [&](double time, EventKind kind, int engine, double enqueue_time,
                  double service_scale = 1.0) {
    events.push(SimEvent{time, kind, seq++, engine, enqueue_time, service_scale});
  };

  std::vector<EngineState> engine_state(engines_.size());
  std::vector<NodeState> node_state(config_.node_cores.size());
  for (size_t n = 0; n < node_state.size(); ++n) {
    node_state[n].cores = config_.node_cores[n];
  }

  RunResult result;
  result.engines.resize(engines_.size());

  // Starts service on `engine` if it has queued work and is idle. Processor
  // sharing: a service started while busy engines exceed the node's cores is
  // stretched by busy/cores (approximation: the factor is fixed at start).
  auto try_start = [&](int engine, double now) {
    EngineState& es = engine_state[static_cast<size_t>(engine)];
    NodeState& ns = node_state[static_cast<size_t>(
        engines_[static_cast<size_t>(engine)].node)];
    if (es.serving || es.queue.empty()) return;
    ++ns.busy;
    es.serving = true;
    double stretch =
        std::max(1.0, static_cast<double>(ns.busy) / static_cast<double>(ns.cores));
    const QueuedCopy& copy = es.queue.front();
    double work = engines_[static_cast<size_t>(engine)].service_micros *
                      copy.service_scale +
                  config_.deserialization_micros;
    es.current_service = work * stretch;
    push(now + es.current_service, EventKind::kServiceDone, engine,
         copy.enqueue_time);
    es.queue.pop_front();
  };

  uint64_t tuple_index = 0;
  std::vector<Target> targets;
  push(0.0, EventKind::kArrivalSpawn, -1, 0.0);

  while (!events.empty()) {
    SimEvent ev = events.top();
    events.pop();
    if (ev.time > horizon) break;
    double now = ev.time;

    switch (ev.kind) {
      case EventKind::kArrivalSpawn: {
        ++result.tuples_offered;
        targets.clear();
        router(tuple_index, &targets);
        ++tuple_index;
        double copy_cost = targets.size() > 1 ? config_.serialization_micros : 0.0;
        for (size_t k = 0; k < targets.size(); ++k) {
          int engine = targets[k].engine;
          if (engine < 0 || engine >= static_cast<int>(engines_.size())) continue;
          double delivery = now + copy_cost * static_cast<double>(k);
          if (engines_[static_cast<size_t>(engine)].node != config_.source_node) {
            delivery += config_.network_latency_micros;
          }
          ++result.copies_transmitted;
          push(delivery, EventKind::kTupleArrive, engine, delivery,
               targets[k].service_scale);
        }
        push(now + inter_arrival, EventKind::kArrivalSpawn, -1, 0.0);
        break;
      }
      case EventKind::kTupleArrive: {
        EngineState& es = engine_state[static_cast<size_t>(ev.engine)];
        ++es.arrivals;
        es.queue.push_back({ev.enqueue_time, ev.service_scale});
        es.max_queue = std::max(es.max_queue, static_cast<uint64_t>(es.queue.size()));
        try_start(ev.engine, now);
        break;
      }
      case EventKind::kServiceDone: {
        EngineState& es = engine_state[static_cast<size_t>(ev.engine)];
        NodeState& ns = node_state[static_cast<size_t>(
            engines_[static_cast<size_t>(ev.engine)].node)];
        es.serving = false;
        ++es.processed;
        es.sojourn_sum += now - ev.enqueue_time;
        es.service_sum += es.current_service;
        --ns.busy;
        try_start(ev.engine, now);
        break;
      }
    }
  }

  double sojourn_total = 0.0;
  double service_total = 0.0;
  for (size_t e = 0; e < engines_.size(); ++e) {
    const EngineState& es = engine_state[e];
    EngineStats& stats = result.engines[e];
    stats.arrivals = es.arrivals;
    stats.processed = es.processed;
    stats.max_queue = es.max_queue;
    if (es.processed > 0) {
      stats.avg_sojourn_micros = es.sojourn_sum / static_cast<double>(es.processed);
      stats.avg_service_micros = es.service_sum / static_cast<double>(es.processed);
    }
    result.copies_processed += es.processed;
    sojourn_total += es.sojourn_sum;
    service_total += es.service_sum;
  }
  if (result.copies_processed > 0) {
    result.avg_latency_micros =
        sojourn_total / static_cast<double>(result.copies_processed);
    result.avg_processing_micros =
        service_total / static_cast<double>(result.copies_processed);
  }
  result.throughput_per_40s = static_cast<double>(result.copies_processed) *
                              40e6 / static_cast<double>(config_.duration_micros);
  return result;
}

std::vector<ClusterSimulation::EngineSpec> SpreadEngines(
    int num_engines, int num_nodes, const std::vector<double>& service_micros) {
  std::vector<ClusterSimulation::EngineSpec> out;
  out.reserve(static_cast<size_t>(num_engines));
  for (int e = 0; e < num_engines; ++e) {
    ClusterSimulation::EngineSpec spec;
    spec.node = e % std::max(1, num_nodes);
    spec.service_micros = service_micros.empty()
                              ? 10.0
                              : service_micros[static_cast<size_t>(e) %
                                               service_micros.size()];
    out.push_back(spec);
  }
  return out;
}

}  // namespace sim
}  // namespace insight
