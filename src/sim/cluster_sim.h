#ifndef INSIGHT_SIM_CLUSTER_SIM_H_
#define INSIGHT_SIM_CLUSTER_SIM_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/status.h"

namespace insight {
namespace sim {

/// Discrete-event simulation of the paper's evaluation cluster: VMs with one
/// CPU each running Esper-engine tasks. It substitutes for hardware we do
/// not have (7 VMs on three hosts) while reproducing the two effects the
/// paper measures:
///
///  * CPU oversubscription — engines on a node share its cores, so placing
///    more engines than cores inflates latency sharply (Figures 16/17);
///  * inter-node traffic — tuples crossing nodes pay network latency and
///    duplicate transmissions (the all-grouping penalty of Figures 11-13).
///
/// Engines are single-threaded servers with FIFO queues (an Esper engine
/// processes events serially); a node's cores are the shared resource under
/// processor sharing: when more engines than cores are serving on a node,
/// every in-flight service stretches by busy/cores — the preemptive
/// timeslicing a real OS gives oversubscribed executor threads.
class ClusterSimulation {
 public:
  struct Config {
    /// cores per node; size = number of nodes (paper: 1 core per VM).
    std::vector<int> node_cores;
    /// One-way latency a tuple pays when its target engine lives on a
    /// different node than its source.
    double network_latency_micros = 500.0;
    /// Per-copy serialization cost charged when a tuple is replicated to
    /// multiple engines (all-grouping).
    double serialization_micros = 2.0;
    /// Per-copy deserialization cost charged on the receiving engine (Storm
    /// executors deserialize their input tuples); re-transmission schemes pay
    /// it once per copy.
    double deserialization_micros = 0.0;
    /// Node hosting the splitter (tuples originate here).
    int source_node = 0;
    /// Simulated time horizon; arrivals stop here and the run ends.
    MicrosT duration_micros = 10'000'000;
  };

  struct EngineSpec {
    int node = 0;
    /// Per-tuple service time of this engine (model- or measurement-
    /// derived).
    double service_micros = 10.0;
  };

  /// Maps a tuple index to the engine(s) it is transmitted to. The rule
  /// partitioning schemes of Section 4.2.1 are expressed as routers.
  using Router = std::function<void(uint64_t tuple_index,
                                    std::vector<int>* target_engines)>;

  /// Extended routing: each copy may scale the target engine's service time.
  /// The all-grouping baseline of Section 5.3 replicates tuples to every
  /// engine, but engines not owning the tuple's region only pay a cheap
  /// filter cost — expressed as a service_scale < 1.
  struct Target {
    int engine = 0;
    double service_scale = 1.0;
  };
  using RouterEx =
      std::function<void(uint64_t tuple_index, std::vector<Target>* targets)>;

  struct EngineStats {
    uint64_t arrivals = 0;
    uint64_t processed = 0;
    double avg_sojourn_micros = 0.0;  // queueing + service, completed tuples
    double avg_service_micros = 0.0;  // service incl. timesharing stretch
    uint64_t max_queue = 0;
  };

  struct RunResult {
    uint64_t tuples_offered = 0;       // spout emissions
    uint64_t copies_transmitted = 0;   // after routing fan-out
    uint64_t copies_processed = 0;
    double avg_latency_micros = 0.0;   // avg sojourn over processed copies
    /// Average per-tuple processing time (service stretched by co-location,
    /// no queueing) — the paper's "latency to process a single input tuple".
    double avg_processing_micros = 0.0;
    /// Tuples fully processed per 40 s of simulated time (the paper's
    /// throughput metric).
    double throughput_per_40s = 0.0;
    std::vector<EngineStats> engines;
  };

  ClusterSimulation(Config config, std::vector<EngineSpec> engines);

  /// Validates the setup (engine nodes in range, positive rates).
  Status Validate() const;

  /// Runs tuples arriving uniformly at `tuples_per_second` through the
  /// router until the horizon.
  Result<RunResult> Run(double tuples_per_second, const Router& router) const;
  Result<RunResult> Run(double tuples_per_second, const RouterEx& router) const;

  const Config& config() const { return config_; }
  const std::vector<EngineSpec>& engines() const { return engines_; }

 private:
  Config config_;
  std::vector<EngineSpec> engines_;
};

/// Round-robin assignment of engines to nodes (the paper allocates executors
/// so "each cluster node will be assigned with the same number of Esper
/// engines", Section 3.2).
std::vector<ClusterSimulation::EngineSpec> SpreadEngines(
    int num_engines, int num_nodes, const std::vector<double>& service_micros);

}  // namespace sim
}  // namespace insight

#endif  // INSIGHT_SIM_CLUSTER_SIM_H_
