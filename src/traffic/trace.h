#ifndef INSIGHT_TRAFFIC_TRACE_H_
#define INSIGHT_TRAFFIC_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "geo/latlon.h"

namespace insight {
namespace traffic {

/// One bus observation, matching Table 1 of the paper (timestamp, line,
/// direction, GPS position, delay, congestion, bus stop, vehicle id) plus
/// the enrichments computed by the pre-processing bolts: speed and "actual
/// delay" (the change in delay since the previous report, Section 3.1), the
/// hour / day-type used for threshold lookup, and the spatial annotations
/// added by the Area Tracker and BusStops Tracker bolts.
struct BusTrace {
  // ---- raw fields (Table 1) ----
  MicrosT timestamp = 0;          // microseconds since the day's 00:00
  int line_id = 0;
  bool direction = false;
  geo::LatLon position;
  double delay_seconds = 0.0;     // seconds behind (+) / ahead (-) of schedule
  bool congestion = false;
  int64_t reported_stop_id = -1;  // noisy id reported by the bus, -1 = moving
  int vehicle_id = 0;

  // ---- enrichments (PreProcess bolt) ----
  double speed_kmh = 0.0;
  double actual_delay = 0.0;      // delay delta vs previous report
  int hour = 0;                   // 0-23 local hour
  std::string date_type = "weekday";  // "weekday" | "weekend"

  // ---- spatial annotations (Area Tracker / BusStops Tracker bolts) ----
  int64_t area_leaf = -1;         // quadtree leaf region id
  int64_t bus_stop = -1;          // canonical bus stop id

  /// CSV round trip. Raw+enriched format, 15 columns; see column constants.
  std::vector<std::string> ToCsvRow() const;
  static Result<BusTrace> FromCsvRow(const std::vector<std::string>& row);

  std::string ToString() const;
};

/// Column indexes of the enriched CSV format (the records the system stores
/// to the DFS for the statistics job).
struct TraceCsv {
  static constexpr int kTimestamp = 0;
  static constexpr int kLine = 1;
  static constexpr int kDirection = 2;
  static constexpr int kLon = 3;
  static constexpr int kLat = 4;
  static constexpr int kDelay = 5;
  static constexpr int kCongestion = 6;
  static constexpr int kReportedStop = 7;
  static constexpr int kVehicle = 8;
  static constexpr int kSpeed = 9;
  static constexpr int kActualDelay = 10;
  static constexpr int kHour = 11;
  static constexpr int kDateType = 12;
  static constexpr int kAreaLeaf = 13;
  static constexpr int kBusStop = 14;
  static constexpr int kNumColumns = 15;
};

/// The attribute names of Table 6 as used in rules and statistics tables.
inline constexpr const char* kAttrDelay = "delay";
inline constexpr const char* kAttrActualDelay = "actual_delay";
inline constexpr const char* kAttrSpeed = "speed";
inline constexpr const char* kAttrCongestion = "congestion";

}  // namespace traffic
}  // namespace insight

#endif  // INSIGHT_TRAFFIC_TRACE_H_
