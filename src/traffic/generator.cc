#include "traffic/generator.h"

#include <algorithm>
#include <cmath>

#include "common/csv.h"
#include "common/logging.h"
#include "geo/quadtree.h"

namespace insight {
namespace traffic {

namespace {
constexpr double kMicrosPerHour = 3600.0 * 1e6;
}

TraceGenerator::TraceGenerator(const Options& options)
    : options_(options), rng_(options.seed), centre_{53.3498, -6.2603} {
  INSIGHT_CHECK(options_.num_lines > 0 && options_.num_buses > 0);
  INSIGHT_CHECK(options_.end_hour > options_.start_hour);
  BuildLines();
  end_time_ = static_cast<MicrosT>(options_.end_hour * kMicrosPerHour);
  MicrosT start = static_cast<MicrosT>(options_.start_hour * kMicrosPerHour);
  next_incident_check_ = start;

  buses_.resize(static_cast<size_t>(options_.num_buses));
  for (int i = 0; i < options_.num_buses; ++i) {
    Bus& bus = buses_[static_cast<size_t>(i)];
    bus.vehicle_id = 33000 + i;  // DCC-style vehicle ids
    bus.line_id = i % options_.num_lines;
    bus.direction = (i / options_.num_lines) % 2 == 1;
    bus.progress = rng_.Uniform(0.0, static_cast<double>(options_.stops_per_line - 1));
    bus.delay_seconds = rng_.Gaussian(0.0, 30.0);
    bus.last_delay = bus.delay_seconds;
    // Stagger reports across the interval so timestamps are distinct.
    bus.next_report =
        start + static_cast<MicrosT>(
                    static_cast<double>(i) / options_.num_buses *
                    static_cast<double>(options_.report_interval_micros));
  }
}

void TraceGenerator::BuildLines() {
  geo::BoundingBox bounds = geo::DublinBounds();
  line_stops_.resize(static_cast<size_t>(options_.num_lines));
  for (int l = 0; l < options_.num_lines; ++l) {
    // A route from one side of the city, through near-centre, to the other
    // side, with per-stop jitter.
    double angle = rng_.Uniform(0.0, 2.0 * 3.14159265358979);
    double span_lat = (bounds.max_lat - bounds.min_lat) * 0.42;
    double span_lon = (bounds.max_lon - bounds.min_lon) * 0.42;
    geo::LatLon via{centre_.lat + rng_.Gaussian(0.0, 0.008),
                    centre_.lon + rng_.Gaussian(0.0, 0.015)};
    geo::LatLon a{via.lat + span_lat * std::sin(angle),
                  via.lon + span_lon * std::cos(angle)};
    geo::LatLon b{via.lat - span_lat * std::sin(angle),
                  via.lon - span_lon * std::cos(angle)};
    auto clamp = [&](geo::LatLon p) {
      p.lat = std::clamp(p.lat, bounds.min_lat + 1e-4, bounds.max_lat - 1e-4);
      p.lon = std::clamp(p.lon, bounds.min_lon + 1e-4, bounds.max_lon - 1e-4);
      return p;
    };
    a = clamp(a);
    b = clamp(b);
    auto& stops = line_stops_[static_cast<size_t>(l)];
    stops.reserve(static_cast<size_t>(options_.stops_per_line));
    for (int s = 0; s < options_.stops_per_line; ++s) {
      double f = static_cast<double>(s) / (options_.stops_per_line - 1);
      // Quadratic Bezier a -> via -> b bends routes through the centre.
      double u = 1.0 - f;
      geo::LatLon p{u * u * a.lat + 2 * u * f * via.lat + f * f * b.lat,
                    u * u * a.lon + 2 * u * f * via.lon + f * f * b.lon};
      p.lat += rng_.Gaussian(0.0, 0.0006);
      p.lon += rng_.Gaussian(0.0, 0.0012);
      stops.push_back(clamp(p));
    }
  }
}

const std::vector<geo::LatLon>& TraceGenerator::LineStops(int line_id) const {
  return line_stops_[static_cast<size_t>(line_id % options_.num_lines)];
}

int64_t TraceGenerator::TrueStopId(int line_id, int stop_index) const {
  return static_cast<int64_t>(line_id) * 1000 + stop_index;
}

geo::LatLon TraceGenerator::PositionOnLine(int line_id, double progress) const {
  const auto& stops = line_stops_[static_cast<size_t>(line_id)];
  double clamped =
      std::clamp(progress, 0.0, static_cast<double>(stops.size() - 1));
  size_t i = static_cast<size_t>(clamped);
  if (i + 1 >= stops.size()) return stops.back();
  double f = clamped - static_cast<double>(i);
  return {stops[i].lat * (1 - f) + stops[i + 1].lat * f,
          stops[i].lon * (1 - f) + stops[i + 1].lon * f};
}

double TraceGenerator::HourCongestion(int hour_of_day, bool weekend) {
  // Two gaussian rush-hour bumps on weekdays; a flatter midday bump on
  // weekends.
  auto bump = [](double h, double centre, double width, double height) {
    double d = (h - centre) / width;
    return height * std::exp(-0.5 * d * d);
  };
  double h = static_cast<double>(hour_of_day % 24);
  if (weekend) {
    return 0.15 + bump(h, 14.0, 3.5, 0.3);
  }
  return 0.15 + bump(h, 8.5, 1.4, 0.65) + bump(h, 17.5, 1.6, 0.7);
}

void TraceGenerator::MaybeSpawnIncident(MicrosT now) {
  // Poisson thinning at 1-minute resolution.
  while (next_incident_check_ <= now) {
    next_incident_check_ += 60'000'000;
    double p_per_minute = options_.incidents_per_hour / 60.0;
    if (!rng_.Bernoulli(p_per_minute)) continue;
    Incident incident;
    incident.start = next_incident_check_;
    incident.end = incident.start +
                   static_cast<MicrosT>(rng_.Uniform(20.0, 45.0) * 60.0 * 1e6);
    int line = static_cast<int>(rng_.NextUint(static_cast<uint64_t>(options_.num_lines)));
    double at = rng_.Uniform(0.0, static_cast<double>(options_.stops_per_line - 1));
    incident.center = PositionOnLine(line, at);
    incident.radius_meters = rng_.Uniform(500.0, 1200.0);
    incident.severity = rng_.Uniform(0.15, 0.4);
    incidents_.push_back(incident);
  }
}

double TraceGenerator::SpeedAt(const geo::LatLon& position, MicrosT now,
                               bool* congested) {
  int hour = static_cast<int>(static_cast<double>(now) / kMicrosPerHour) % 24;
  double congestion = HourCongestion(hour, options_.weekend);
  // Centre factor: within ~2.5 km of the centre traffic is slower.
  double centre_distance = geo::HaversineMeters(position, centre_);
  double centre_factor = 1.0 - 0.45 * std::exp(-centre_distance / 2500.0);
  double speed = options_.base_speed_kmh * centre_factor * (1.0 - 0.55 * congestion);
  // Active incidents dominate.
  bool in_incident = false;
  for (const Incident& incident : incidents_) {
    if (now < incident.start || now > incident.end) continue;
    if (geo::HaversineMeters(position, incident.center) <= incident.radius_meters) {
      speed *= incident.severity;
      in_incident = true;
      break;
    }
  }
  speed = std::max(1.0, speed + rng_.Gaussian(0.0, 2.5));
  *congested = in_incident || speed < 7.0;
  return speed;
}

bool TraceGenerator::Next(BusTrace* trace) {
  if (schedule_.empty()) {
    for (size_t i = 0; i < buses_.size(); ++i) {
      schedule_.emplace(buses_[i].next_report, i);
    }
  }
  auto [best_time, best] = schedule_.top();
  if (best_time > end_time_) return false;
  schedule_.pop();
  Bus& bus = buses_[best];
  MicrosT now = bus.next_report;
  MaybeSpawnIncident(now);

  geo::LatLon position = PositionOnLine(bus.line_id, bus.progress);
  bool congested = false;
  double speed = SpeedAt(position, now, &congested);

  // Advance progress for the next report: stop spacing approximated from the
  // route geometry.
  const auto& stops = line_stops_[static_cast<size_t>(bus.line_id)];
  size_t seg = std::min(static_cast<size_t>(bus.progress), stops.size() - 2);
  double seg_meters =
      std::max(120.0, geo::HaversineMeters(stops[seg], stops[seg + 1]));
  double dt_hours = static_cast<double>(options_.report_interval_micros) / kMicrosPerHour;
  double meters_moved = speed * 1000.0 * dt_hours;
  double delta_progress = meters_moved / seg_meters;
  double direction_sign = bus.direction ? -1.0 : 1.0;
  bus.progress += direction_sign * delta_progress;
  if (bus.progress >= static_cast<double>(stops.size() - 1)) {
    bus.progress = static_cast<double>(stops.size() - 1);
    bus.direction = !bus.direction;
    bus.delay_seconds = rng_.Gaussian(0.0, 20.0);  // fresh trip
  } else if (bus.progress <= 0.0) {
    bus.progress = 0.0;
    bus.direction = !bus.direction;
    bus.delay_seconds = rng_.Gaussian(0.0, 20.0);
  }

  // Delay drift: congested conditions add delay; drivers claw back slack
  // otherwise (mean reversion).
  double expected_speed = options_.base_speed_kmh * 0.75;
  double drift = (expected_speed - speed) / expected_speed * 18.0;  // sec/report
  bus.delay_seconds += drift + rng_.Gaussian(0.0, 4.0);
  bus.delay_seconds -= 0.04 * bus.delay_seconds;  // mean reversion

  // At-stop detection: within 0.12 stop-units of an integer index.
  double nearest_stop = std::round(bus.progress);
  bool at_stop = std::fabs(bus.progress - nearest_stop) < 0.12;

  BusTrace t;
  t.timestamp = now;
  t.line_id = bus.line_id;
  t.direction = bus.direction;
  // GPS noise.
  geo::LocalProjection proj(position);
  t.position = proj.FromXY(rng_.Gaussian(0.0, options_.gps_noise_meters),
                           rng_.Gaussian(0.0, options_.gps_noise_meters));
  t.delay_seconds = bus.delay_seconds;
  t.congestion = congested;
  if (at_stop) {
    int stop_index = static_cast<int>(nearest_stop);
    int64_t id = TrueStopId(bus.line_id, stop_index);
    if (rng_.Bernoulli(options_.wrong_stop_id_rate)) {
      id += rng_.UniformInt(-2, 2);  // nearby-but-different id (noise)
    }
    t.reported_stop_id = id;
  }
  t.vehicle_id = bus.vehicle_id;
  t.speed_kmh = speed;
  t.actual_delay = bus.delay_seconds - bus.last_delay;
  t.hour = static_cast<int>(static_cast<double>(now) / kMicrosPerHour) % 24;
  t.date_type = options_.weekend ? "weekend" : "weekday";

  bus.last_delay = bus.delay_seconds;
  bus.last_position = t.position;
  bus.has_last = true;
  bus.next_report = now + options_.report_interval_micros;
  schedule_.emplace(bus.next_report, best);
  *trace = std::move(t);
  return true;
}

std::vector<BusTrace> TraceGenerator::GenerateAll(size_t max_traces) {
  std::vector<BusTrace> out;
  BusTrace trace;
  while (out.size() < max_traces && Next(&trace)) out.push_back(trace);
  return out;
}

size_t TraceGenerator::WriteCsv(std::ostream* out, size_t max_traces) {
  CsvWriter writer(out);
  BusTrace trace;
  size_t written = 0;
  while (written < max_traces && Next(&trace)) {
    writer.Write(trace.ToCsvRow());
    ++written;
  }
  return written;
}

std::vector<geo::StopReport> TraceGenerator::CollectStopReports(
    size_t max_reports) {
  std::vector<geo::StopReport> reports;
  std::map<int, geo::LatLon> last_position;  // per vehicle
  BusTrace trace;
  while (reports.size() < max_reports && Next(&trace)) {
    if (trace.reported_stop_id >= 0) {
      geo::StopReport report;
      report.position = trace.position;
      report.line_id = trace.line_id;
      report.direction = trace.direction;
      auto it = last_position.find(trace.vehicle_id);
      if (it != last_position.end()) {
        report.entry_angle_deg =
            geo::BearingDegrees(it->second, trace.position);
      } else {
        report.entry_angle_deg = trace.direction ? 270.0 : 90.0;
      }
      reports.push_back(report);
    }
    last_position[trace.vehicle_id] = trace.position;
  }
  return reports;
}

}  // namespace traffic
}  // namespace insight
