#include "traffic/bolts.h"

#include "common/bytes.h"
#include "common/csv.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/strings.h"

namespace insight {
namespace traffic {

using cep::Value;
using cep::ValueType;
using dsps::Fields;
using dsps::Tuple;

namespace {
constexpr double kMicrosPerHour = 3600.0 * 1e6;

std::vector<std::string> RawNames() {
  return {"timestamp", "line",       "direction",     "lon",    "lat",
          "delay",     "congestion", "reported_stop", "vehicle"};
}

std::vector<std::string> PreProcessedNames() {
  auto names = RawNames();
  names.insert(names.end(), {"speed", "actual_delay", "hour", "date_type"});
  return names;
}

std::vector<std::string> AreaNames(const std::vector<int>& layers) {
  auto names = PreProcessedNames();
  names.push_back("area_leaf");
  for (int layer : layers) names.push_back("area_layer" + std::to_string(layer));
  return names;
}

std::vector<std::string> EnrichedNames(const std::vector<int>& layers) {
  auto names = AreaNames(layers);
  names.push_back("bus_stop");
  return names;
}

}  // namespace

Fields RawTraceFields() { return Fields(RawNames()); }
Fields PreProcessedFields() { return Fields(PreProcessedNames()); }
Fields AreaFields(const std::vector<int>& layers) {
  return Fields(AreaNames(layers));
}
Fields EnrichedFields(const std::vector<int>& layers) {
  return Fields(EnrichedNames(layers));
}
Fields DetectionFields() {
  return Fields(
      {"rule", "attribute", "location", "value", "threshold", "timestamp"});
}

std::vector<Value> TraceToRawValues(const BusTrace& trace) {
  return {Value(trace.timestamp),
          Value(trace.line_id),
          Value(trace.direction),
          Value(trace.position.lon),
          Value(trace.position.lat),
          Value(trace.delay_seconds),
          Value(trace.congestion),
          Value(trace.reported_stop_id),
          Value(trace.vehicle_id)};
}

std::vector<Value> TraceToEnrichedValues(const BusTrace& trace) {
  std::vector<Value> values = TraceToRawValues(trace);
  values.push_back(trace.speed_kmh);
  values.push_back(trace.actual_delay);
  values.push_back(static_cast<int64_t>(trace.hour));
  values.push_back(trace.date_type);
  values.push_back(trace.area_leaf);
  values.push_back(trace.bus_stop);
  return values;
}

std::vector<cep::EventType::Field> BusEventFields(const std::vector<int>& layers) {
  std::vector<cep::EventType::Field> fields = {
      {"timestamp", ValueType::kInt},    {"line", ValueType::kInt},
      {"direction", ValueType::kBool},   {"lon", ValueType::kDouble},
      {"lat", ValueType::kDouble},       {"delay", ValueType::kDouble},
      {"congestion", ValueType::kBool},  {"reported_stop", ValueType::kInt},
      {"vehicle", ValueType::kInt},      {"speed", ValueType::kDouble},
      {"actual_delay", ValueType::kDouble}, {"hour", ValueType::kInt},
      {"date_type", ValueType::kString}, {"area_leaf", ValueType::kInt},
  };
  for (int layer : layers) {
    fields.push_back({"area_layer" + std::to_string(layer), ValueType::kInt});
  }
  fields.push_back({"bus_stop", ValueType::kInt});
  return fields;
}

std::string ThresholdEventTypeName(const std::string& attribute) {
  return "threshold_" + attribute;
}

std::vector<cep::EventType::Field> ThresholdEventFields() {
  return {{"location", ValueType::kInt},
          {"hour", ValueType::kInt},
          {"day", ValueType::kString},
          {"value", ValueType::kDouble}};
}

// ---------------------------------------------------------------------------
// BusReaderSpout
// ---------------------------------------------------------------------------

void BusReaderSpout::Open(const dsps::TaskContext& context) {
  next_ = static_cast<size_t>(context.task_index);
  stride_ = static_cast<size_t>(context.num_tasks);
}

bool BusReaderSpout::NextTuple(dsps::Collector* collector) {
  if (next_ >= traces_->size()) return false;
  const BusTrace& trace = (*traces_)[next_];
  collector->Emit(enriched_ ? TraceToEnrichedValues(trace)
                            : TraceToRawValues(trace));
  next_ += stride_;
  return next_ < traces_->size();
}

void SyntheticBusSpout::Open(const dsps::TaskContext& context) {
  next_ = static_cast<uint64_t>(context.task_index);
  stride_ = static_cast<uint64_t>(context.num_tasks);
}

bool SyntheticBusSpout::NextTuple(dsps::Collector* collector) {
  if (next_ >= num_tuples_) return false;
  // Deterministic per-index stream: the same tuple regardless of task count
  // or interleaving, so probe runs are reproducible.
  Rng rng(seed_ ^ (next_ * 0x9e3779b97f4a7c15ULL));
  uint64_t i = next_;
  BusTrace trace;
  trace.timestamp = static_cast<MicrosT>(i * 1000);
  trace.line_id = static_cast<int>(i % 67);
  trace.direction = (i & 1) == 0;
  trace.position = {53.35 + rng.Gaussian(0.0, 0.01),
                    -6.26 + rng.Gaussian(0.0, 0.01)};
  trace.delay_seconds = rng.Gaussian(90.0, 40.0);
  trace.congestion = rng.Bernoulli(0.2);
  trace.reported_stop_id = -1;
  trace.vehicle_id = static_cast<int>(i % 911);
  trace.speed_kmh = rng.Gaussian(22.0, 6.0);
  trace.actual_delay = rng.Gaussian(0.0, 5.0);
  trace.hour = static_cast<int>((i / 500) % 24);
  trace.date_type = "weekday";
  trace.area_leaf = static_cast<int64_t>(i % num_locations_);
  trace.bus_stop = trace.area_leaf;
  collector->Emit(TraceToEnrichedValues(trace));
  next_ += stride_;
  return next_ < num_tuples_;
}

Result<std::vector<BusTrace>> LoadTracesCsv(std::istream* in) {
  std::vector<BusTrace> traces;
  CsvReader reader(in);
  std::vector<std::string> row;
  while (reader.Next(&row)) {
    INSIGHT_ASSIGN_OR_RETURN(BusTrace trace, BusTrace::FromCsvRow(row));
    traces.push_back(std::move(trace));
  }
  INSIGHT_RETURN_NOT_OK(reader.last_status());
  return traces;
}

// ---------------------------------------------------------------------------
// PreProcessBolt
// ---------------------------------------------------------------------------

void PreProcessBolt::Execute(const Tuple& input, dsps::Collector* collector) {
  int vehicle = static_cast<int>(input.Get(8).AsInt());
  MicrosT timestamp = input.Get(0).AsInt();
  geo::LatLon position{input.Get(4).AsDouble(), input.Get(3).AsDouble()};
  double delay = input.Get(5).AsDouble();

  // Speed and actual delay are deltas against the vehicle's previous report;
  // the first report of a vehicle has neither, so it only seeds the state
  // (emitting a zero speed would trip the low-speed rules spuriously).
  auto it = vehicles_.find(vehicle);
  if (it == vehicles_.end() || timestamp <= it->second.timestamp) {
    vehicles_[vehicle] = {position, delay, timestamp};
    return;
  }
  double meters = geo::HaversineMeters(it->second.position, position);
  double hours =
      static_cast<double>(timestamp - it->second.timestamp) / kMicrosPerHour;
  double speed = hours > 0 ? meters / 1000.0 / hours : 0.0;
  double actual_delay = delay - it->second.delay;
  vehicles_[vehicle] = {position, delay, timestamp};

  int hour = static_cast<int>(static_cast<double>(timestamp) / kMicrosPerHour) % 24;
  std::vector<Value> out = input.values();
  out.push_back(speed);
  out.push_back(actual_delay);
  out.push_back(hour);
  out.push_back(std::string(weekend_ ? "weekend" : "weekday"));
  collector->Emit(std::move(out));
}

Status PreProcessBolt::SnapshotState(std::string* out) const {
  out->clear();
  ByteWriter writer(out);
  writer.PutU8(1);  // format version
  writer.PutU32(static_cast<uint32_t>(vehicles_.size()));
  for (const auto& [vehicle, state] : vehicles_) {
    writer.PutI64(vehicle);
    writer.PutDouble(state.position.lat);
    writer.PutDouble(state.position.lon);
    writer.PutDouble(state.delay);
    writer.PutI64(state.timestamp);
  }
  return Status::OK();
}

Status PreProcessBolt::RestoreState(const std::string& bytes) {
  vehicles_.clear();
  auto fail = [this](const char* why) {
    vehicles_.clear();  // clean state on any decode error
    return Status::ParseError(std::string("PreProcessBolt snapshot: ") + why);
  };
  ByteReader reader(bytes);
  uint8_t version = 0;
  if (!reader.GetU8(&version)) return fail("truncated header");
  if (version != 1) return fail("unsupported version");
  uint32_t count = 0;
  if (!reader.GetU32(&count)) return fail("truncated count");
  for (uint32_t i = 0; i < count; ++i) {
    int64_t vehicle = 0;
    VehicleState state;
    if (!reader.GetI64(&vehicle) || !reader.GetDouble(&state.position.lat) ||
        !reader.GetDouble(&state.position.lon) ||
        !reader.GetDouble(&state.delay) || !reader.GetI64(&state.timestamp)) {
      return fail("truncated vehicle entry");
    }
    vehicles_[static_cast<int>(vehicle)] = state;
  }
  if (!reader.exhausted()) return fail("trailing bytes");
  return Status::OK();
}

// ---------------------------------------------------------------------------
// AreaTrackerBolt
// ---------------------------------------------------------------------------

void AreaTrackerBolt::Execute(const Tuple& input, dsps::Collector* collector) {
  geo::LatLon position{input.Get(4).AsDouble(), input.Get(3).AsDouble()};
  std::vector<Value> out = input.values();
  out.push_back(static_cast<int64_t>(quadtree_->LocateLeaf(position)));
  for (int layer : layers_) {
    out.push_back(static_cast<int64_t>(quadtree_->Locate(position, layer)));
  }
  collector->Emit(std::move(out));
}

// ---------------------------------------------------------------------------
// BusStopsTrackerBolt
// ---------------------------------------------------------------------------

void BusStopsTrackerBolt::Execute(const Tuple& input,
                                  dsps::Collector* collector) {
  geo::LatLon position{input.Get(4).AsDouble(), input.Get(3).AsDouble()};
  int line = static_cast<int>(input.Get(1).AsInt());
  bool direction = input.Get(2).AsBool();
  std::vector<Value> out = input.values();
  out.push_back(index_->Locate(position, line, direction));
  collector->Emit(std::move(out));
}

// ---------------------------------------------------------------------------
// SplitterBolt
// ---------------------------------------------------------------------------

void SplitterBolt::Execute(const Tuple& input, dsps::Collector* collector) {
  targets_.clear();
  router_(input, &targets_);
  for (int task : targets_) {
    collector->EmitDirect(task, input.values());
  }
}

// ---------------------------------------------------------------------------
// EsperBolt
// ---------------------------------------------------------------------------

void EsperBolt::Prepare(const dsps::TaskContext& context) {
  task_index_ = context.task_index;
  engine_ = std::make_unique<cep::Engine>();
  INSIGHT_CHECK(engine_->RegisterEventType("bus", BusEventFields(config_->layers))
                    .ok());
  for (const char* attr :
       {kAttrDelay, kAttrActualDelay, kAttrSpeed, kAttrCongestion}) {
    // One threshold stream per attribute and per location namespace
    // (quadtree regions vs canonical bus stops).
    for (const char* suffix : {"", "_stop"}) {
      INSIGHT_CHECK(
          engine_
              ->RegisterEventType(
                  ThresholdEventTypeName(std::string(attr) + suffix),
                  ThresholdEventFields())
              .ok());
    }
  }
  bus_type_ = *engine_->GetEventType("bus");
  batch_ = std::make_unique<cep::EventBatch>(bus_type_);

  if (static_cast<size_t>(task_index_) < config_->rules_per_task.size()) {
    for (const auto& [name, epl] :
         config_->rules_per_task[static_cast<size_t>(task_index_)]) {
      auto stmt = engine_->AddStatement(epl, name);
      INSIGHT_CHECK(stmt.ok()) << "rule '" << name
                               << "' failed to compile: " << stmt.status().ToString()
                               << "\nEPL: " << epl;
      (*stmt)->AddListener([this, rule_name = name](const cep::MatchResult& m) {
        cep::MatchResult named = m;
        named.statement_name = rule_name;
        pending_matches_.push_back(std::move(named));
        // Captured at delivery time, when the engine knows which event
        // (or batch lane) fired this match.
        pending_trigger_ts_.push_back(engine_->current_trigger_timestamp());
      });
    }
  }
  if (config_->preload) config_->preload(engine_.get(), task_index_);
}

void EsperBolt::Execute(const Tuple& input, dsps::Collector* collector) {
  if (config_->before_send) {
    config_->before_send(engine_.get(), task_index_, input);
  }
  // The tuple's fields align with the bus event type by construction. Build
  // the event from pooled storage so steady-state ingestion stays off the
  // heap (the buffer's recycled capacity absorbs the value copies).
  cep::EventPool& pool = engine_->event_pool();
  std::vector<cep::Value> buffer = pool.TakeBuffer();
  const std::vector<Value>& values = input.values();
  buffer.assign(values.begin(), values.end());
  engine_->SendEvent(
      pool.Create(bus_type_, std::move(buffer), input.Get(0).AsInt()));
  EmitPending(collector);
}

void EsperBolt::ExecuteBatch(const Tuple* inputs, size_t count,
                             dsps::Collector* collector) {
  if (config_->before_send) {
    // The hook contract is "called before every individual send"; keep it by
    // degrading to the row path for the whole block.
    for (size_t i = 0; i < count; ++i) Execute(inputs[i], collector);
    return;
  }
  batch_->Clear();
  for (size_t i = 0; i < count; ++i) {
    const Tuple& input = inputs[i];
    if (!batch_->AppendRow(input.values(), input.Get(0).AsInt())) {
      // Tuple does not fit the bus schema. Flush what accumulated so far
      // (order must match per-tuple delivery), then row-path this one —
      // SendEvent applies the engine's own handling for odd events.
      if (!batch_->empty()) {
        engine_->SendBatch(*batch_);
        batch_->Clear();
        EmitPending(collector);
      }
      Execute(input, collector);
    }
  }
  if (!batch_->empty()) {
    engine_->SendBatch(*batch_);
    batch_->Clear();
    EmitPending(collector);
  }
}

void EsperBolt::EmitPending(dsps::Collector* collector) {
  for (size_t k = 0; k < pending_matches_.size(); ++k) {
    cep::MatchResult& match = pending_matches_[k];
    // Detection tuple: rule, attribute, location, value, threshold, timestamp.
    auto get_or = [&](const std::string& column, Value fallback) {
      auto v = match.Get(column);
      return v.ok() ? *v : fallback;
    };
    collector->Emit({Value(match.statement_name),
                     get_or("attribute", Value(std::string())),
                     get_or("location", Value(int64_t{-1})),
                     get_or("value", Value(0.0)),
                     get_or("threshold", Value(0.0)),
                     get_or("timestamp", Value(pending_trigger_ts_[k]))});
  }
  pending_matches_.clear();
  pending_trigger_ts_.clear();
}

Status EsperBolt::SnapshotState(std::string* out) const {
  // Listener-buffered matches never span executions (Execute drains them),
  // so the engine's retained windows and counters are the whole state.
  return engine_->Snapshot(out);
}

Status EsperBolt::RestoreState(const std::string& bytes) {
  // Prepare already installed this task's rules and preloaded the threshold
  // stream; Restore refills the statement windows on top. On error the
  // engine resets every statement to clean state, which matches the
  // Snapshottable contract.
  return engine_->Restore(bytes);
}

// ---------------------------------------------------------------------------
// EventsStorerBolt
// ---------------------------------------------------------------------------

std::vector<storage::Column> EventsStorerBolt::TableColumns() {
  return {{"rule", ValueType::kString},    {"attribute", ValueType::kString},
          {"location", ValueType::kInt},   {"value", ValueType::kDouble},
          {"threshold", ValueType::kDouble}, {"timestamp", ValueType::kInt}};
}

void EventsStorerBolt::Prepare(const dsps::TaskContext& /*context*/) {
  if (!store_->HasTable(kTableName)) {
    // Racing tasks may both attempt creation; AlreadyExists is fine.
    (void)store_->CreateTable(kTableName, TableColumns());
  }
}

void EventsStorerBolt::Execute(const Tuple& input,
                               dsps::Collector* /*collector*/) {
  storage::RowValues row(input.values().begin(), input.values().end());
  INSIGHT_CHECK(store_->Insert(kTableName, std::move(row)).ok());
}

}  // namespace traffic
}  // namespace insight
