#ifndef INSIGHT_TRAFFIC_GENERATOR_H_
#define INSIGHT_TRAFFIC_GENERATOR_H_

#include <map>
#include <optional>
#include <ostream>
#include <queue>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "geo/bus_stops.h"
#include "geo/latlon.h"
#include "traffic/trace.h"

namespace insight {
namespace traffic {

/// An injected traffic incident (ground truth for detection-quality checks).
struct Incident {
  MicrosT start = 0;
  MicrosT end = 0;
  geo::LatLon center;
  double radius_meters = 800.0;
  /// Speed multiplier inside the radius (0.2 = crawling).
  double severity = 0.2;
};

/// Synthetic Dublin bus feed reproducing the dataset of Tables 1/2: 911
/// buses on 67 lines, one report per bus every 20 seconds, service from 6 am
/// to 3 am. The real DCC dataset is not redistributable, so the generator
/// synthesizes spatially and temporally structured traffic:
///
///  * each line is a polyline of stops crossing the city centre;
///  * speed follows a time-of-day profile (rush-hour dips at 8-9 and 17-18)
///    scaled down near the centre;
///  * delay performs a mean-reverting random walk whose drift follows
///    congestion, so "normal" delay differs per area and hour — the
///    premise of the dynamic thresholds;
///  * Poisson incidents slow buses inside a radius and push delays up —
///    the anomalies the rules must detect;
///  * stop reports are noisy: GPS jitter and occasionally wrong stop ids
///    (Section 4.1.2's motivation for DENCLUE-based canonical stops).
class TraceGenerator {
 public:
  struct Options {
    int num_buses = 911;      // Table 2
    int num_lines = 67;       // Table 2
    int stops_per_line = 24;
    MicrosT report_interval_micros = 20'000'000;  // 3 tuples/min (Table 2)
    int start_hour = 6;       // 6 am (Table 2)
    int end_hour = 27;        // 3 am next day (Table 2)
    bool weekend = false;
    uint64_t seed = 42;
    /// Mean incidents spawned per simulated hour.
    double incidents_per_hour = 1.0;
    double gps_noise_meters = 12.0;
    /// Probability a stop report carries a wrong stop id.
    double wrong_stop_id_rate = 0.05;
    double base_speed_kmh = 28.0;
  };

  explicit TraceGenerator(const Options& options);

  /// Produces the next trace in timestamp order; false after end of service.
  bool Next(BusTrace* trace);

  /// Drains the remaining feed into a vector (use small Options for this).
  std::vector<BusTrace> GenerateAll(size_t max_traces = SIZE_MAX);

  /// Writes the remaining feed as CSV lines.
  size_t WriteCsv(std::ostream* out, size_t max_traces = SIZE_MAX);

  /// Stop reports usable to build a geo::BusStopIndex, derived from traces
  /// (reports with at-stop flags). Consumes from the same stream.
  std::vector<geo::StopReport> CollectStopReports(size_t max_reports);

  const Options& options() const { return options_; }
  const std::vector<Incident>& incidents() const { return incidents_; }
  /// True stop locations of a line (ground truth).
  const std::vector<geo::LatLon>& LineStops(int line_id) const;
  int64_t TrueStopId(int line_id, int stop_index) const;

  /// Congestion factor in [0,1] for an hour of day (rush hours high). Shared
  /// with tests and threshold sanity checks.
  static double HourCongestion(int hour_of_day, bool weekend);

 private:
  struct Bus {
    int vehicle_id = 0;
    int line_id = 0;
    bool direction = false;
    double progress = 0.0;  // in stop units along the line
    double delay_seconds = 0.0;
    double last_delay = 0.0;
    geo::LatLon last_position;
    MicrosT next_report = 0;
    bool has_last = false;
  };

  void BuildLines();
  void MaybeSpawnIncident(MicrosT now);
  double SpeedAt(const geo::LatLon& position, MicrosT now, bool* congested);
  geo::LatLon PositionOnLine(int line_id, double progress) const;

  Options options_;
  Rng rng_;
  std::vector<std::vector<geo::LatLon>> line_stops_;
  std::vector<Bus> buses_;
  std::vector<Incident> incidents_;
  MicrosT end_time_ = 0;
  MicrosT next_incident_check_ = 0;
  geo::LatLon centre_;
  /// (next_report, bus index) min-heap keeping emissions in timestamp order.
  std::priority_queue<std::pair<MicrosT, size_t>,
                      std::vector<std::pair<MicrosT, size_t>>,
                      std::greater<std::pair<MicrosT, size_t>>>
      schedule_;
};

}  // namespace traffic
}  // namespace insight

#endif  // INSIGHT_TRAFFIC_GENERATOR_H_
