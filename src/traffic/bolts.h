#ifndef INSIGHT_TRAFFIC_BOLTS_H_
#define INSIGHT_TRAFFIC_BOLTS_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cep/engine.h"
#include "dsps/topology.h"
#include "geo/bus_stops.h"
#include "geo/quadtree.h"
#include "storage/table_store.h"
#include "traffic/trace.h"

namespace insight {
namespace traffic {

// ---------------------------------------------------------------------------
// Tuple schemas of the Figure 8 topology, stage by stage.
// ---------------------------------------------------------------------------

/// Raw bus report fields emitted by the BusReader spout (Table 1).
dsps::Fields RawTraceFields();
/// + speed, actual_delay, hour, date_type (PreProcess bolt).
dsps::Fields PreProcessedFields();
/// + area_leaf and one area_layer<k> column per monitored quadtree layer
/// (Area Tracker bolt).
dsps::Fields AreaFields(const std::vector<int>& layers);
/// + bus_stop (BusStops Tracker bolt). This is the full enriched schema.
dsps::Fields EnrichedFields(const std::vector<int>& layers);
/// Detection output: rule, attribute, location, value, threshold, timestamp.
dsps::Fields DetectionFields();

/// Values for a raw-trace tuple.
std::vector<dsps::Value> TraceToRawValues(const BusTrace& trace);
/// Values for a fully enriched tuple (EnrichedFields({}) layout) — used to
/// replay pre-processed CSV directly into the Esper bolts.
std::vector<dsps::Value> TraceToEnrichedValues(const BusTrace& trace);

/// The CEP event type for enriched bus tuples ("bus") with one field per
/// EnrichedFields column. Registered into each Esper engine.
std::vector<cep::EventType::Field> BusEventFields(const std::vector<int>& layers);

/// Threshold stream event type name for an attribute ("threshold_delay"...).
std::string ThresholdEventTypeName(const std::string& attribute);
/// Fields of a threshold event: location, hour, day, value.
std::vector<cep::EventType::Field> ThresholdEventFields();

// ---------------------------------------------------------------------------
// Components
// ---------------------------------------------------------------------------

/// Emits bus traces from an in-memory dataset (the paper's spout reads the
/// stored CSV files; use LoadTracesCsv to produce the dataset). Traces are
/// striped across the spout's tasks. With `enriched` the spout replays
/// pre-processed traces with the full 15-field schema (skipping the
/// PreProcess/tracker bolts).
class BusReaderSpout : public dsps::Spout {
 public:
  explicit BusReaderSpout(std::shared_ptr<const std::vector<BusTrace>> traces,
                          bool enriched = false)
      : traces_(std::move(traces)), enriched_(enriched) {}

  void Open(const dsps::TaskContext& context) override;
  bool NextTuple(dsps::Collector* collector) override;

 private:
  std::shared_ptr<const std::vector<BusTrace>> traces_;
  bool enriched_;
  size_t next_ = 0;
  size_t stride_ = 1;
};

/// Parses a CSV stream of enriched trace rows.
Result<std::vector<BusTrace>> LoadTracesCsv(std::istream* in);

/// Emits synthetic enriched bus tuples (EnrichedFields({}) layout, the same
/// distributions as the bench suite's SyntheticBusEvent), cycling over
/// `num_locations` locations. Used by calibration probe topologies that need
/// a live tuple stream without a dataset — e.g. bench_fig11_allocation's
/// measured-latency runs, which fit the latency model from the monitor
/// windows such a probe produces. Tuples are striped across tasks.
class SyntheticBusSpout : public dsps::Spout {
 public:
  SyntheticBusSpout(uint64_t num_tuples, size_t num_locations,
                    uint64_t seed = 29)
      : num_tuples_(num_tuples), num_locations_(num_locations), seed_(seed) {}

  void Open(const dsps::TaskContext& context) override;
  bool NextTuple(dsps::Collector* collector) override;

 private:
  uint64_t num_tuples_;
  size_t num_locations_;
  uint64_t seed_;
  uint64_t next_ = 0;
  uint64_t stride_ = 1;
};

/// Adds vehicle speed, actual delay (delta vs the previous report of the
/// same vehicle), hour and date type. Subscribe with fields-grouping on
/// `vehicle` so one task sees all reports of a vehicle.
///
/// Snapshottable: the per-vehicle last-report map is the whole state, so a
/// restored task computes the same deltas a crash-free run would (a lost map
/// would instead swallow one report per vehicle re-seeding it).
class PreProcessBolt : public dsps::Bolt, public dsps::Snapshottable {
 public:
  explicit PreProcessBolt(bool weekend = false) : weekend_(weekend) {}
  void Execute(const dsps::Tuple& input, dsps::Collector* collector) override;

  Status SnapshotState(std::string* out) const override;
  Status RestoreState(const std::string& bytes) override;

 private:
  struct VehicleState {
    geo::LatLon position;
    double delay = 0.0;
    MicrosT timestamp = 0;
  };
  bool weekend_;
  std::map<int, VehicleState> vehicles_;
};

/// Annotates each tuple with the quadtree region ids: the leaf plus each
/// configured layer. Each task holds an instance of the region quadtree and
/// queries it ("Each task of this bolt has an instance of the Region
/// Quadtree").
class AreaTrackerBolt : public dsps::Bolt {
 public:
  AreaTrackerBolt(std::shared_ptr<const geo::RegionQuadtree> quadtree,
                  std::vector<int> layers)
      : quadtree_(std::move(quadtree)), layers_(std::move(layers)) {}
  void Execute(const dsps::Tuple& input, dsps::Collector* collector) override;

 private:
  std::shared_ptr<const geo::RegionQuadtree> quadtree_;
  std::vector<int> layers_;
};

/// Annotates each tuple with its canonical bus stop id via the DENCLUE-built
/// index (the tool of Section 4.1.2).
class BusStopsTrackerBolt : public dsps::Bolt {
 public:
  explicit BusStopsTrackerBolt(std::shared_ptr<const geo::BusStopIndex> index)
      : index_(std::move(index)) {}
  void Execute(const dsps::Tuple& input, dsps::Collector* collector) override;

 private:
  std::shared_ptr<const geo::BusStopIndex> index_;
};

/// Routes each tuple to the Esper engine task(s) owning its spatial
/// location, per the partitioning schema of Section 4.2.1. The router is
/// produced by core::RulePartitioner; subscribe the Esper bolt with direct
/// grouping.
class SplitterBolt : public dsps::Bolt {
 public:
  using Router =
      std::function<void(const dsps::Tuple& tuple, std::vector<int>* tasks)>;
  explicit SplitterBolt(Router router) : router_(std::move(router)) {}
  void Execute(const dsps::Tuple& input, dsps::Collector* collector) override;

 private:
  Router router_;
  std::vector<int> targets_;
};

/// Configuration shared by every Esper bolt task: each task runs its own
/// cep::Engine with its own rule subset (Section 3.2: more tasks => more
/// concurrently running engines).
struct EsperBoltConfig {
  /// Quadtree layers annotated on tuples (defines the bus event type).
  std::vector<int> layers;
  /// Rules per task: (statement name, EPL text).
  std::vector<std::vector<std::pair<std::string, std::string>>> rules_per_task;
  /// Preload hook, called once per task after rules are installed —
  /// typically feeds the threshold stream (Section 4.3.1's "new Esper
  /// stream" strategy).
  std::function<void(cep::Engine* engine, int task_index)> preload;
  /// Optional per-tuple hook before the event is sent (the per-tuple DB join
  /// strategy plugs in here).
  std::function<void(cep::Engine* engine, int task_index,
                     const dsps::Tuple& tuple)>
      before_send;
};

/// Runs one Esper engine per task; converts tuples to `bus` events, executes
/// the rules and emits detections.
///
/// Snapshottable: forwards to cep::Engine::Snapshot/Restore. Prepare installs
/// the task's rules (and preloads the threshold stream) before the runtime
/// calls RestoreState, matching the engine's contract that a snapshot is
/// restored into an engine holding the same statements.
class EsperBolt : public dsps::Bolt, public dsps::Snapshottable {
 public:
  explicit EsperBolt(std::shared_ptr<const EsperBoltConfig> config)
      : config_(std::move(config)) {}

  void Prepare(const dsps::TaskContext& context) override;
  void Execute(const dsps::Tuple& input, dsps::Collector* collector) override;

  /// Columnar fast path: the drained tuple block is packed into one
  /// EventBatch and crosses the engine boundary via SendBatch, so eligible
  /// rules evaluate compiled column kernels instead of per-event expression
  /// trees. Falls back to per-tuple Execute when the config installs a
  /// before_send hook (it observes every individual send) or a tuple does
  /// not match the bus schema. Detections come out identical to the row
  /// path — same matches, same order, same timestamps.
  bool SupportsExecuteBatch() const override { return true; }
  void ExecuteBatch(const dsps::Tuple* inputs, size_t count,
                    dsps::Collector* collector) override;

  Status SnapshotState(std::string* out) const override;
  Status RestoreState(const std::string& bytes) override;

  cep::Engine* engine() { return engine_.get(); }

 private:
  /// Emits a detection tuple per pending match and clears the buffers.
  void EmitPending(dsps::Collector* collector);

  std::shared_ptr<const EsperBoltConfig> config_;
  std::unique_ptr<cep::Engine> engine_;
  cep::EventTypePtr bus_type_;
  /// Reused lane buffer for ExecuteBatch (allocation-free steady state).
  std::unique_ptr<cep::EventBatch> batch_;
  int task_index_ = 0;
  std::vector<cep::MatchResult> pending_matches_;
  /// Trigger timestamp per pending match (parallel to pending_matches_):
  /// the detection tuple's timestamp fallback when the rule does not SELECT
  /// a timestamp column.
  std::vector<MicrosT> pending_trigger_ts_;
};

/// Persists detections to the storage medium (the paper's MySQL server).
class EventsStorerBolt : public dsps::Bolt {
 public:
  static constexpr char kTableName[] = "detected_events";
  /// The store must outlive the topology run.
  explicit EventsStorerBolt(storage::TableStore* store) : store_(store) {}

  void Prepare(const dsps::TaskContext& context) override;
  void Execute(const dsps::Tuple& input, dsps::Collector* collector) override;

  /// Columns of the detected_events table.
  static std::vector<storage::Column> TableColumns();

 private:
  storage::TableStore* store_;
};

}  // namespace traffic
}  // namespace insight

#endif  // INSIGHT_TRAFFIC_BOLTS_H_
