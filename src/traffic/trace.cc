#include "traffic/trace.h"

#include "common/strings.h"

namespace insight {
namespace traffic {

std::vector<std::string> BusTrace::ToCsvRow() const {
  std::vector<std::string> row(TraceCsv::kNumColumns);
  row[TraceCsv::kTimestamp] = std::to_string(timestamp);
  row[TraceCsv::kLine] = std::to_string(line_id);
  row[TraceCsv::kDirection] = direction ? "1" : "0";
  row[TraceCsv::kLon] = StrFormat("%.6f", position.lon);
  row[TraceCsv::kLat] = StrFormat("%.6f", position.lat);
  row[TraceCsv::kDelay] = StrFormat("%.2f", delay_seconds);
  row[TraceCsv::kCongestion] = congestion ? "1" : "0";
  row[TraceCsv::kReportedStop] = std::to_string(reported_stop_id);
  row[TraceCsv::kVehicle] = std::to_string(vehicle_id);
  row[TraceCsv::kSpeed] = StrFormat("%.2f", speed_kmh);
  row[TraceCsv::kActualDelay] = StrFormat("%.2f", actual_delay);
  row[TraceCsv::kHour] = std::to_string(hour);
  row[TraceCsv::kDateType] = date_type;
  row[TraceCsv::kAreaLeaf] = std::to_string(area_leaf);
  row[TraceCsv::kBusStop] = std::to_string(bus_stop);
  return row;
}

Result<BusTrace> BusTrace::FromCsvRow(const std::vector<std::string>& row) {
  if (row.size() < static_cast<size_t>(TraceCsv::kNumColumns)) {
    return Status::ParseError(
        StrFormat("trace row has %zu columns, expected %d", row.size(),
                  TraceCsv::kNumColumns));
  }
  BusTrace t;
  INSIGHT_ASSIGN_OR_RETURN(t.timestamp, ParseInt(row[TraceCsv::kTimestamp]));
  INSIGHT_ASSIGN_OR_RETURN(long long line, ParseInt(row[TraceCsv::kLine]));
  t.line_id = static_cast<int>(line);
  INSIGHT_ASSIGN_OR_RETURN(t.direction, ParseBool(row[TraceCsv::kDirection]));
  INSIGHT_ASSIGN_OR_RETURN(t.position.lon, ParseDouble(row[TraceCsv::kLon]));
  INSIGHT_ASSIGN_OR_RETURN(t.position.lat, ParseDouble(row[TraceCsv::kLat]));
  INSIGHT_ASSIGN_OR_RETURN(t.delay_seconds, ParseDouble(row[TraceCsv::kDelay]));
  INSIGHT_ASSIGN_OR_RETURN(t.congestion, ParseBool(row[TraceCsv::kCongestion]));
  INSIGHT_ASSIGN_OR_RETURN(t.reported_stop_id,
                           ParseInt(row[TraceCsv::kReportedStop]));
  INSIGHT_ASSIGN_OR_RETURN(long long vehicle, ParseInt(row[TraceCsv::kVehicle]));
  t.vehicle_id = static_cast<int>(vehicle);
  INSIGHT_ASSIGN_OR_RETURN(t.speed_kmh, ParseDouble(row[TraceCsv::kSpeed]));
  INSIGHT_ASSIGN_OR_RETURN(t.actual_delay,
                           ParseDouble(row[TraceCsv::kActualDelay]));
  INSIGHT_ASSIGN_OR_RETURN(long long hour, ParseInt(row[TraceCsv::kHour]));
  t.hour = static_cast<int>(hour);
  t.date_type = row[TraceCsv::kDateType];
  INSIGHT_ASSIGN_OR_RETURN(t.area_leaf, ParseInt(row[TraceCsv::kAreaLeaf]));
  INSIGHT_ASSIGN_OR_RETURN(t.bus_stop, ParseInt(row[TraceCsv::kBusStop]));
  return t;
}

std::string BusTrace::ToString() const {
  return StrFormat(
      "BusTrace{t=%lld line=%d veh=%d pos=(%.4f,%.4f) delay=%.1f speed=%.1f "
      "hour=%d %s area=%lld stop=%lld}",
      static_cast<long long>(timestamp), line_id, vehicle_id, position.lat,
      position.lon, delay_seconds, speed_kmh, hour, date_type.c_str(),
      static_cast<long long>(area_leaf), static_cast<long long>(bus_stop));
}

}  // namespace traffic
}  // namespace insight
