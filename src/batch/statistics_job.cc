#include "batch/statistics_job.h"

#include <cmath>
#include <set>

#include "common/csv.h"
#include "common/strings.h"

namespace insight {
namespace batch {

namespace {

struct Triple {
  double count = 0.0;
  double sum = 0.0;
  double sumsq = 0.0;

  static Result<Triple> Parse(const std::string& s) {
    auto parts = Split(s, ',');
    if (parts.size() != 3) return Status::ParseError("bad stats triple: " + s);
    Triple t;
    INSIGHT_ASSIGN_OR_RETURN(t.count, ParseDouble(parts[0]));
    INSIGHT_ASSIGN_OR_RETURN(t.sum, ParseDouble(parts[1]));
    INSIGHT_ASSIGN_OR_RETURN(t.sumsq, ParseDouble(parts[2]));
    return t;
  }

  std::string Serialize() const {
    return StrFormat("%.17g,%.17g,%.17g", count, sum, sumsq);
  }

  void Merge(const Triple& o) {
    count += o.count;
    sum += o.sum;
    sumsq += o.sumsq;
  }

  double Mean() const { return count == 0 ? 0.0 : sum / count; }
  double Stdev() const {
    if (count < 2) return 0.0;
    double m = Mean();
    double var = sumsq / count - m * m;
    return var <= 0 ? 0.0 : std::sqrt(var);
  }
};

}  // namespace

Result<MapReduceJob::Counters> RunStatisticsJob(
    dfs::MiniDfs* fs, const StatisticsJobConfig& config) {
  if (config.location_col < 0 || config.hour_col < 0 ||
      config.date_type_col < 0) {
    return Status::InvalidArgument(
        "statistics job requires location/hour/dateType column indexes");
  }
  if (config.attribute_cols.empty()) {
    return Status::InvalidArgument("statistics job requires attribute columns");
  }

  int max_col = std::max({config.location_col, config.hour_col,
                          config.date_type_col});
  for (const auto& [attr, col] : config.attribute_cols) {
    max_col = std::max(max_col, col);
  }

  MapReduceJob::Spec spec;
  spec.name = "statistics";
  spec.input_paths = config.input_paths;
  spec.output_dir = config.output_dir;
  spec.num_reducers = config.num_reducers;
  spec.parallelism = config.parallelism;

  auto attribute_cols = config.attribute_cols;
  int location_col = config.location_col;
  int hour_col = config.hour_col;
  int date_type_col = config.date_type_col;

  spec.map = [attribute_cols, location_col, hour_col, date_type_col, max_col](
                 const std::string& record, Emitter* emitter) {
    auto fields = ParseCsvLine(record);
    if (!fields.ok()) return;  // skip malformed records, like Hadoop would
    if (static_cast<int>(fields->size()) <= max_col) return;
    const std::string& location = (*fields)[static_cast<size_t>(location_col)];
    const std::string& hour = (*fields)[static_cast<size_t>(hour_col)];
    const std::string& date_type =
        (*fields)[static_cast<size_t>(date_type_col)];
    for (const auto& [attr, col] : attribute_cols) {
      auto value = ParseDouble((*fields)[static_cast<size_t>(col)]);
      if (!value.ok()) continue;
      Triple t{1.0, *value, *value * *value};
      emitter->Emit(attr + "|" + location + "|" + hour + "|" + date_type,
                    t.Serialize());
    }
  };

  auto merge_fn = [](const std::string& key,
                     const std::vector<std::string>& values, Emitter* emitter,
                     bool final_output) {
    Triple total;
    for (const std::string& v : values) {
      auto t = Triple::Parse(v);
      if (t.ok()) total.Merge(*t);
    }
    if (final_output) {
      emitter->Emit(key, StrFormat("%.17g,%.17g,%lld", total.Mean(),
                                   total.Stdev(),
                                   static_cast<long long>(total.count)));
    } else {
      emitter->Emit(key, total.Serialize());
    }
  };
  spec.combine = [merge_fn](const std::string& key,
                            const std::vector<std::string>& values,
                            Emitter* emitter) {
    merge_fn(key, values, emitter, false);
  };
  spec.reduce = [merge_fn](const std::string& key,
                           const std::vector<std::string>& values,
                           Emitter* emitter) {
    merge_fn(key, values, emitter, true);
  };

  return MapReduceJob::Run(fs, spec);
}

Result<size_t> LoadStatisticsIntoStore(const dfs::MiniDfs& fs,
                                       const std::string& output_dir,
                                       storage::TableStore* store) {
  INSIGHT_ASSIGN_OR_RETURN(auto pairs, ReadJobOutput(fs, output_dir));
  std::set<std::string> truncated;
  size_t loaded = 0;
  for (const auto& [key, value] : pairs) {
    auto key_parts = Split(key, '|');
    auto value_parts = Split(value, ',');
    if (key_parts.size() != 4 || value_parts.size() != 3) {
      return Status::ParseError("malformed statistics record: " + key + " -> " +
                                value);
    }
    const std::string& attr = key_parts[0];
    INSIGHT_ASSIGN_OR_RETURN(long long location, ParseInt(key_parts[1]));
    INSIGHT_ASSIGN_OR_RETURN(long long hour, ParseInt(key_parts[2]));
    const std::string& date_type = key_parts[3];
    INSIGHT_ASSIGN_OR_RETURN(double mean, ParseDouble(value_parts[0]));
    INSIGHT_ASSIGN_OR_RETURN(double stdev, ParseDouble(value_parts[1]));
    INSIGHT_ASSIGN_OR_RETURN(long long count, ParseInt(value_parts[2]));

    std::string table = storage::StatisticsTableName(attr);
    if (truncated.insert(table).second) {
      if (store->HasTable(table)) {
        INSIGHT_RETURN_NOT_OK(store->Truncate(table));
      } else {
        INSIGHT_RETURN_NOT_OK(
            store->CreateTable(table, storage::StatisticsColumns()));
      }
    }
    INSIGHT_RETURN_NOT_OK(store->Insert(
        table, {storage::Value(static_cast<int64_t>(location)),
                storage::Value(static_cast<int64_t>(hour)),
                storage::Value(date_type), storage::Value(mean),
                storage::Value(stdev), storage::Value(static_cast<int64_t>(count))}));
    ++loaded;
  }
  return loaded;
}

}  // namespace batch
}  // namespace insight
