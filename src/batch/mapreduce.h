#ifndef INSIGHT_BATCH_MAPREDUCE_H_
#define INSIGHT_BATCH_MAPREDUCE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "dfs/mini_dfs.h"

namespace insight {
namespace batch {

/// Collects key/value pairs emitted by user map/combine/reduce functions.
class Emitter {
 public:
  virtual ~Emitter() = default;
  virtual void Emit(const std::string& key, const std::string& value) = 0;
};

/// Hadoop-style MapReduce over MiniDfs (Section 2.1.3):
///   map(k1, v1) -> [k2, v2]
///   reduce(k2, [v2]) -> [k3, v3]
/// Input files are split by DFS chunk (one map task per chunk, with
/// record-boundary healing across chunks). Map output is hash-partitioned
/// into `num_reducers` partitions; each reduce task sorts its partition,
/// groups by key and invokes the reducer. Final output is written back to
/// the DFS as text `key\tvalue` lines in part-r-NNNNN files, like Hadoop's
/// TextOutputFormat.
class MapReduceJob {
 public:
  using MapFn =
      std::function<void(const std::string& record, Emitter* emitter)>;
  using ReduceFn = std::function<void(const std::string& key,
                                      const std::vector<std::string>& values,
                                      Emitter* emitter)>;

  struct Spec {
    std::string name = "job";
    std::vector<std::string> input_paths;
    std::string output_dir;  // part files land at <output_dir>/part-r-NNNNN
    MapFn map;
    ReduceFn reduce;
    /// Optional map-side combiner (same signature as reduce).
    ReduceFn combine;
    int num_reducers = 4;
    /// Worker threads executing map/reduce tasks.
    int parallelism = 4;
  };

  struct Counters {
    size_t map_tasks = 0;
    size_t reduce_tasks = 0;
    size_t input_records = 0;
    size_t map_output_records = 0;
    size_t combine_output_records = 0;
    size_t reduce_groups = 0;
    size_t output_records = 0;
  };

  /// Runs the job synchronously. The output directory is replaced.
  static Result<Counters> Run(dfs::MiniDfs* fs, const Spec& spec);
};

/// Reads a text-format job output directory back into (key, value) pairs.
Result<std::vector<std::pair<std::string, std::string>>> ReadJobOutput(
    const dfs::MiniDfs& fs, const std::string& output_dir);

}  // namespace batch
}  // namespace insight

#endif  // INSIGHT_BATCH_MAPREDUCE_H_
