#ifndef INSIGHT_BATCH_STATISTICS_JOB_H_
#define INSIGHT_BATCH_STATISTICS_JOB_H_

#include <map>
#include <string>
#include <vector>

#include "batch/mapreduce.h"
#include "dfs/mini_dfs.h"
#include "storage/table_store.h"

namespace insight {
namespace batch {

/// Configuration of the periodic statistics job of Section 4.1.3: for every
/// (attribute, spatial location, hour-of-day, weekday/weekend) it computes
/// the mean and standard deviation of the attribute over the historical data
/// in the DFS; the results become the rules' dynamic thresholds.
///
/// Input records are CSV lines of pre-processed bus traces; the config maps
/// the needed columns.
struct StatisticsJobConfig {
  std::vector<std::string> input_paths;
  std::string output_dir = "/jobs/statistics/out";
  /// Column indexes into the CSV records.
  int location_col = -1;
  int hour_col = -1;
  int date_type_col = -1;
  /// attribute name -> CSV column holding its numeric value.
  std::map<std::string, int> attribute_cols;
  int num_reducers = 4;
  int parallelism = 4;
};

/// Runs the MapReduce job. Map emits ("attr|loc|hour|dateType",
/// "count,sum,sumsq") triples; combiner and reducer merge triples; the final
/// value is "mean,stdev,count".
Result<MapReduceJob::Counters> RunStatisticsJob(dfs::MiniDfs* fs,
                                                const StatisticsJobConfig& config);

/// Loads a statistics job's output into the storage medium: one
/// statistics_<attribute> table per attribute (created if missing, truncated
/// otherwise), rows (areaId, currentHour, dateType, attr_mean, attr_stdv,
/// sample_count). Returns the number of rows loaded.
Result<size_t> LoadStatisticsIntoStore(const dfs::MiniDfs& fs,
                                       const std::string& output_dir,
                                       storage::TableStore* store);

}  // namespace batch
}  // namespace insight

#endif  // INSIGHT_BATCH_STATISTICS_JOB_H_
