#include "batch/mapreduce.h"

#include <algorithm>
#include <atomic>

#include "common/strings.h"
#include "common/thread_pool.h"

namespace insight {
namespace batch {

namespace {

/// Simple stable string hash (FNV-1a) for partitioning; std::hash is
/// implementation-defined and we want reproducible partition assignment.
uint64_t HashKey(const std::string& key) {
  uint64_t h = 1469598103934665603ULL;
  for (char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

class VectorEmitter : public Emitter {
 public:
  void Emit(const std::string& key, const std::string& value) override {
    pairs.emplace_back(key, value);
  }
  std::vector<std::pair<std::string, std::string>> pairs;
};

/// Extracts the newline-delimited records belonging to a chunk, healing
/// records that span chunk boundaries: a task owns every record that *starts*
/// in its chunk; the first partial line of a non-first chunk belongs to the
/// previous task.
Result<std::vector<std::string>> RecordsForChunk(const dfs::MiniDfs& fs,
                                                 const std::string& path,
                                                 size_t chunk_index,
                                                 size_t num_chunks) {
  INSIGHT_ASSIGN_OR_RETURN(std::string data, fs.ReadChunk(path, chunk_index));
  size_t start = 0;
  if (chunk_index > 0) {
    // Skip the partial first line (owned by the previous chunk's task).
    size_t nl = data.find('\n');
    if (nl == std::string::npos) return std::vector<std::string>{};
    start = nl + 1;
  }
  // Pull the tail of the last record from following chunks.
  std::string tail;
  size_t next = chunk_index + 1;
  bool ends_mid_record = !data.empty() && data.back() != '\n';
  while (ends_mid_record && next < num_chunks) {
    INSIGHT_ASSIGN_OR_RETURN(std::string next_data, fs.ReadChunk(path, next));
    size_t nl = next_data.find('\n');
    if (nl == std::string::npos) {
      tail += next_data;
      ++next;
      continue;
    }
    tail += next_data.substr(0, nl);
    break;
  }
  std::string body = data.substr(start) + tail;
  std::vector<std::string> records;
  size_t pos = 0;
  while (pos < body.size()) {
    size_t nl = body.find('\n', pos);
    if (nl == std::string::npos) {
      records.push_back(body.substr(pos));
      break;
    }
    records.push_back(body.substr(pos, nl - pos));
    pos = nl + 1;
  }
  // Drop empty trailing records.
  while (!records.empty() && records.back().empty()) records.pop_back();
  return records;
}

/// Sort + group a partition's pairs and run `fn` per key group.
size_t GroupAndApply(
    std::vector<std::pair<std::string, std::string>>* pairs,
    const MapReduceJob::ReduceFn& fn, Emitter* emitter) {
  std::sort(pairs->begin(), pairs->end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  size_t groups = 0;
  size_t i = 0;
  while (i < pairs->size()) {
    size_t j = i;
    std::vector<std::string> values;
    while (j < pairs->size() && (*pairs)[j].first == (*pairs)[i].first) {
      values.push_back((*pairs)[j].second);
      ++j;
    }
    fn((*pairs)[i].first, values, emitter);
    ++groups;
    i = j;
  }
  return groups;
}

}  // namespace

Result<MapReduceJob::Counters> MapReduceJob::Run(dfs::MiniDfs* fs,
                                                 const Spec& spec) {
  if (!spec.map || !spec.reduce) {
    return Status::InvalidArgument("job requires map and reduce functions");
  }
  if (spec.input_paths.empty()) {
    return Status::InvalidArgument("job requires at least one input path");
  }
  if (spec.num_reducers <= 0) {
    return Status::InvalidArgument("num_reducers must be positive");
  }
  for (const std::string& path : spec.input_paths) {
    if (!fs->Exists(path)) return Status::NotFound("no input file '" + path + "'");
  }

  Counters counters;
  const size_t num_parts = static_cast<size_t>(spec.num_reducers);

  // ---- Map phase: one task per input chunk. ----
  struct MapTask {
    std::string path;
    size_t chunk_index;
    size_t num_chunks;
  };
  std::vector<MapTask> map_tasks;
  for (const std::string& path : spec.input_paths) {
    INSIGHT_ASSIGN_OR_RETURN(auto chunks, fs->GetChunks(path));
    for (size_t i = 0; i < chunks.size(); ++i) {
      map_tasks.push_back({path, i, chunks.size()});
    }
  }
  counters.map_tasks = map_tasks.size();

  // Partition buffers: [partition][per-task outputs].
  std::vector<std::vector<std::pair<std::string, std::string>>> partitions(
      num_parts);
  insight::Mutex partitions_mutex{TMS_LOCK_RANK(96)};
  std::atomic<size_t> input_records{0};
  std::atomic<size_t> map_output_records{0};
  std::atomic<size_t> combine_output_records{0};
  Status first_error;
  insight::Mutex error_mutex{TMS_LOCK_RANK(97)};

  {
    ThreadPool pool(static_cast<size_t>(std::max(1, spec.parallelism)));
    for (const MapTask& task : map_tasks) {
      pool.Submit([&, task] {
        auto records = RecordsForChunk(*fs, task.path, task.chunk_index,
                                       task.num_chunks);
        if (!records.ok()) {
          MutexLock lock(error_mutex);
          if (first_error.ok()) first_error = records.status();
          return;
        }
        VectorEmitter map_out;
        for (const std::string& record : *records) {
          spec.map(record, &map_out);
        }
        input_records += records->size();
        map_output_records += map_out.pairs.size();

        std::vector<std::pair<std::string, std::string>>* final_pairs =
            &map_out.pairs;
        VectorEmitter combined;
        if (spec.combine) {
          GroupAndApply(&map_out.pairs, spec.combine, &combined);
          combine_output_records += combined.pairs.size();
          final_pairs = &combined.pairs;
        }

        MutexLock lock(partitions_mutex);
        for (auto& [key, value] : *final_pairs) {
          size_t part = HashKey(key) % num_parts;
          partitions[part].emplace_back(std::move(key), std::move(value));
        }
      });
    }
    pool.Wait();
  }
  if (!first_error.ok()) return first_error;
  counters.input_records = input_records;
  counters.map_output_records = map_output_records;
  counters.combine_output_records = combine_output_records;

  // ---- Reduce phase. ----
  fs->DeleteRecursive(spec.output_dir);
  std::atomic<size_t> reduce_groups{0};
  std::atomic<size_t> output_records{0};
  {
    ThreadPool pool(static_cast<size_t>(std::max(1, spec.parallelism)));
    for (size_t part = 0; part < num_parts; ++part) {
      pool.Submit([&, part] {
        VectorEmitter reduce_out;
        reduce_groups += GroupAndApply(&partitions[part], spec.reduce,
                                       &reduce_out);
        output_records += reduce_out.pairs.size();
        std::string content;
        for (const auto& [key, value] : reduce_out.pairs) {
          content += key;
          content += '\t';
          content += value;
          content += '\n';
        }
        std::string path =
            spec.output_dir + "/" + StrFormat("part-r-%05zu", part);
        // Appends are internally synchronized; each task owns its part file.
        (void)fs->Append(path, content);
      });
    }
    pool.Wait();
  }
  counters.reduce_tasks = num_parts;
  counters.reduce_groups = reduce_groups;
  counters.output_records = output_records;
  return counters;
}

Result<std::vector<std::pair<std::string, std::string>>> ReadJobOutput(
    const dfs::MiniDfs& fs, const std::string& output_dir) {
  std::vector<std::pair<std::string, std::string>> out;
  for (const std::string& path : fs.List(output_dir + "/part-r-")) {
    INSIGHT_ASSIGN_OR_RETURN(std::string content, fs.ReadAll(path));
    for (const std::string& line : Split(content, '\n')) {
      if (line.empty()) continue;
      size_t tab = line.find('\t');
      if (tab == std::string::npos) {
        out.emplace_back(line, "");
      } else {
        out.emplace_back(line.substr(0, tab), line.substr(tab + 1));
      }
    }
  }
  return out;
}

}  // namespace batch
}  // namespace insight
