#include "reliability/checkpoint.h"

#include <utility>

#include "common/check.h"
#include "common/logging.h"

namespace insight {
namespace reliability {

DedupLedger::DedupLedger(size_t capacity) : capacity_(capacity) {
  TMS_CHECK(capacity_ > 0) << "dedup ledger capacity must be positive";
}

void DedupLedger::Insert(uint64_t id) {
  if (!set_.insert(id).second) return;
  fifo_.push_back(id);
  if (fifo_.size() > capacity_) {
    set_.erase(fifo_.front());
    fifo_.pop_front();
  }
  // Bounded-ledger invariant: eviction must keep the FIFO and the lookup set
  // in lockstep at or under capacity, or dedup state would grow without
  // bound inside every checkpoint.
  TMS_CHECK(fifo_.size() <= capacity_ && set_.size() == fifo_.size())
      << "dedup ledger out of bounds: " << fifo_.size() << " ids, set "
      << set_.size() << ", capacity " << capacity_;
}

void DedupLedger::Clear() {
  fifo_.clear();
  set_.clear();
}

void DedupLedger::Serialize(ByteWriter* writer) const {
  writer->PutU64(fifo_.size());
  for (uint64_t id : fifo_) writer->PutU64(id);
}

bool DedupLedger::Deserialize(ByteReader* reader) {
  Clear();
  uint64_t count;
  if (!reader->GetU64(&count) || count > capacity_) return false;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t id;
    if (!reader->GetU64(&id)) {
      Clear();
      return false;
    }
    Insert(id);
  }
  return true;
}

CheckpointCoordinator::CheckpointCoordinator(Options options)
    : options_(options) {
  TMS_CHECK(options_.store != nullptr) << "checkpoint coordinator needs a store";
}

CheckpointCoordinator::~CheckpointCoordinator() { Stop(); }

int CheckpointCoordinator::RegisterTask(std::string key) {
  MutexLock lock(mutex_);
  TMS_CHECK(!started_) << "checkpoint tasks must register before Start";
  auto slot = std::make_unique<Slot>();
  slot->key = std::move(key);
  slot->next_due = options_.clock->NowMicros() + options_.interval_micros;
  slots_.push_back(std::move(slot));
  return static_cast<int>(slots_.size() - 1);
}

void CheckpointCoordinator::Start() {
  {
    MutexLock lock(mutex_);
    if (started_) return;
    started_ = true;
    stop_ = false;
  }
  persister_ = Thread([this] { PersisterLoop(); });
}

void CheckpointCoordinator::Stop() {
  {
    MutexLock lock(mutex_);
    if (!started_) return;
    stop_ = true;
    work_cv_.NotifyAll();
  }
  if (persister_.joinable()) persister_.join();
  MutexLock lock(mutex_);
  started_ = false;
}

bool CheckpointCoordinator::Due(int slot, MicrosT now) const {
  MutexLock lock(mutex_);
  const Slot& s = *slots_[static_cast<size_t>(slot)];
  return !s.in_flight && now >= s.next_due;
}

bool CheckpointCoordinator::CanSubmit(int slot) const {
  MutexLock lock(mutex_);
  return !slots_[static_cast<size_t>(slot)]->in_flight;
}

uint64_t CheckpointCoordinator::Submit(int slot, std::string bytes,
                                       DoneFn done) {
  MutexLock lock(mutex_);
  Slot& s = *slots_[static_cast<size_t>(slot)];
  // One in-flight checkpoint per task: the executor gates on Due/CanSubmit
  // and is the only submitter for its slot.
  TMS_CHECK(!s.in_flight) << "overlapping checkpoints for " << s.key;
  const uint64_t epoch = s.last_epoch + 1;
  // Epoch monotonicity: each checkpoint of a task must supersede the last,
  // restored or persisted, or GetLatest could resurrect stale state.
  TMS_CHECK(epoch > s.last_epoch) << "checkpoint epoch overflow for " << s.key;
  s.last_epoch = epoch;
  s.in_flight = true;
  s.pending_bytes = std::move(bytes);
  s.pending_done = std::move(done);
  queue_.push_back(slot);
  work_cv_.NotifyOne();
  return epoch;
}

Result<StateStore::Snapshot> CheckpointCoordinator::BarrierAndLoad(int slot) {
  std::string key;
  {
    MutexLock lock(mutex_);
    Slot& s = *slots_[static_cast<size_t>(slot)];
    while (s.in_flight) idle_cv_.Wait(mutex_);
    key = s.key;
  }
  Result<StateStore::Snapshot> snapshot = options_.store->GetLatest(key);
  if (snapshot.ok()) {
    MutexLock lock(mutex_);
    Slot& s = *slots_[static_cast<size_t>(slot)];
    if (snapshot->epoch > s.last_epoch) s.last_epoch = snapshot->epoch;
  }
  return snapshot;
}

void CheckpointCoordinator::PersisterLoop() {
  for (;;) {
    int slot;
    uint64_t epoch;
    std::string bytes;
    std::string key;
    DoneFn done;
    {
      MutexLock lock(mutex_);
      while (queue_.empty() && !stop_) work_cv_.Wait(mutex_);
      // Drain the queue even when stopping: a submitted checkpoint carries
      // deferred acks that must still flush.
      if (queue_.empty()) return;
      slot = queue_.front();
      queue_.pop_front();
      Slot& s = *slots_[static_cast<size_t>(slot)];
      epoch = s.last_epoch;
      bytes = std::move(s.pending_bytes);
      done = std::move(s.pending_done);
      key = s.key;
      s.pending_bytes.clear();
      s.pending_done = nullptr;
    }
    Status status = options_.store->Put(key, epoch, bytes);
    if (status.ok()) {
      persisted_.fetch_add(1, std::memory_order_relaxed);
      bytes_persisted_.fetch_add(bytes.size(), std::memory_order_relaxed);
    } else {
      persist_failures_.fetch_add(1, std::memory_order_relaxed);
      INSIGHT_LOG(Warning) << "checkpoint persist failed for " << key
                           << " epoch " << epoch << ": " << status.ToString();
    }
    if (done) done(epoch, status);
    MutexLock lock(mutex_);
    Slot& s = *slots_[static_cast<size_t>(slot)];
    s.in_flight = false;
    s.next_due = options_.clock->NowMicros() + options_.interval_micros;
    idle_cv_.NotifyAll();
  }
}

}  // namespace reliability
}  // namespace insight
