#ifndef INSIGHT_RELIABILITY_FAULT_INJECTOR_H_
#define INSIGHT_RELIABILITY_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/mutex.h"
#include "common/rng.h"
#include "common/thread_annotations.h"

namespace insight {
namespace reliability {

/// Declarative fault schedule. All randomness derives from `seed`, so a run
/// with a single route-decision stream is reproducible.
struct FaultPlan {
  uint64_t seed = 0x5eedULL;

  /// Kill the executor thread running (component, task) on its Nth
  /// execution — the tuple being processed is lost, mirroring a Storm
  /// worker dying mid-execute.
  struct CrashRule {
    std::string component;
    int task = -1;                  // -1 = any task of the component
    uint64_t after_executions = 1;  // crash on the Nth execution of the task
    bool repeat = false;            // also crash on every further Nth
  };

  /// Tamper with tuples on a route (source component -> dest component).
  /// Empty component names match any route end.
  struct RouteRule {
    std::string source;
    std::string dest;
    double drop_probability = 0.0;       // tuple silently lost
    double duplicate_probability = 0.0;  // tuple delivered twice
    double delay_probability = 0.0;      // emitter stalled for delay_micros
    MicrosT delay_micros = 0;
  };

  std::vector<CrashRule> crashes;
  std::vector<RouteRule> routes;
};

/// Consulted by LocalRuntime at its two fault points: before each bolt
/// execution (crashes) and at each tuple push (drop / duplicate / delay).
/// Thread-safe; decision counts are exposed so tests can assert the faults
/// actually fired.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// True when the executing task must die now (per its crash rules).
  bool ShouldCrash(const std::string& component, int task) EXCLUDES(mutex_);

  struct RouteDecision {
    bool drop = false;
    bool duplicate = false;
    MicrosT delay_micros = 0;
  };

  /// Fault decision for one tuple pushed from `source` to `dest`.
  RouteDecision OnRoute(const std::string& source, const std::string& dest)
      EXCLUDES(mutex_);

  uint64_t crashes_injected() const {
    return crashes_.load(std::memory_order_relaxed);
  }
  uint64_t tuples_dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  uint64_t tuples_duplicated() const {
    return duplicated_.load(std::memory_order_relaxed);
  }
  uint64_t delays_injected() const {
    return delayed_.load(std::memory_order_relaxed);
  }

 private:
  FaultPlan plan_;
  Mutex mutex_{TMS_LOCK_RANK(78)};
  Rng rng_ GUARDED_BY(mutex_);
  std::map<std::pair<std::string, int>, uint64_t> execution_counts_
      GUARDED_BY(mutex_);
  std::atomic<uint64_t> crashes_{0};
  std::atomic<uint64_t> dropped_{0};
  std::atomic<uint64_t> duplicated_{0};
  std::atomic<uint64_t> delayed_{0};
};

}  // namespace reliability
}  // namespace insight

#endif  // INSIGHT_RELIABILITY_FAULT_INJECTOR_H_
