#include "reliability/state_store.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <system_error>
#include <vector>

namespace insight {
namespace reliability {

Status InMemoryStateStore::Put(const std::string& key, uint64_t epoch,
                               const std::string& bytes) {
  MutexLock lock(mutex_);
  Snapshot& slot = latest_[key];
  if (epoch <= slot.epoch && !slot.bytes.empty()) {
    return Status::InvalidArgument("checkpoint epoch went backwards for '" +
                                   key + "'");
  }
  slot.epoch = epoch;
  slot.bytes = bytes;
  return Status::OK();
}

Result<StateStore::Snapshot> InMemoryStateStore::GetLatest(
    const std::string& key) const {
  MutexLock lock(mutex_);
  auto it = latest_.find(key);
  if (it == latest_.end()) {
    return Status::NotFound("no checkpoint for '" + key + "'");
  }
  return it->second;
}

Status InMemoryStateStore::Remove(const std::string& key) {
  MutexLock lock(mutex_);
  latest_.erase(key);
  return Status::OK();
}

DfsStateStore::DfsStateStore(dfs::MiniDfs* dfs, std::string root)
    : dfs_(dfs), root_(std::move(root)) {
  if (root_.empty() || root_.back() != '/') root_ += '/';
}

std::string DfsStateStore::DirFor(const std::string& key) const {
  return root_ + key + "/";
}

Status DfsStateStore::Put(const std::string& key, uint64_t epoch,
                          const std::string& bytes) {
  // Zero-padded so List()'s lexicographic order is also epoch order.
  char name[32];
  std::snprintf(name, sizeof(name), "%020llu",
                static_cast<unsigned long long>(epoch));  // NOLINT(runtime/int): printf width format
  const std::string dir = DirFor(key);
  const std::string path = dir + name;
  if (dfs_->Exists(path)) {
    return Status::AlreadyExists("checkpoint epoch reused: " + path);
  }
  INSIGHT_RETURN_NOT_OK(dfs_->Append(path, bytes));
  // Prune older epochs only after the new one is durable.
  for (const std::string& old : dfs_->List(dir)) {
    if (old != path) (void)dfs_->Delete(old);
  }
  return Status::OK();
}

Result<StateStore::Snapshot> DfsStateStore::GetLatest(
    const std::string& key) const {
  const std::string dir = DirFor(key);
  std::vector<std::string> paths = dfs_->List(dir);
  if (paths.empty()) {
    return Status::NotFound("no checkpoint for '" + key + "'");
  }
  // List() is sorted and epochs are zero-padded: last path = newest epoch.
  const std::string& path = paths.back();
  Snapshot snapshot;
  snapshot.epoch = std::strtoull(path.c_str() + dir.size(), nullptr, 10);
  INSIGHT_ASSIGN_OR_RETURN(snapshot.bytes, dfs_->ReadAll(path));
  return snapshot;
}

Status DfsStateStore::Remove(const std::string& key) {
  dfs_->DeleteRecursive(DirFor(key));
  return Status::OK();
}

namespace {

/// Checkpoint keys are "component#task"; keep directory names shell-safe.
std::string SanitizeKey(const std::string& key) {
  std::string out = key;
  for (char& c : out) {
    if (c == '/' || c == '\\' || c == '.') c = '_';
  }
  return out;
}

}  // namespace

FileStateStore::FileStateStore(std::string root) : root_(std::move(root)) {
  std::error_code ec;
  std::filesystem::create_directories(root_, ec);
}

std::string FileStateStore::DirFor(const std::string& key) const {
  return root_ + "/" + SanitizeKey(key);
}

Status FileStateStore::Put(const std::string& key, uint64_t epoch,
                           const std::string& bytes) {
  namespace fs = std::filesystem;
  MutexLock lock(mutex_);
  const std::string dir = DirFor(key);
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::IoError("mkdir " + dir + ": " + ec.message());
  }
  char name[32];
  std::snprintf(name, sizeof(name), "%020llu",
                static_cast<unsigned long long>(epoch));  // NOLINT(runtime/int): printf width format
  const std::string path = dir + "/" + name;
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IoError("open " + tmp);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) return Status::IoError("write " + tmp);
  }
  fs::rename(tmp, path, ec);
  if (ec) {
    return Status::IoError("rename " + tmp + ": " + ec.message());
  }
  // Prune older epochs only after the new one is in place.
  for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec)) {
    const std::string filename = entry.path().filename().string();
    if (filename != name && filename.find(".tmp") == std::string::npos) {
      fs::remove(entry.path(), ec);
    }
  }
  return Status::OK();
}

Result<StateStore::Snapshot> FileStateStore::GetLatest(
    const std::string& key) const {
  namespace fs = std::filesystem;
  MutexLock lock(mutex_);
  const std::string dir = DirFor(key);
  std::error_code ec;
  std::vector<std::string> names;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec)) {
    const std::string filename = entry.path().filename().string();
    if (filename.find(".tmp") == std::string::npos) {
      names.push_back(filename);
    }
  }
  if (ec || names.empty()) {
    return Status::NotFound("no checkpoint for '" + key + "'");
  }
  // Zero-padded names: lexicographic max = newest epoch.
  std::string newest;
  for (const std::string& filename : names) {
    if (filename > newest) newest = filename;
  }
  Snapshot snapshot;
  snapshot.epoch = std::strtoull(newest.c_str(), nullptr, 10);
  std::ifstream in(dir + "/" + newest, std::ios::binary);
  if (!in) return Status::IoError("open " + dir + "/" + newest);
  snapshot.bytes.assign(std::istreambuf_iterator<char>(in),
                        std::istreambuf_iterator<char>());
  if (in.bad()) return Status::IoError("read " + dir + "/" + newest);
  return snapshot;
}

Status FileStateStore::Remove(const std::string& key) {
  MutexLock lock(mutex_);
  std::error_code ec;
  std::filesystem::remove_all(DirFor(key), ec);
  return Status::OK();
}

}  // namespace reliability
}  // namespace insight
