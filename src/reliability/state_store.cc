#include "reliability/state_store.h"

#include <cstdio>
#include <cstdlib>

namespace insight {
namespace reliability {

Status InMemoryStateStore::Put(const std::string& key, uint64_t epoch,
                               const std::string& bytes) {
  MutexLock lock(mutex_);
  Snapshot& slot = latest_[key];
  if (epoch <= slot.epoch && !slot.bytes.empty()) {
    return Status::InvalidArgument("checkpoint epoch went backwards for '" +
                                   key + "'");
  }
  slot.epoch = epoch;
  slot.bytes = bytes;
  return Status::OK();
}

Result<StateStore::Snapshot> InMemoryStateStore::GetLatest(
    const std::string& key) const {
  MutexLock lock(mutex_);
  auto it = latest_.find(key);
  if (it == latest_.end()) {
    return Status::NotFound("no checkpoint for '" + key + "'");
  }
  return it->second;
}

Status InMemoryStateStore::Remove(const std::string& key) {
  MutexLock lock(mutex_);
  latest_.erase(key);
  return Status::OK();
}

DfsStateStore::DfsStateStore(dfs::MiniDfs* dfs, std::string root)
    : dfs_(dfs), root_(std::move(root)) {
  if (root_.empty() || root_.back() != '/') root_ += '/';
}

std::string DfsStateStore::DirFor(const std::string& key) const {
  return root_ + key + "/";
}

Status DfsStateStore::Put(const std::string& key, uint64_t epoch,
                          const std::string& bytes) {
  // Zero-padded so List()'s lexicographic order is also epoch order.
  char name[32];
  std::snprintf(name, sizeof(name), "%020llu",
                static_cast<unsigned long long>(epoch));  // NOLINT(runtime/int): printf width format
  const std::string dir = DirFor(key);
  const std::string path = dir + name;
  if (dfs_->Exists(path)) {
    return Status::AlreadyExists("checkpoint epoch reused: " + path);
  }
  INSIGHT_RETURN_NOT_OK(dfs_->Append(path, bytes));
  // Prune older epochs only after the new one is durable.
  for (const std::string& old : dfs_->List(dir)) {
    if (old != path) (void)dfs_->Delete(old);
  }
  return Status::OK();
}

Result<StateStore::Snapshot> DfsStateStore::GetLatest(
    const std::string& key) const {
  const std::string dir = DirFor(key);
  std::vector<std::string> paths = dfs_->List(dir);
  if (paths.empty()) {
    return Status::NotFound("no checkpoint for '" + key + "'");
  }
  // List() is sorted and epochs are zero-padded: last path = newest epoch.
  const std::string& path = paths.back();
  Snapshot snapshot;
  snapshot.epoch = std::strtoull(path.c_str() + dir.size(), nullptr, 10);
  INSIGHT_ASSIGN_OR_RETURN(snapshot.bytes, dfs_->ReadAll(path));
  return snapshot;
}

Status DfsStateStore::Remove(const std::string& key) {
  dfs_->DeleteRecursive(DirFor(key));
  return Status::OK();
}

}  // namespace reliability
}  // namespace insight
