#include "reliability/replay.h"

#include <algorithm>

namespace insight {
namespace reliability {

namespace {

// splitmix64 finalizer: the jitter hash.
uint64_t MixJitter(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

size_t ReplayBuffer::MessageKeyHash::operator()(const MessageKey& key) const {
  uint64_t scope =
      (static_cast<uint64_t>(static_cast<uint32_t>(key.spout_component))
       << 32) |
      static_cast<uint64_t>(static_cast<uint32_t>(key.spout_task));
  return static_cast<size_t>(
      MixJitter(key.message_id ^ MixJitter(scope + 0x9e3779b97f4a7c15ULL)));
}

void ReplayBuffer::Store(uint64_t message_id, int spout_component,
                         int spout_task, std::vector<cep::Value> values) {
  MutexLock lock(mutex_);
  payloads_[MessageKey{message_id, spout_component, spout_task}] =
      Payload{std::move(values), 0};
}

bool ReplayBuffer::Ack(uint64_t message_id, int spout_component,
                       int spout_task) {
  MutexLock lock(mutex_);
  scheduled_.erase(
      std::remove_if(scheduled_.begin(), scheduled_.end(),
                     [&](const Scheduled& s) {
                       return s.message_id == message_id &&
                              s.spout_component == spout_component &&
                              s.spout_task == spout_task;
                     }),
      scheduled_.end());
  return payloads_.erase(
             MessageKey{message_id, spout_component, spout_task}) > 0;
}

MicrosT ReplayBuffer::BackoffFor(uint64_t message_id, int attempt) const {
  double backoff = static_cast<double>(policy_.backoff_base_micros);
  for (int i = 1; i < attempt; ++i) backoff *= policy_.backoff_factor;
  if (policy_.backoff_jitter > 0.0) {
    // Pure function of (seed, message, attempt): reruns under one seed are
    // reproducible while distinct messages land on distinct delays.
    uint64_t h = MixJitter(policy_.jitter_seed ^
                           MixJitter(message_id + 0x9e3779b97f4a7c15ULL *
                                                      static_cast<uint64_t>(attempt)));
    double unit = static_cast<double>(h >> 11) * 0x1.0p-53;  // [0, 1)
    backoff *= 1.0 + policy_.backoff_jitter * (2.0 * unit - 1.0);
  }
  return static_cast<MicrosT>(backoff);
}

bool ReplayBuffer::Fail(uint64_t message_id, int spout_component,
                        int spout_task, MicrosT now) {
  MutexLock lock(mutex_);
  auto it =
      payloads_.find(MessageKey{message_id, spout_component, spout_task});
  if (it == payloads_.end()) return false;
  if (it->second.attempts >= policy_.max_replays) {
    payloads_.erase(it);
    return false;
  }
  int attempt = ++it->second.attempts;
  scheduled_.push_back(Scheduled{now + BackoffFor(message_id, attempt),
                                 message_id, spout_component, spout_task,
                                 attempt});
  return true;
}

bool ReplayBuffer::Discard(uint64_t message_id, int spout_component,
                           int spout_task) {
  MutexLock lock(mutex_);
  scheduled_.erase(
      std::remove_if(scheduled_.begin(), scheduled_.end(),
                     [&](const Scheduled& s) {
                       return s.message_id == message_id &&
                              s.spout_component == spout_component &&
                              s.spout_task == spout_task;
                     }),
      scheduled_.end());
  return payloads_.erase(
             MessageKey{message_id, spout_component, spout_task}) > 0;
}

std::vector<uint64_t> ReplayBuffer::DiscardAllFor(int spout_component,
                                                  int spout_task) {
  MutexLock lock(mutex_);
  std::vector<uint64_t> discarded;
  for (auto it = scheduled_.begin(); it != scheduled_.end();) {
    if (it->spout_component == spout_component && it->spout_task == spout_task) {
      discarded.push_back(it->message_id);
      payloads_.erase(
          MessageKey{it->message_id, spout_component, spout_task});
      it = scheduled_.erase(it);
    } else {
      ++it;
    }
  }
  return discarded;
}

std::vector<ReplayBuffer::Due> ReplayBuffer::TakeDue(int spout_component,
                                                     int spout_task,
                                                     MicrosT now) {
  MutexLock lock(mutex_);
  std::vector<Due> due;
  for (auto it = scheduled_.begin(); it != scheduled_.end();) {
    if (it->spout_component == spout_component &&
        it->spout_task == spout_task && it->due_micros <= now) {
      auto payload = payloads_.find(
          MessageKey{it->message_id, spout_component, spout_task});
      if (payload != payloads_.end()) {
        due.push_back(Due{it->message_id, it->attempt, payload->second.values});
      }
      it = scheduled_.erase(it);
    } else {
      ++it;
    }
  }
  return due;
}

size_t ReplayBuffer::stored() const {
  MutexLock lock(mutex_);
  return payloads_.size();
}

size_t ReplayBuffer::scheduled_retries() const {
  MutexLock lock(mutex_);
  return scheduled_.size();
}

}  // namespace reliability
}  // namespace insight
