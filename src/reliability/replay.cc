#include "reliability/replay.h"

#include <algorithm>

namespace insight {
namespace reliability {

void ReplayBuffer::Store(uint64_t message_id, std::vector<cep::Value> values) {
  MutexLock lock(mutex_);
  payloads_[message_id] = Payload{std::move(values), 0};
}

bool ReplayBuffer::Ack(uint64_t message_id) {
  MutexLock lock(mutex_);
  scheduled_.erase(
      std::remove_if(scheduled_.begin(), scheduled_.end(),
                     [&](const Scheduled& s) { return s.message_id == message_id; }),
      scheduled_.end());
  return payloads_.erase(message_id) > 0;
}

bool ReplayBuffer::Fail(uint64_t message_id, int spout_component,
                        int spout_task, MicrosT now) {
  MutexLock lock(mutex_);
  auto it = payloads_.find(message_id);
  if (it == payloads_.end()) return false;
  if (it->second.attempts >= policy_.max_replays) {
    payloads_.erase(it);
    return false;
  }
  int attempt = ++it->second.attempts;
  double backoff = static_cast<double>(policy_.backoff_base_micros);
  for (int i = 1; i < attempt; ++i) backoff *= policy_.backoff_factor;
  scheduled_.push_back(Scheduled{now + static_cast<MicrosT>(backoff),
                                 message_id, spout_component, spout_task,
                                 attempt});
  return true;
}

std::vector<ReplayBuffer::Due> ReplayBuffer::TakeDue(int spout_component,
                                                     int spout_task,
                                                     MicrosT now) {
  MutexLock lock(mutex_);
  std::vector<Due> due;
  for (auto it = scheduled_.begin(); it != scheduled_.end();) {
    if (it->spout_component == spout_component &&
        it->spout_task == spout_task && it->due_micros <= now) {
      auto payload = payloads_.find(it->message_id);
      if (payload != payloads_.end()) {
        due.push_back(Due{it->message_id, it->attempt, payload->second.values});
      }
      it = scheduled_.erase(it);
    } else {
      ++it;
    }
  }
  return due;
}

size_t ReplayBuffer::stored() const {
  MutexLock lock(mutex_);
  return payloads_.size();
}

size_t ReplayBuffer::scheduled_retries() const {
  MutexLock lock(mutex_);
  return scheduled_.size();
}

}  // namespace reliability
}  // namespace insight
