#include "reliability/acker.h"

#include "common/check.h"
#include "common/logging.h"

namespace insight {
namespace reliability {

namespace {

// splitmix64 finalizer: spreads sequential / structured keys across shards.
uint64_t MixKey(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Acker::Acker(size_t num_shards) : shards_(num_shards == 0 ? 1 : num_shards) {}

Acker::Shard& Acker::ShardFor(uint64_t root_key) {
  return shards_[MixKey(root_key) % shards_.size()];
}

void Acker::Register(const TreeInfo& info, uint64_t guard_edge) {
  INSIGHT_CHECK(guard_edge != 0) << "acker guard edge must be nonzero";
  Shard& shard = ShardFor(info.root_key);
  MutexLock lock(shard.mutex);
  auto [it, inserted] = shard.trees.try_emplace(info.root_key);
  // A live entry under this key means two in-flight trees collided on one
  // root key (a message id reused within one spout task while the first
  // tree is still in flight, or a 64-bit RootKey collision) — the
  // accumulators would mix and neither tree could ever balance, leaking a
  // pending root. Replays cannot trip this: each attempt derives a fresh
  // root key, and distinct spout tasks derive disjoint key spaces.
  TMS_DCHECK(inserted) << "acker tree " << info.root_key
                       << " registered twice (message " << info.message_id
                       << ", attempt " << info.attempt << ")";
  it->second.ack_val = guard_edge;
  it->second.info = info;
  if (inserted) pending_.fetch_add(1, std::memory_order_relaxed);
}

std::optional<TreeInfo> Acker::Xor(uint64_t root_key, uint64_t delta) {
  Shard& shard = ShardFor(root_key);
  MutexLock lock(shard.mutex);
  auto it = shard.trees.find(root_key);
  if (it == shard.trees.end()) return std::nullopt;  // expired or replayed
  it->second.ack_val ^= delta;
  if (it->second.ack_val != 0) return std::nullopt;
  TreeInfo info = it->second.info;
  shard.trees.erase(it);
  size_t prev = pending_.fetch_sub(1, std::memory_order_relaxed);
  TMS_DCHECK_GE(prev, size_t{1}) << "acker pending count underflow";
  return info;
}

std::vector<TreeInfo> Acker::ExpireOlderThan(MicrosT cutoff) {
  std::vector<TreeInfo> expired;
  for (Shard& shard : shards_) {
    MutexLock lock(shard.mutex);
    for (auto it = shard.trees.begin(); it != shard.trees.end();) {
      if (it->second.info.created_micros <= cutoff) {
        // A balanced (zero) accumulator may not linger as a tracked tree:
        // completion erases the entry under the same lock, so an expiring
        // entry must still be XOR-unbalanced.
        TMS_DCHECK(it->second.ack_val != 0)
            << "expiring acker tree " << it->first
            << " has a balanced accumulator (completion was missed)";
        expired.push_back(it->second.info);
        it = shard.trees.erase(it);
        size_t prev = pending_.fetch_sub(1, std::memory_order_relaxed);
        TMS_DCHECK_GE(prev, size_t{1}) << "acker pending count underflow";
      } else {
        ++it;
      }
    }
  }
  return expired;
}

std::optional<TreeInfo> Acker::Discard(uint64_t root_key) {
  Shard& shard = ShardFor(root_key);
  MutexLock lock(shard.mutex);
  auto it = shard.trees.find(root_key);
  if (it == shard.trees.end()) return std::nullopt;
  TreeInfo info = it->second.info;
  shard.trees.erase(it);
  size_t prev = pending_.fetch_sub(1, std::memory_order_relaxed);
  TMS_DCHECK_GE(prev, size_t{1}) << "acker pending count underflow";
  return info;
}

std::vector<TreeInfo> Acker::DiscardSpout(int spout_component, int spout_task) {
  std::vector<TreeInfo> discarded;
  for (Shard& shard : shards_) {
    MutexLock lock(shard.mutex);
    for (auto it = shard.trees.begin(); it != shard.trees.end();) {
      if (it->second.info.spout_component == spout_component &&
          it->second.info.spout_task == spout_task) {
        discarded.push_back(it->second.info);
        it = shard.trees.erase(it);
        size_t prev = pending_.fetch_sub(1, std::memory_order_relaxed);
        TMS_DCHECK_GE(prev, size_t{1}) << "acker pending count underflow";
      } else {
        ++it;
      }
    }
  }
  return discarded;
}

}  // namespace reliability
}  // namespace insight
