#include "reliability/acker.h"

#include "common/logging.h"

namespace insight {
namespace reliability {

namespace {

// splitmix64 finalizer: spreads sequential / structured keys across shards.
uint64_t MixKey(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Acker::Acker(size_t num_shards) : shards_(num_shards == 0 ? 1 : num_shards) {}

Acker::Shard& Acker::ShardFor(uint64_t root_key) {
  return shards_[MixKey(root_key) % shards_.size()];
}

void Acker::Register(const TreeInfo& info, uint64_t guard_edge) {
  INSIGHT_CHECK(guard_edge != 0) << "acker guard edge must be nonzero";
  Shard& shard = ShardFor(info.root_key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  Entry& entry = shard.trees[info.root_key];
  entry.ack_val = guard_edge;
  entry.info = info;
  pending_.fetch_add(1, std::memory_order_relaxed);
}

std::optional<TreeInfo> Acker::Xor(uint64_t root_key, uint64_t delta) {
  Shard& shard = ShardFor(root_key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.trees.find(root_key);
  if (it == shard.trees.end()) return std::nullopt;  // expired or replayed
  it->second.ack_val ^= delta;
  if (it->second.ack_val != 0) return std::nullopt;
  TreeInfo info = it->second.info;
  shard.trees.erase(it);
  pending_.fetch_sub(1, std::memory_order_relaxed);
  return info;
}

std::vector<TreeInfo> Acker::ExpireOlderThan(MicrosT cutoff) {
  std::vector<TreeInfo> expired;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (auto it = shard.trees.begin(); it != shard.trees.end();) {
      if (it->second.info.created_micros <= cutoff) {
        expired.push_back(it->second.info);
        it = shard.trees.erase(it);
        pending_.fetch_sub(1, std::memory_order_relaxed);
      } else {
        ++it;
      }
    }
  }
  return expired;
}

}  // namespace reliability
}  // namespace insight
