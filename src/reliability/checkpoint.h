#ifndef INSIGHT_RELIABILITY_CHECKPOINT_H_
#define INSIGHT_RELIABILITY_CHECKPOINT_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/mutex.h"
#include "common/thread.h"
#include "common/thread_annotations.h"
#include "reliability/state_store.h"

namespace insight {
namespace reliability {

/// Bounded FIFO set of tuple dedup ids. A checkpointed task records the
/// dedup id of every tuple it executes; a replayed tuple whose id is still
/// in the ledger is acked without re-execution, so replays cannot
/// double-count into restored state (effectively-once). The ledger is owned
/// by one executor (not thread-safe) and is serialized into the task's
/// checkpoint, so the suppression set rolls back exactly as far as the state
/// does.
class DedupLedger {
 public:
  explicit DedupLedger(size_t capacity);

  bool Contains(uint64_t id) const { return set_.count(id) > 0; }

  /// Records `id`, evicting the oldest entry once past capacity. Re-inserting
  /// a present id refreshes nothing (FIFO order is arrival order).
  void Insert(uint64_t id);

  void Clear();
  size_t size() const { return fifo_.size(); }
  size_t capacity() const { return capacity_; }

  void Serialize(ByteWriter* writer) const;
  /// Replaces the contents from serialized form; false (ledger cleared) on
  /// truncation or if the stored size exceeds this ledger's capacity.
  bool Deserialize(ByteReader* reader);

 private:
  size_t capacity_;
  std::deque<uint64_t> fifo_;
  std::unordered_set<uint64_t> set_;
};

/// Takes asynchronous per-task checkpoints. Executors serialize their state
/// at batch boundaries (the copy-on-snapshot step) and hand the bytes to
/// Submit; a background persister thread writes them through the StateStore
/// so the executor never blocks on storage. At most one checkpoint per task
/// is in flight, epochs are strictly increasing per task, and the completion
/// callback (which the runtime uses to flush checkpoint-deferred acks) fires
/// only after the write is durable.
class CheckpointCoordinator {
 public:
  struct Options {
    /// Minimum spacing between checkpoints of one task.
    MicrosT interval_micros = 100'000;
    /// Destination store; required, not owned.
    StateStore* store = nullptr;
    const Clock* clock = SystemClock::Get();
  };

  /// Persist outcome for one submitted snapshot. Runs on the persister
  /// thread with no coordinator lock held.
  using DoneFn = std::function<void(uint64_t epoch, const Status& status)>;

  explicit CheckpointCoordinator(Options options);
  ~CheckpointCoordinator();

  CheckpointCoordinator(const CheckpointCoordinator&) = delete;
  CheckpointCoordinator& operator=(const CheckpointCoordinator&) = delete;

  /// Registers a task's durable key before Start; returns its slot id.
  int RegisterTask(std::string key);

  void Start();
  /// Drains queued snapshots, then joins the persister — submitted
  /// checkpoints still reach the store (and their DoneFn still fires) during
  /// shutdown, so deferred acks are not stranded.
  void Stop();

  /// True when `slot` should snapshot now: the interval elapsed and no
  /// persist is in flight.
  bool Due(int slot, MicrosT now) const;
  /// Like Due without the interval gate — used to force a flush when an
  /// idle task is sitting on deferred acks.
  bool CanSubmit(int slot) const;

  /// Hands one serialized snapshot to the persister; returns the epoch
  /// assigned to it. Caller must have seen Due/CanSubmit true on this
  /// executor (one in-flight checkpoint per task is an invariant).
  uint64_t Submit(int slot, std::string bytes, DoneFn done);

  /// Restore path: blocks until no persist is in flight for `slot`, then
  /// loads the latest durable snapshot (NotFound if none). The barrier keeps
  /// a restore from racing the in-flight persist whose completion would
  /// flush acks for executions the loaded state has rolled back. Raises the
  /// slot's epoch so the next checkpoint continues the restored line.
  Result<StateStore::Snapshot> BarrierAndLoad(int slot);

  uint64_t persisted() const { return persisted_.load(std::memory_order_relaxed); }
  uint64_t persist_failures() const {
    return persist_failures_.load(std::memory_order_relaxed);
  }
  uint64_t bytes_persisted() const {
    return bytes_persisted_.load(std::memory_order_relaxed);
  }

 private:
  struct Slot {
    std::string key;
    MicrosT next_due = 0;
    bool in_flight = false;
    uint64_t last_epoch = 0;
    std::string pending_bytes;
    DoneFn pending_done;
  };

  void PersisterLoop();

  const Options options_;
  mutable Mutex mutex_{TMS_LOCK_RANK(20)};
  CondVar work_cv_;   // persister wakeup
  CondVar idle_cv_;   // per-slot in-flight drained (restore barrier)
  std::vector<std::unique_ptr<Slot>> slots_ GUARDED_BY(mutex_);
  std::deque<int> queue_ GUARDED_BY(mutex_);
  bool started_ GUARDED_BY(mutex_) = false;
  bool stop_ GUARDED_BY(mutex_) = false;
  Thread persister_;

  std::atomic<uint64_t> persisted_{0};
  std::atomic<uint64_t> persist_failures_{0};
  std::atomic<uint64_t> bytes_persisted_{0};
};

}  // namespace reliability
}  // namespace insight

#endif  // INSIGHT_RELIABILITY_CHECKPOINT_H_
