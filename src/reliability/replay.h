#ifndef INSIGHT_RELIABILITY_REPLAY_H_
#define INSIGHT_RELIABILITY_REPLAY_H_

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "cep/event.h"
#include "common/clock.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace insight {
namespace reliability {

/// Retry behaviour for failed (timed-out) tuple trees.
struct ReplayPolicy {
  /// Re-emissions allowed after the first attempt; when exhausted the tree
  /// is permanently failed and the spout's Fail callback fires.
  int max_replays = 3;
  /// Delay before the first replay; each further replay multiplies it by
  /// `backoff_factor`.
  MicrosT backoff_base_micros = 10'000;
  double backoff_factor = 2.0;
  /// Jitter fraction in [0, 1): each scheduled delay is multiplied by a
  /// factor drawn deterministically from [1 - jitter, 1 + jitter) based on
  /// (jitter_seed, message id, attempt). Trees that expire in the same
  /// supervisor sweep then spread out instead of replaying in lockstep — the
  /// replay-storm analogue of thundering-herd jitter. 0 = no jitter.
  double backoff_jitter = 0.0;
  uint64_t jitter_seed = 0;
};

/// Holds the payload of every in-flight root tuple so a timed-out tree can
/// be re-emitted from the runtime without the spout keeping its own copy
/// (Storm keeps the equivalent pending map in the spout executor).
class ReplayBuffer {
 public:
  explicit ReplayBuffer(ReplayPolicy policy) : policy_(policy) {}

  ReplayBuffer(const ReplayBuffer&) = delete;
  ReplayBuffer& operator=(const ReplayBuffer&) = delete;

  /// Remembers a root tuple's values on first emission. Payloads are scoped
  /// by the emitting spout task: message ids only need to be unique among
  /// the in-flight messages of one (spout_component, spout_task) — two
  /// spouts reusing the same id space do not collide. A duplicate id within
  /// one spout task replaces the stored payload.
  void Store(uint64_t message_id, int spout_component, int spout_task,
             std::vector<cep::Value> values);

  /// The tree completed: drop the stored payload and any scheduled retry.
  /// Returns false if the id was unknown (already acked or given up).
  bool Ack(uint64_t message_id, int spout_component, int spout_task);

  /// The tree timed out. Schedules a backed-off retry on the owning spout
  /// task and returns true, or — when `max_replays` is exhausted or the id
  /// is unknown — erases the payload and returns false (permanent failure).
  bool Fail(uint64_t message_id, int spout_component, int spout_task,
            MicrosT now);

  struct Due {
    uint64_t message_id = 0;
    int attempt = 0;  // 1 for the first replay
    std::vector<cep::Value> values;
  };

  /// Retries owned by (spout_component, spout_task) whose backoff elapsed.
  std::vector<Due> TakeDue(int spout_component, int spout_task, MicrosT now);

  /// Permanently abandons one message: drops the payload and any scheduled
  /// retry regardless of remaining replay budget. Returns true if the id was
  /// known. Crash-loop containment uses this when a tree's spout task is
  /// permanently failed.
  bool Discard(uint64_t message_id, int spout_component, int spout_task);

  /// Abandons every scheduled retry owned by (spout_component, spout_task),
  /// dropping the payloads too. Returns the abandoned message ids so the
  /// runtime can fire their Fail callbacks.
  std::vector<uint64_t> DiscardAllFor(int spout_component, int spout_task);

  /// The delay Fail would schedule for this (message, attempt) pair —
  /// exposed so tests can assert the jitter spread and determinism.
  MicrosT BackoffFor(uint64_t message_id, int attempt) const;

  size_t stored() const;
  size_t scheduled_retries() const;

 private:
  /// Payload map key: message ids are scoped per spout task, so two spouts
  /// (or two tasks of one spout) reusing the same id space stay distinct.
  struct MessageKey {
    uint64_t message_id = 0;
    int spout_component = 0;
    int spout_task = 0;
    bool operator==(const MessageKey&) const = default;
  };
  struct MessageKeyHash {
    size_t operator()(const MessageKey& key) const;
  };
  struct Payload {
    std::vector<cep::Value> values;
    int attempts = 0;  // replays consumed so far
  };
  struct Scheduled {
    MicrosT due_micros = 0;
    uint64_t message_id = 0;
    int spout_component = 0;
    int spout_task = 0;
    int attempt = 0;
  };

  ReplayPolicy policy_;
  mutable Mutex mutex_{TMS_LOCK_RANK(50)};
  std::unordered_map<MessageKey, Payload, MessageKeyHash> payloads_
      GUARDED_BY(mutex_);
  std::deque<Scheduled> scheduled_ GUARDED_BY(mutex_);
};

}  // namespace reliability
}  // namespace insight

#endif  // INSIGHT_RELIABILITY_REPLAY_H_
