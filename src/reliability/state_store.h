#ifndef INSIGHT_RELIABILITY_STATE_STORE_H_
#define INSIGHT_RELIABILITY_STATE_STORE_H_

#include <cstdint>
#include <map>
#include <string>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "dfs/mini_dfs.h"

namespace insight {
namespace reliability {

/// Durable storage behind the CheckpointCoordinator: one logical key per
/// task, versioned by a strictly increasing epoch. Implementations must be
/// thread-safe — the coordinator's persister thread writes while restore
/// paths read.
class StateStore {
 public:
  struct Snapshot {
    uint64_t epoch = 0;
    std::string bytes;
  };

  virtual ~StateStore() = default;

  /// Persists one checkpoint. Epochs per key are strictly increasing (the
  /// coordinator enforces this); implementations may garbage-collect older
  /// epochs once the new one is durable.
  virtual Status Put(const std::string& key, uint64_t epoch,
                     const std::string& bytes) = 0;

  /// Latest persisted snapshot for the key; NotFound when none exists.
  virtual Result<Snapshot> GetLatest(const std::string& key) const = 0;

  /// Drops every epoch of `key`. Unknown keys are a no-op.
  virtual Status Remove(const std::string& key) = 0;
};

/// Process-local store for tests and single-node runs.
class InMemoryStateStore : public StateStore {
 public:
  Status Put(const std::string& key, uint64_t epoch,
             const std::string& bytes) override;
  Result<Snapshot> GetLatest(const std::string& key) const override;
  Status Remove(const std::string& key) override;

 private:
  mutable Mutex mutex_{TMS_LOCK_RANK(40)};
  std::map<std::string, Snapshot> latest_ GUARDED_BY(mutex_);
};

/// MiniDfs-backed store: checkpoints become replicated DFS files under
/// `<root>/<key>/<epoch>`, the way Storm-on-YARN deployments keep operator
/// state in HDFS. The new epoch is written before older epochs are pruned,
/// so a crash mid-write leaves at worst extra epochs behind, never zero;
/// GetLatest always picks the highest complete epoch.
class DfsStateStore : public StateStore {
 public:
  explicit DfsStateStore(dfs::MiniDfs* dfs, std::string root = "/checkpoints");

  Status Put(const std::string& key, uint64_t epoch,
             const std::string& bytes) override;
  Result<Snapshot> GetLatest(const std::string& key) const override;
  Status Remove(const std::string& key) override;

 private:
  std::string DirFor(const std::string& key) const;

  dfs::MiniDfs* dfs_;  // not owned
  std::string root_;
};

/// Filesystem-backed store for the distributed runtime: every worker
/// process of a cluster points at the same root directory, so a restarted
/// worker incarnation finds the snapshots its predecessor persisted.
/// Layout mirrors DfsStateStore (`<root>/<key>/<epoch>`); each epoch file
/// is written to a temp name and renamed into place, so readers only ever
/// see complete snapshots, and older epochs are pruned after the new one
/// is durable.
class FileStateStore : public StateStore {
 public:
  /// Creates `root` (and parents) if missing.
  explicit FileStateStore(std::string root);

  Status Put(const std::string& key, uint64_t epoch,
             const std::string& bytes) override;
  Result<Snapshot> GetLatest(const std::string& key) const override;
  Status Remove(const std::string& key) override;

 private:
  std::string DirFor(const std::string& key) const;

  std::string root_;
  mutable Mutex mutex_{TMS_LOCK_RANK(40)};  // serializes directory-level mutations per store
};

}  // namespace reliability
}  // namespace insight

#endif  // INSIGHT_RELIABILITY_STATE_STORE_H_
