#include "reliability/fault_injector.h"

namespace insight {
namespace reliability {

FaultInjector::FaultInjector(FaultPlan plan)
    : plan_(std::move(plan)), rng_(plan_.seed) {}

bool FaultInjector::ShouldCrash(const std::string& component, int task) {
  bool has_rule = false;
  for (const FaultPlan::CrashRule& rule : plan_.crashes) {
    if (rule.component == component && (rule.task < 0 || rule.task == task)) {
      has_rule = true;
      break;
    }
  }
  if (!has_rule) return false;

  MutexLock lock(mutex_);
  uint64_t count = ++execution_counts_[{component, task}];
  for (const FaultPlan::CrashRule& rule : plan_.crashes) {
    if (rule.component != component || (rule.task >= 0 && rule.task != task)) {
      continue;
    }
    if (rule.after_executions == 0) continue;
    bool hit = rule.repeat ? (count % rule.after_executions == 0)
                           : (count == rule.after_executions);
    if (hit) {
      crashes_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

FaultInjector::RouteDecision FaultInjector::OnRoute(const std::string& source,
                                                    const std::string& dest) {
  RouteDecision decision;
  if (plan_.routes.empty()) return decision;
  MutexLock lock(mutex_);
  for (const FaultPlan::RouteRule& rule : plan_.routes) {
    if (!rule.source.empty() && rule.source != source) continue;
    if (!rule.dest.empty() && rule.dest != dest) continue;
    if (rule.drop_probability > 0 && rng_.Bernoulli(rule.drop_probability)) {
      decision.drop = true;
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return decision;  // a dropped tuple can't also be duplicated/delayed
    }
    if (rule.duplicate_probability > 0 &&
        rng_.Bernoulli(rule.duplicate_probability)) {
      decision.duplicate = true;
      duplicated_.fetch_add(1, std::memory_order_relaxed);
    }
    if (rule.delay_probability > 0 && rule.delay_micros > 0 &&
        rng_.Bernoulli(rule.delay_probability)) {
      decision.delay_micros += rule.delay_micros;
      delayed_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return decision;
}

}  // namespace reliability
}  // namespace insight
