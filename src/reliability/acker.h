#ifndef INSIGHT_RELIABILITY_ACKER_H_
#define INSIGHT_RELIABILITY_ACKER_H_

#include <atomic>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace insight {
namespace reliability {

/// Identity of one tracked tuple tree. `root_key` is the key tuples carry
/// through the topology (spout task and message id mixed with the replay
/// attempt, so stale acks from a timed-out attempt cannot corrupt its
/// replacement and same-numbered messages of different spouts stay
/// distinct); `message_id` is the spout-assigned id reported back via
/// Ack/Fail.
struct TreeInfo {
  uint64_t root_key = 0;
  uint64_t message_id = 0;
  int spout_component = 0;
  int spout_task = 0;
  int attempt = 0;  // 0 = first emission, n = nth replay
  MicrosT created_micros = 0;
  /// Observability: nonzero iff this attempt's root emission was sampled
  /// for tracing. Each replay attempt gets a fresh trace (the previous one
  /// is abandoned), so the id rides with the attempt, not the message.
  uint64_t trace_id = 0;
};

/// Storm's acker: one 64-bit XOR accumulator per pending tuple tree.
///
/// Every tuple instance enqueued anywhere in the topology gets a random
/// 64-bit edge id. The emitter XORs the new edge ids into the tree's
/// accumulator; the consumer XORs the consumed edge id back in when it
/// finishes executing the tuple (together with the edge ids of whatever it
/// emitted, as a single batch). Since x ^ x = 0, the accumulator reaches
/// zero exactly when every emitted tuple has been processed — regardless of
/// the order updates arrive in — so tracking an arbitrarily large tree
/// costs O(1) memory. A transient false zero requires a random subset of
/// 64-bit ids to XOR to the current value (probability ~2^-64, the same
/// odds Storm accepts).
///
/// Registration hands the tree a "guard" edge that the caller XORs back out
/// only after all root tuples are enqueued; until then the accumulator
/// cannot reach zero, closing the race where the first root tuple's subtree
/// completes before the second root tuple is registered.
///
/// Sharded by root key so concurrent executors rarely contend.
class Acker {
 public:
  explicit Acker(size_t num_shards = 16);

  Acker(const Acker&) = delete;
  Acker& operator=(const Acker&) = delete;

  /// Starts tracking a tree with accumulator = guard_edge (must be != 0).
  void Register(const TreeInfo& info, uint64_t guard_edge);

  /// XORs `delta` into the tree's accumulator. Returns the tree's info if
  /// the accumulator reached zero (the tree completed; entry erased).
  /// Updates for unknown keys — late acks of expired or replayed attempts —
  /// are ignored.
  std::optional<TreeInfo> Xor(uint64_t root_key, uint64_t delta);

  /// Removes and returns every tree registered at or before `cutoff`
  /// (the timeout sweep).
  std::vector<TreeInfo> ExpireOlderThan(MicrosT cutoff);

  /// Stops tracking one tree without completing it (crash-loop containment
  /// failing a tuple found in a dead task's queue). nullopt if unknown.
  std::optional<TreeInfo> Discard(uint64_t root_key);

  /// Removes every tree rooted at (spout_component, spout_task) — used when
  /// the circuit breaker permanently fails a spout executor and its pending
  /// trees can never complete.
  std::vector<TreeInfo> DiscardSpout(int spout_component, int spout_task);

  /// Trees currently tracked.
  size_t pending() const { return pending_.load(std::memory_order_relaxed); }

 private:
  struct Entry {
    uint64_t ack_val = 0;
    TreeInfo info;
  };
  struct Shard {
    mutable Mutex mutex{TMS_LOCK_RANK(60)};
    std::unordered_map<uint64_t, Entry> trees GUARDED_BY(mutex);
  };

  Shard& ShardFor(uint64_t root_key);

  std::vector<Shard> shards_;
  std::atomic<size_t> pending_{0};
};

}  // namespace reliability
}  // namespace insight

#endif  // INSIGHT_RELIABILITY_ACKER_H_
