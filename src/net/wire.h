#ifndef INSIGHT_NET_WIRE_H_
#define INSIGHT_NET_WIRE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "cep/event.h"
#include "common/clock.h"
#include "common/status.h"

namespace insight {
namespace net {

/// The shared immutable value buffer of dsps::Tuple (declared structurally
/// so net/ stays below dsps/ in the layering).
using ValuePayload = std::shared_ptr<const std::vector<cep::Value>>;

/// One tuple inside a batch frame. `payload_index` points into the batch's
/// payload table: tuples produced by one fan-out Emit share a payload
/// object locally, and the table preserves that sharing on the wire — each
/// distinct buffer is serialized once per batch, however many tuples
/// reference it, and the decoder rebuilds one shared buffer per entry.
struct WireTuple {
  uint32_t payload_index = 0;
  /// Replay-stable identity assigned by the sending worker (0 = untracked).
  /// The receiving worker roots the tuple under this id, so the dedup
  /// chain — and effectively-once suppression — survives the network hop.
  uint64_t wire_id = 0;
  MicrosT spout_time = 0;
  /// Shedding tier (dsps::TuplePriority as u8, 1 = normal), carried across
  /// the hop so the receiving worker's overload protection sheds by the
  /// sender-side priority. net/ stays below dsps/, hence the raw byte.
  uint8_t priority = 1;
};

/// One kTupleBatch frame: every remote edge rides the sender's Outbox
/// batching, so a batch becomes exactly one frame.
///
///   u32 magic | string stream | u32 sender_task | u64 seq |
///   u32 payload_count | payloads (u32 value_count, values...) |
///   u32 tuple_count |
///   tuples (u32 payload_index, u64 wire_id, i64 time, u8 priority)
///
/// `seq` numbers frames per (stream, sender_task, destination) channel;
/// the receiver acks resolved sequences (kHopAck) and drops duplicates of
/// sequences it has already seen from the same sender incarnation.
struct TupleBatch {
  std::string stream;        // source component name
  uint32_t sender_task = 0;  // task index within the source component
  uint64_t seq = 0;
  std::vector<ValuePayload> payloads;
  std::vector<WireTuple> tuples;
};

constexpr uint32_t kTupleBatchMagic = 0x31425754;  // "TWB1"

void EncodeTupleBatch(const TupleBatch& batch, std::string* out);

/// Rejects truncated or corrupt payloads (bad magic, out-of-range payload
/// index, trailing bytes, absurd counts) with a clean error.
Status DecodeTupleBatch(const std::string& payload, TupleBatch* out);

/// Accumulates tuples for one outgoing frame, deduplicating payloads by
/// buffer identity so shared payloads serialize once per batch.
class TupleBatchBuilder {
 public:
  TupleBatchBuilder(std::string stream, uint32_t sender_task)
      : stream_(std::move(stream)), sender_task_(sender_task) {}

  void Add(const ValuePayload& payload, uint64_t wire_id, MicrosT spout_time,
           uint8_t priority = 1);

  size_t tuple_count() const { return batch_.tuples.size(); }
  bool empty() const { return batch_.tuples.empty(); }

  /// Finalizes the batch under `seq` and resets the builder.
  TupleBatch Take(uint64_t seq);

 private:
  std::string stream_;
  uint32_t sender_task_ = 0;
  TupleBatch batch_;
  std::unordered_map<const void*, uint32_t> payload_index_;
};

}  // namespace net
}  // namespace insight

#endif  // INSIGHT_NET_WIRE_H_
