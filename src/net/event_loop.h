#ifndef INSIGHT_NET_EVENT_LOOP_H_
#define INSIGHT_NET_EVENT_LOOP_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/mutex.h"
#include "common/thread.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "net/frame.h"
#include "net/socket.h"

namespace insight {
namespace net {

/// Single-threaded poll(2) event loop multiplexing listeners and framed TCP
/// connections, with thread-safe outbound sends.
///
/// Threading model: one internal loop thread owns all socket I/O and frame
/// decoding and invokes every callback (no callback runs concurrently with
/// another). Other threads may call Send / Close / SetReadPaused / Connect
/// at any time; those only touch the mutex-guarded write queues and op
/// flags, then wake the loop through a self-pipe. Callbacks are invoked
/// with no internal lock held, so they may freely call back into the loop.
///
/// Backpressure: writes are queued per connection and drained as POLLOUT
/// allows (QueuedBytes exposes the depth — senders above the loop bound
/// their own in-flight windows, which bounds these queues transitively);
/// reads can be paused per connection (SetReadPaused), which translates
/// into TCP backpressure toward the peer.
class EventLoop {
 public:
  using ConnId = uint64_t;

  struct Callbacks {
    /// Inbound connection accepted on the listener registered with `tag`.
    std::function<void(ConnId, int tag)> on_accept;
    /// One complete frame decoded.
    std::function<void(ConnId, Frame)> on_frame;
    /// Connection gone: peer EOF, I/O error, corrupt framing, or local
    /// Close. Fired exactly once per connection, from the loop thread.
    std::function<void(ConnId, const Status&)> on_close;
    /// Periodic callback on the loop thread (reconnects, flushes, timers).
    std::function<void()> on_tick;
    /// Transport accounting hooks (frames, bytes), called per send/receive.
    std::function<void(uint64_t, uint64_t)> on_sent;
    std::function<void(uint64_t, uint64_t)> on_received;
  };

  EventLoop(Callbacks callbacks, MicrosT tick_interval_micros);
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Binds a listener on 127.0.0.1:`port` (0 = ephemeral); returns the
  /// bound port. Must be called before Start.
  Result<uint16_t> Listen(uint16_t port, int tag);

  /// Spawns the loop thread.
  Status Start();
  /// Stops and joins the loop thread, closing every connection without
  /// firing further callbacks. Idempotent.
  void Stop();

  /// Connects to 127.0.0.1:`port` and registers the connection. Safe from
  /// any thread (including on_tick). Loopback connects resolve immediately,
  /// so failure (e.g. ECONNREFUSED while the peer restarts) is synchronous.
  Result<ConnId> Connect(uint16_t port);

  /// Queues one frame for asynchronous delivery. Returns false when the
  /// connection is unknown or closing (the frame is dropped — callers
  /// relying on delivery keep their own retransmit buffers).
  bool Send(ConnId id, const Frame& frame) TMS_NON_BLOCKING;

  /// Requests an asynchronous close; on_close fires from the loop thread.
  void Close(ConnId id);

  /// Pauses/resumes reading from the connection (receiver backpressure).
  void SetReadPaused(ConnId id, bool paused);

  /// Bytes queued but not yet written to the socket.
  size_t QueuedBytes(ConnId id) const;

 private:
  /// Per-connection state. `sock` and `decoder` are loop-thread-only; the
  /// remaining fields are guarded by mutex_ (the annotation cannot be
  /// expressed on a sibling struct's members, same as
  /// MetricsRegistry::ComponentStats).
  struct Conn {
    Socket sock;
    FrameDecoder decoder;
    std::string out;
    size_t out_pos = 0;
    bool paused = false;
    bool closing = false;
  };

  void Run();
  void Wake() TMS_NON_BLOCKING;
  /// Reads until EAGAIN/EOF, dispatching decoded frames. Returns a non-OK
  /// status when the connection must be closed. Runs on the loop thread;
  /// one blocked handler stalls every connection, hence TMS_NON_BLOCKING.
  Status DrainReadable(ConnId id, Conn* conn) TMS_NON_BLOCKING;
  /// Writes queued bytes until EAGAIN or empty.
  Status FlushWritable(Conn* conn) TMS_NON_BLOCKING;
  void CloseInternal(ConnId id, const Status& status) TMS_NON_BLOCKING;

  Callbacks callbacks_;
  MicrosT tick_interval_micros_;
  std::vector<std::pair<Socket, int>> listeners_;  // loop-thread after Start
  int wake_read_ = -1;
  int wake_write_ = -1;
  Thread thread_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> next_id_{1};

  mutable Mutex mutex_{TMS_LOCK_RANK(80)};
  std::map<ConnId, std::unique_ptr<Conn>> conns_ GUARDED_BY(mutex_);
};

}  // namespace net
}  // namespace insight

#endif  // INSIGHT_NET_EVENT_LOOP_H_
