#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>

namespace insight {
namespace net {

namespace {

Status Errno(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

sockaddr_in LoopbackAddr(uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  return addr;
}

}  // namespace

void Socket::Reset(int fd) {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

Status SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return Errno("fcntl(F_GETFL)");
  if (::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl(F_SETFL, O_NONBLOCK)");
  }
  return Status::OK();
}

Status SetNoDelay(int fd) {
  int one = 1;
  if (::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) < 0) {
    return Errno("setsockopt(TCP_NODELAY)");
  }
  return Status::OK();
}

Result<Socket> TcpListen(uint16_t port, uint16_t* bound_port, int backlog) {
  Socket sock(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!sock.valid()) return Errno("socket");
  int one = 1;
  ::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = LoopbackAddr(port);
  if (::bind(sock.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return Errno("bind(127.0.0.1:" + std::to_string(port) + ")");
  }
  if (::listen(sock.fd(), backlog) < 0) return Errno("listen");
  socklen_t len = sizeof(addr);
  if (::getsockname(sock.fd(), reinterpret_cast<sockaddr*>(&addr), &len) <
      0) {
    return Errno("getsockname");
  }
  if (bound_port != nullptr) *bound_port = ntohs(addr.sin_port);
  Status status = SetNonBlocking(sock.fd());
  if (!status.ok()) return status;
  return sock;
}

Result<Socket> TcpConnect(uint16_t port) {
  Socket sock(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!sock.valid()) return Errno("socket");
  sockaddr_in addr = LoopbackAddr(port);
  int rc;
  do {
    rc = ::connect(sock.fd(), reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    return Errno("connect(127.0.0.1:" + std::to_string(port) + ")");
  }
  Status status = SetNonBlocking(sock.fd());
  if (!status.ok()) return status;
  status = SetNoDelay(sock.fd());
  if (!status.ok()) return status;
  return sock;
}

Result<Socket> TcpAccept(int listen_fd) {
  int fd;
  do {
    fd = ::accept4(listen_fd, nullptr, nullptr, SOCK_CLOEXEC);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK) return Socket();
    return Errno("accept");
  }
  Socket sock(fd);
  Status status = SetNonBlocking(fd);
  if (!status.ok()) return status;
  status = SetNoDelay(fd);
  if (!status.ok()) return status;
  return sock;
}

}  // namespace net
}  // namespace insight
