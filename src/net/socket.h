#ifndef INSIGHT_NET_SOCKET_H_
#define INSIGHT_NET_SOCKET_H_

#include <cstdint>

#include "common/status.h"

namespace insight {
namespace net {

/// RAII owner of a file descriptor. Moves transfer ownership; the destructor
/// closes. The distributed runtime is loopback-only (the paper's cluster
/// runs one worker per node of a trusted LAN; we model it as processes on
/// one host), so every helper below binds or connects to 127.0.0.1.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Reset(); }

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      Reset(other.fd_);
      other.fd_ = -1;
    }
    return *this;
  }

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  /// Releases ownership without closing.
  int Release() {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void Reset(int fd = -1);

 private:
  int fd_ = -1;
};

/// Switches the descriptor to non-blocking mode.
Status SetNonBlocking(int fd);
/// Disables Nagle; latency matters more than tinygrams for framed batches.
Status SetNoDelay(int fd);

/// Listens on 127.0.0.1:`port` (0 = kernel-chosen ephemeral port, the
/// default for parallel test runs). The bound port is written to
/// `*bound_port`; the returned socket is non-blocking.
Result<Socket> TcpListen(uint16_t port, uint16_t* bound_port,
                         int backlog = 64);

/// Connects to 127.0.0.1:`port`. The connect itself is blocking (instant or
/// an immediate ECONNREFUSED on loopback); the returned socket is switched
/// to non-blocking with TCP_NODELAY set.
Result<Socket> TcpConnect(uint16_t port);

/// Accepts one pending connection from a non-blocking listener. Returns an
/// invalid Socket (fd < 0) when no connection is pending, an error Status
/// only on real accept failures.
Result<Socket> TcpAccept(int listen_fd);

}  // namespace net
}  // namespace insight

#endif  // INSIGHT_NET_SOCKET_H_
