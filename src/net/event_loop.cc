#include "net/event_loop.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

namespace insight {
namespace net {

namespace {

MicrosT SteadyNowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

EventLoop::EventLoop(Callbacks callbacks, MicrosT tick_interval_micros)
    : callbacks_(std::move(callbacks)),
      tick_interval_micros_(tick_interval_micros) {
  int fds[2];
  if (::pipe2(fds, O_NONBLOCK | O_CLOEXEC) == 0) {
    wake_read_ = fds[0];
    wake_write_ = fds[1];
  }
}

EventLoop::~EventLoop() {
  Stop();
  if (wake_read_ >= 0) ::close(wake_read_);
  if (wake_write_ >= 0) ::close(wake_write_);
}

Result<uint16_t> EventLoop::Listen(uint16_t port, int tag) {
  if (started_.load()) {
    return Status::FailedPrecondition("Listen after Start");
  }
  uint16_t bound = 0;
  Result<Socket> sock = TcpListen(port, &bound);
  if (!sock.ok()) return sock.status();
  listeners_.emplace_back(std::move(sock).value(), tag);
  return bound;
}

Status EventLoop::Start() {
  if (wake_read_ < 0) return Status::IoError("pipe2 failed");
  bool expected = false;
  if (!started_.compare_exchange_strong(expected, true)) {
    return Status::FailedPrecondition("EventLoop already started");
  }
  thread_ = Thread([this] { Run(); });
  return Status::OK();
}

void EventLoop::Stop() {
  stopping_.store(true);
  Wake();
  if (thread_.joinable()) thread_.join();
  MutexLock lock(mutex_);
  conns_.clear();
}

void EventLoop::Wake() {
  if (wake_write_ < 0) return;
  char byte = 0;
  // A full pipe already guarantees a pending wake-up; ignore the result.
  [[maybe_unused]] ssize_t n = ::write(wake_write_, &byte, 1);
}

Result<EventLoop::ConnId> EventLoop::Connect(uint16_t port) {
  Result<Socket> sock = TcpConnect(port);
  if (!sock.ok()) return sock.status();
  ConnId id = next_id_.fetch_add(1);
  auto conn = std::make_unique<Conn>();
  conn->sock = std::move(sock).value();
  {
    MutexLock lock(mutex_);
    conns_.emplace(id, std::move(conn));
  }
  Wake();
  return id;
}

bool EventLoop::Send(ConnId id, const Frame& frame) {
  bool accepted = false;
  {
    MutexLock lock(mutex_);
    auto it = conns_.find(id);
    if (it != conns_.end() && !it->second->closing) {
      EncodeFrame(frame, &it->second->out);
      accepted = true;
    }
  }
  if (accepted) {
    if (callbacks_.on_sent) {
      callbacks_.on_sent(1, frame.payload.size() + 5);
    }
    Wake();
  }
  return accepted;
}

void EventLoop::Close(ConnId id) {
  {
    MutexLock lock(mutex_);
    auto it = conns_.find(id);
    if (it == conns_.end()) return;
    it->second->closing = true;
  }
  Wake();
}

void EventLoop::SetReadPaused(ConnId id, bool paused) {
  {
    MutexLock lock(mutex_);
    auto it = conns_.find(id);
    if (it == conns_.end()) return;
    it->second->paused = paused;
  }
  Wake();
}

size_t EventLoop::QueuedBytes(ConnId id) const {
  MutexLock lock(mutex_);
  auto it = conns_.find(id);
  if (it == conns_.end()) return 0;
  return it->second->out.size() - it->second->out_pos;
}

Status EventLoop::DrainReadable(ConnId id, Conn* conn) {
  char buffer[65536];
  while (true) {
    ssize_t n = ::recv(conn->sock.fd(), buffer, sizeof(buffer), 0);
    if (n > 0) {
      conn->decoder.Append(buffer, static_cast<size_t>(n));
      uint64_t frames = 0;
      Frame frame;
      while (true) {
        Result<bool> next = conn->decoder.Next(&frame);
        if (!next.ok()) return next.status();
        if (!next.value()) break;
        ++frames;
        if (callbacks_.on_received) {
          callbacks_.on_received(1, frame.payload.size() + 5);
        }
        if (callbacks_.on_frame) callbacks_.on_frame(id, std::move(frame));
        frame = Frame();
        // The callback may have paused or closed this connection; stop
        // dispatching buffered frames once it asked us to.
        MutexLock lock(mutex_);
        auto it = conns_.find(id);
        if (it == conns_.end() || it->second->closing) return Status::OK();
      }
      if (static_cast<size_t>(n) < sizeof(buffer)) return Status::OK();
      continue;
    }
    if (n == 0) return Status::IoError("peer closed connection");
    if (errno == EAGAIN || errno == EWOULDBLOCK) return Status::OK();
    if (errno == EINTR) continue;
    return Status::IoError(std::string("recv: ") + std::strerror(errno));
  }
}

Status EventLoop::FlushWritable(Conn* conn) {
  MutexLock lock(mutex_);
  while (conn->out_pos < conn->out.size()) {
    ssize_t n =
        ::send(conn->sock.fd(), conn->out.data() + conn->out_pos,
               conn->out.size() - conn->out_pos, MSG_NOSIGNAL);
    if (n > 0) {
      conn->out_pos += static_cast<size_t>(n);
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    return Status::IoError(std::string("send: ") + std::strerror(errno));
  }
  if (conn->out_pos == conn->out.size()) {
    conn->out.clear();
    conn->out_pos = 0;
  } else if (conn->out_pos > (1u << 20)) {
    conn->out.erase(0, conn->out_pos);
    conn->out_pos = 0;
  }
  return Status::OK();
}

void EventLoop::CloseInternal(ConnId id, const Status& status) {
  std::unique_ptr<Conn> conn;
  {
    MutexLock lock(mutex_);
    auto it = conns_.find(id);
    if (it == conns_.end()) return;
    conn = std::move(it->second);
    conns_.erase(it);
  }
  if (callbacks_.on_close) callbacks_.on_close(id, status);
}

void EventLoop::Run() {
  std::vector<pollfd> fds;
  std::vector<ConnId> fd_conn;  // conns_[i] id for fds beyond fixed prefix
  MicrosT next_tick = SteadyNowMicros() + (tick_interval_micros_ > 0
                                               ? tick_interval_micros_
                                               : 100'000);
  while (!stopping_.load()) {
    fds.clear();
    fd_conn.clear();
    fds.push_back({wake_read_, POLLIN, 0});
    for (auto& listener : listeners_) {
      fds.push_back({listener.first.fd(), POLLIN, 0});
    }
    {
      MutexLock lock(mutex_);
      for (auto& entry : conns_) {
        short events = 0;
        if (entry.second->closing) {
          events = 0;
        } else {
          if (!entry.second->paused) events |= POLLIN;
          if (entry.second->out_pos < entry.second->out.size()) {
            events |= POLLOUT;
          }
        }
        fds.push_back({entry.second->sock.fd(), events, 0});
        fd_conn.push_back(entry.first);
      }
    }
    MicrosT now = SteadyNowMicros();
    MicrosT wait = next_tick > now ? next_tick - now : 0;
    int timeout_ms = static_cast<int>((wait + 999) / 1000);
    int rc = ::poll(fds.data(), fds.size(), timeout_ms);
    if (rc < 0 && errno != EINTR) break;
    if (stopping_.load()) break;

    if (fds[0].revents & POLLIN) {
      char drain[256];
      while (::read(wake_read_, drain, sizeof(drain)) > 0) {
      }
    }
    size_t base = 1;
    for (size_t i = 0; i < listeners_.size(); ++i) {
      if (!(fds[base + i].revents & POLLIN)) continue;
      while (true) {
        Result<Socket> accepted = TcpAccept(listeners_[i].first.fd());
        if (!accepted.ok() || !accepted.value().valid()) break;
        ConnId id = next_id_.fetch_add(1);
        auto conn = std::make_unique<Conn>();
        conn->sock = std::move(accepted).value();
        {
          MutexLock lock(mutex_);
          conns_.emplace(id, std::move(conn));
        }
        if (callbacks_.on_accept) {
          callbacks_.on_accept(id, listeners_[i].second);
        }
      }
    }
    base += listeners_.size();
    for (size_t i = 0; i + base < fds.size(); ++i) {
      ConnId id = fd_conn[i];
      short revents = fds[base + i].revents;
      Conn* conn;
      bool closing;
      {
        MutexLock lock(mutex_);
        auto it = conns_.find(id);
        if (it == conns_.end()) continue;
        conn = it->second.get();
        closing = it->second->closing;
      }
      if (closing) {
        CloseInternal(id, Status::OK());
        continue;
      }
      if (revents & (POLLERR | POLLNVAL)) {
        CloseInternal(id, Status::IoError("socket error"));
        continue;
      }
      Status status = Status::OK();
      if (revents & (POLLIN | POLLHUP)) {
        // `conn` stays valid: only this thread erases connections, and a
        // callback-requested Close only sets the closing flag.
        status = DrainReadable(id, conn);
      }
      if (status.ok() && (revents & POLLOUT)) {
        status = FlushWritable(conn);
      }
      if (!status.ok()) {
        CloseInternal(id, status);
        continue;
      }
      {
        MutexLock lock(mutex_);
        auto it = conns_.find(id);
        closing = it != conns_.end() && it->second->closing;
      }
      if (closing) CloseInternal(id, Status::OK());
    }
    now = SteadyNowMicros();
    if (now >= next_tick) {
      if (tick_interval_micros_ > 0 && callbacks_.on_tick) {
        callbacks_.on_tick();
      }
      MicrosT interval =
          tick_interval_micros_ > 0 ? tick_interval_micros_ : 100'000;
      next_tick = now + interval;
    }
  }
}

}  // namespace net
}  // namespace insight
