#include "net/frame.h"

#include "common/bytes.h"

namespace insight {
namespace net {

void EncodeFrame(const Frame& frame, std::string* out) {
  ByteWriter writer(out);
  writer.PutU32(static_cast<uint32_t>(frame.payload.size()));
  writer.PutU8(static_cast<uint8_t>(frame.type));
  out->append(frame.payload);
}

Result<bool> FrameDecoder::Next(Frame* out) {
  const size_t kHeader = 5;
  if (buffer_.size() - pos_ < kHeader) return false;
  ByteReader reader(buffer_.data() + pos_, kHeader);
  uint32_t length = 0;
  uint8_t type = 0;
  reader.GetU32(&length);
  reader.GetU8(&type);
  if (length > kMaxFramePayload) {
    return Status::ParseError("frame payload length " +
                              std::to_string(length) + " exceeds limit");
  }
  if (type < kMinFrameType || type > kMaxFrameType) {
    return Status::ParseError("unknown frame type " + std::to_string(type));
  }
  if (buffer_.size() - pos_ < kHeader + length) return false;
  out->type = static_cast<FrameType>(type);
  out->payload.assign(buffer_, pos_ + kHeader, length);
  pos_ += kHeader + length;
  // Compact once the consumed prefix dominates, amortizing the memmove.
  if (pos_ > 4096 && pos_ * 2 > buffer_.size()) {
    buffer_.erase(0, pos_);
    pos_ = 0;
  }
  return true;
}

}  // namespace net
}  // namespace insight
