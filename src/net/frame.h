#ifndef INSIGHT_NET_FRAME_H_
#define INSIGHT_NET_FRAME_H_

#include <cstdint>
#include <string>

#include "common/static_analysis.h"
#include "common/status.h"

namespace insight {
namespace net {

/// Every message on a connection is one length-prefixed frame:
///
///   | u32 payload length (LE) | u8 type | payload bytes |
///
/// The 5-byte header is followed by exactly `length` payload bytes whose
/// layout is type-specific (see dist/proto.h and net/wire.h). The decoder
/// rejects unknown types and oversized lengths instead of resynchronizing —
/// a TCP stream cannot lose bytes, so a bad header means a peer bug or
/// corruption, and the connection is torn down.
enum class FrameType : uint8_t {
  // Control plane (worker <-> supervisor).
  kHello = 1,      // worker registration: id, incarnation, data port
  kPeerTable = 2,  // supervisor broadcast of worker data-plane addresses
  kStatus = 3,     // worker heartbeat + drain progress counters
  kMetrics = 4,    // worker metrics snapshot + window reports
  kShutdown = 5,   // supervisor -> workers: drain or abort
  kFinished = 6,   // worker -> supervisor: runtime drained, exiting

  // Data plane (worker <-> worker).
  kChannelHello = 7,  // sender identification: worker id, incarnation
  kTupleBatch = 8,    // one Outbox batch of serialized tuples (net/wire.h)
  kHopAck = 9,        // receiver -> sender: frame sequences fully resolved
};

constexpr uint8_t kMinFrameType = 1;
constexpr uint8_t kMaxFrameType = 9;

/// Frames above this payload size are rejected by the decoder; a sane batch
/// is kilobytes, so 64 MiB only trips on corruption.
constexpr uint32_t kMaxFramePayload = 64u << 20;

struct Frame {
  FrameType type = FrameType::kHello;
  std::string payload;
};

/// Appends the framed encoding of `frame` to `*out`. Runs on loop and
/// worker threads alike; pure in-memory appends, nothing blocking.
void EncodeFrame(const Frame& frame, std::string* out) TMS_NON_BLOCKING;

/// Incremental decoder over a TCP byte stream: Append received bytes, then
/// pull complete frames with Next until it reports no-frame.
class FrameDecoder {
 public:
  void Append(const char* data, size_t size) TMS_NON_BLOCKING {
    // TMS_ANALYZE_EXEMPT(receive buffer reuses its compacted capacity; the
    // append itself never leaves user space)
    buffer_.append(data, size);
  }

  /// kOk + true: `*out` holds the next complete frame. kOk + false: more
  /// bytes needed. Error: the stream is corrupt (unknown type / oversized
  /// length) and the connection must be dropped.
  Result<bool> Next(Frame* out) TMS_NON_BLOCKING;

  size_t buffered() const { return buffer_.size() - pos_; }

 private:
  std::string buffer_;
  size_t pos_ = 0;  // consumed prefix, compacted lazily
};

}  // namespace net
}  // namespace insight

#endif  // INSIGHT_NET_FRAME_H_
