#include "net/wire.h"

#include <utility>

#include "common/bytes.h"

namespace insight {
namespace net {

namespace {
/// Counts above this are treated as corruption before any allocation
/// happens; the frame layer already caps payloads at 64 MiB, and a million
/// entries cannot fit a legitimate batch.
constexpr uint32_t kSanityLimit = 1u << 20;
}  // namespace

void EncodeTupleBatch(const TupleBatch& batch, std::string* out) {
  ByteWriter writer(out);
  writer.PutU32(kTupleBatchMagic);
  writer.PutString(batch.stream);
  writer.PutU32(batch.sender_task);
  writer.PutU64(batch.seq);
  writer.PutU32(static_cast<uint32_t>(batch.payloads.size()));
  for (const ValuePayload& payload : batch.payloads) {
    const std::vector<cep::Value>& values = *payload;
    writer.PutU32(static_cast<uint32_t>(values.size()));
    for (const cep::Value& value : values) cep::EncodeValue(value, &writer);
  }
  writer.PutU32(static_cast<uint32_t>(batch.tuples.size()));
  for (const WireTuple& tuple : batch.tuples) {
    writer.PutU32(tuple.payload_index);
    writer.PutU64(tuple.wire_id);
    writer.PutI64(tuple.spout_time);
    writer.PutU8(tuple.priority);
  }
}

Status DecodeTupleBatch(const std::string& payload, TupleBatch* out) {
  ByteReader reader(payload);
  uint32_t magic = 0;
  if (!reader.GetU32(&magic)) {
    return Status::ParseError("tuple batch: truncated magic");
  }
  if (magic != kTupleBatchMagic) {
    return Status::ParseError("tuple batch: bad magic");
  }
  if (!reader.GetString(&out->stream)) {
    return Status::ParseError("tuple batch: truncated stream name");
  }
  if (!reader.GetU32(&out->sender_task) || !reader.GetU64(&out->seq)) {
    return Status::ParseError("tuple batch: truncated header");
  }
  uint32_t payload_count = 0;
  if (!reader.GetU32(&payload_count) || payload_count > kSanityLimit) {
    return Status::ParseError("tuple batch: bad payload count");
  }
  out->payloads.clear();
  out->payloads.reserve(payload_count);
  for (uint32_t i = 0; i < payload_count; ++i) {
    uint32_t value_count = 0;
    if (!reader.GetU32(&value_count) || value_count > kSanityLimit) {
      return Status::ParseError("tuple batch: bad value count");
    }
    auto values = std::make_shared<std::vector<cep::Value>>();
    values->reserve(value_count);
    for (uint32_t v = 0; v < value_count; ++v) {
      cep::Value value;
      if (!cep::DecodeValue(&reader, &value)) {
        return Status::ParseError("tuple batch: corrupt value");
      }
      values->push_back(std::move(value));
    }
    out->payloads.push_back(std::move(values));
  }
  uint32_t tuple_count = 0;
  if (!reader.GetU32(&tuple_count) || tuple_count > kSanityLimit) {
    return Status::ParseError("tuple batch: bad tuple count");
  }
  out->tuples.clear();
  out->tuples.reserve(tuple_count);
  for (uint32_t i = 0; i < tuple_count; ++i) {
    WireTuple tuple;
    int64_t spout_time = 0;
    if (!reader.GetU32(&tuple.payload_index) ||
        !reader.GetU64(&tuple.wire_id) || !reader.GetI64(&spout_time) ||
        !reader.GetU8(&tuple.priority)) {
      return Status::ParseError("tuple batch: truncated tuple");
    }
    if (tuple.payload_index >= payload_count) {
      return Status::ParseError("tuple batch: payload index out of range");
    }
    if (tuple.priority > 2) {
      return Status::ParseError("tuple batch: bad priority");
    }
    tuple.spout_time = spout_time;
    out->tuples.push_back(tuple);
  }
  if (!reader.exhausted()) {
    return Status::ParseError("tuple batch: trailing bytes");
  }
  return Status::OK();
}

void TupleBatchBuilder::Add(const ValuePayload& payload, uint64_t wire_id,
                            MicrosT spout_time, uint8_t priority) {
  uint32_t index;
  auto it = payload_index_.find(payload.get());
  if (it != payload_index_.end()) {
    index = it->second;
  } else {
    index = static_cast<uint32_t>(batch_.payloads.size());
    batch_.payloads.push_back(payload);
    payload_index_.emplace(payload.get(), index);
  }
  batch_.tuples.push_back(WireTuple{index, wire_id, spout_time, priority});
}

TupleBatch TupleBatchBuilder::Take(uint64_t seq) {
  TupleBatch batch = std::move(batch_);
  batch.stream = stream_;
  batch.sender_task = sender_task_;
  batch.seq = seq;
  batch_ = TupleBatch();
  payload_index_.clear();
  return batch;
}

}  // namespace net
}  // namespace insight
