#include "storage/table_store.h"

#include <set>

namespace insight {
namespace storage {

int QueryResult::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i] == name) return static_cast<int>(i);
  }
  return -1;
}

Status TableStore::CreateTable(const std::string& name,
                               std::vector<Column> columns) {
  MutexLock lock(mutex_);
  if (tables_.count(name) > 0) {
    return Status::AlreadyExists("table '" + name + "' already exists");
  }
  tables_[name].columns = std::move(columns);
  return Status::OK();
}

Status TableStore::DropTable(const std::string& name) {
  MutexLock lock(mutex_);
  if (tables_.erase(name) == 0) {
    return Status::NotFound("no table '" + name + "'");
  }
  return Status::OK();
}

bool TableStore::HasTable(const std::string& name) const {
  MutexLock lock(mutex_);
  return tables_.count(name) > 0;
}

Result<const TableStore::Table*> TableStore::Find(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no table '" + name + "'");
  return &it->second;
}

Status TableStore::Insert(const std::string& table, RowValues row) {
  MutexLock lock(mutex_);
  auto it = tables_.find(table);
  if (it == tables_.end()) return Status::NotFound("no table '" + table + "'");
  if (row.size() != it->second.columns.size()) {
    return Status::InvalidArgument(
        "row has " + std::to_string(row.size()) + " values; table '" + table +
        "' has " + std::to_string(it->second.columns.size()) + " columns");
  }
  it->second.rows.push_back(std::move(row));
  return Status::OK();
}

Status TableStore::Truncate(const std::string& table) {
  MutexLock lock(mutex_);
  auto it = tables_.find(table);
  if (it == tables_.end()) return Status::NotFound("no table '" + table + "'");
  it->second.rows.clear();
  return Status::OK();
}

Result<QueryResult> TableStore::Select(
    const std::string& table, const std::vector<Projection>& projections,
    const std::function<bool(const QueryResult&, const RowValues&)>& predicate,
    bool distinct) const {
  MutexLock lock(mutex_);
  INSIGHT_ASSIGN_OR_RETURN(const Table* t, Find(table));
  ++query_count_;

  // Schema view handed to predicates/computed projections.
  QueryResult schema;
  for (const Column& c : t->columns) schema.columns.push_back(c.name);

  QueryResult out;
  std::vector<int> plain_indexes(projections.size(), -1);
  for (size_t i = 0; i < projections.size(); ++i) {
    out.columns.push_back(projections[i].name);
    if (!projections[i].compute) {
      int idx = schema.ColumnIndex(projections[i].name);
      if (idx < 0) {
        return Status::NotFound("table '" + table + "' has no column '" +
                                projections[i].name + "'");
      }
      plain_indexes[i] = idx;
    }
  }

  std::set<std::string> seen;
  for (const RowValues& row : t->rows) {
    if (predicate && !predicate(schema, row)) continue;
    RowValues projected;
    projected.reserve(projections.size());
    for (size_t i = 0; i < projections.size(); ++i) {
      if (projections[i].compute) {
        projected.push_back(projections[i].compute(schema, row));
      } else {
        projected.push_back(row[static_cast<size_t>(plain_indexes[i])]);
      }
    }
    if (distinct) {
      std::string key;
      for (const Value& v : projected) {
        key += v.ToString();
        key += '\x1f';
      }
      if (!seen.insert(key).second) continue;
    }
    out.rows.push_back(std::move(projected));
  }
  return out;
}

Result<QueryResult> TableStore::SelectAll(const std::string& table) const {
  std::vector<Projection> projections;
  {
    MutexLock lock(mutex_);
    INSIGHT_ASSIGN_OR_RETURN(const Table* t, Find(table));
    for (const Column& c : t->columns) projections.push_back({c.name, nullptr});
  }
  return Select(table, projections);
}

Result<size_t> TableStore::RowCount(const std::string& table) const {
  MutexLock lock(mutex_);
  INSIGHT_ASSIGN_OR_RETURN(const Table* t, Find(table));
  return t->rows.size();
}

std::vector<std::string> TableStore::TableNames() const {
  MutexLock lock(mutex_);
  std::vector<std::string> names;
  for (const auto& [name, table] : tables_) names.push_back(name);
  return names;
}

size_t TableStore::query_count() const {
  MutexLock lock(mutex_);
  return query_count_;
}

int64_t TableStore::charged_cost_micros() const {
  MutexLock lock(mutex_);
  return static_cast<int64_t>(query_count_) * options_.simulated_query_cost_micros;
}

std::vector<Column> StatisticsColumns() {
  return {{"areaId", ValueType::kInt},      {"currentHour", ValueType::kInt},
          {"dateType", ValueType::kString}, {"attr_mean", ValueType::kDouble},
          {"attr_stdv", ValueType::kDouble}, {"sample_count", ValueType::kInt}};
}

std::string StatisticsTableName(const std::string& attribute) {
  return "statistics_" + attribute;
}

Result<std::vector<ThresholdRow>> QueryThresholds(const TableStore& store,
                                                  const std::string& attribute,
                                                  double s) {
  std::vector<TableStore::Projection> projections;
  projections.push_back(
      {"thresholdLocation",
       [s](const QueryResult& schema, const RowValues& row) -> Value {
         double mean = row[static_cast<size_t>(schema.ColumnIndex("attr_mean"))]
                           .AsDouble();
         double stdv = row[static_cast<size_t>(schema.ColumnIndex("attr_stdv"))]
                           .AsDouble();
         return mean + s * stdv;
       }});
  projections.push_back({"currentHour", nullptr});
  projections.push_back({"dateType", nullptr});
  projections.push_back({"areaId", nullptr});

  INSIGHT_ASSIGN_OR_RETURN(
      QueryResult result,
      store.Select(StatisticsTableName(attribute), projections, nullptr,
                   /*distinct=*/true));
  std::vector<ThresholdRow> rows;
  rows.reserve(result.rows.size());
  for (const RowValues& row : result.rows) {
    ThresholdRow t;
    t.threshold = row[0].AsDouble();
    t.hour = row[1].AsInt();
    t.date_type = row[2].AsString();
    t.location = row[3].AsInt();
    rows.push_back(std::move(t));
  }
  return rows;
}

Result<double> QueryThresholdFor(const TableStore& store,
                                 const std::string& attribute, double s,
                                 int64_t location, int64_t hour,
                                 const std::string& date_type) {
  std::vector<TableStore::Projection> projections;
  projections.push_back(
      {"thresholdLocation",
       [s](const QueryResult& schema, const RowValues& row) -> Value {
         double mean = row[static_cast<size_t>(schema.ColumnIndex("attr_mean"))]
                           .AsDouble();
         double stdv = row[static_cast<size_t>(schema.ColumnIndex("attr_stdv"))]
                           .AsDouble();
         return mean + s * stdv;
       }});
  auto predicate = [&](const QueryResult& schema, const RowValues& row) {
    return row[static_cast<size_t>(schema.ColumnIndex("areaId"))].AsInt() ==
               location &&
           row[static_cast<size_t>(schema.ColumnIndex("currentHour"))].AsInt() ==
               hour &&
           row[static_cast<size_t>(schema.ColumnIndex("dateType"))].AsString() ==
               date_type;
  };
  INSIGHT_ASSIGN_OR_RETURN(
      QueryResult result,
      store.Select(StatisticsTableName(attribute), projections, predicate));
  if (result.rows.empty()) {
    return Status::NotFound("no threshold for location " +
                            std::to_string(location));
  }
  return result.rows[0][0].AsDouble();
}

}  // namespace storage
}  // namespace insight
