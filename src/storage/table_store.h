#ifndef INSIGHT_STORAGE_TABLE_STORE_H_
#define INSIGHT_STORAGE_TABLE_STORE_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cep/event.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace insight {
namespace storage {

using cep::Value;
using cep::ValueType;

/// A row is positionally aligned with its table's columns.
using RowValues = std::vector<Value>;

struct Column {
  std::string name;
  ValueType type;
};

/// Result of a query: projected column names + rows.
struct QueryResult {
  std::vector<std::string> columns;
  std::vector<RowValues> rows;

  int ColumnIndex(const std::string& name) const;
};

/// In-process storage medium standing in for the paper's MySQL server
/// (Section 3.2: "In our current implementation the storage medium is a MySQL
/// server but it can easily be substituted"). Thread-safe: the batch layer
/// writes statistics while Esper engines read thresholds.
///
/// `simulated_query_cost_micros` models the client-server round trip a real
/// MySQL deployment pays per query; strategies charge it into their reported
/// latencies so Figure 10's comparison is meaningful without sleeping.
class TableStore {
 public:
  struct Options {
    /// Modeled per-query round-trip + parse cost (LAN MySQL ballpark).
    int64_t simulated_query_cost_micros = 2500;
  };

  TableStore() = default;
  explicit TableStore(const Options& options) : options_(options) {}

  Status CreateTable(const std::string& name, std::vector<Column> columns);
  Status DropTable(const std::string& name);
  bool HasTable(const std::string& name) const;

  Status Insert(const std::string& table, RowValues row);
  /// Deletes all rows, keeping the schema.
  Status Truncate(const std::string& table);

  /// Projection item: either a plain column or a computed expression over the
  /// row (named). Mirrors `attr_mean + s*attr_stdv AS thresholdLocation`.
  struct Projection {
    std::string name;
    /// When set, computes the output value from the whole row; otherwise the
    /// column with `name` is projected as-is.
    std::function<Value(const QueryResult& schema, const RowValues& row)> compute;
  };

  /// SELECT [DISTINCT] <projections> FROM <table> [WHERE predicate].
  /// A null predicate selects all rows. DISTINCT applies to the projected
  /// row. Charges one simulated query cost (see query_count / charged_cost).
  Result<QueryResult> Select(
      const std::string& table, const std::vector<Projection>& projections,
      const std::function<bool(const QueryResult& schema, const RowValues& row)>&
          predicate = nullptr,
      bool distinct = false) const;

  /// Convenience full-table scan.
  Result<QueryResult> SelectAll(const std::string& table) const;

  Result<size_t> RowCount(const std::string& table) const;
  std::vector<std::string> TableNames() const;

  /// Number of Select calls served (cost accounting for Figure 10).
  size_t query_count() const;
  /// Total modeled query cost so far, in microseconds.
  int64_t charged_cost_micros() const;
  int64_t per_query_cost_micros() const {
    return options_.simulated_query_cost_micros;
  }

 private:
  struct Table {
    std::vector<Column> columns;
    std::vector<RowValues> rows;
  };

  Result<const Table*> Find(const std::string& name) const REQUIRES(mutex_);

  Options options_;
  mutable Mutex mutex_{TMS_LOCK_RANK(65)};
  std::map<std::string, Table> tables_ GUARDED_BY(mutex_);
  mutable size_t query_count_ GUARDED_BY(mutex_) = 0;
};

/// A computed threshold row as consumed by the rules (Listing 2 output).
struct ThresholdRow {
  int64_t location = 0;
  int64_t hour = 0;
  std::string date_type;  // "weekday" / "weekend"
  double threshold = 0.0;
};

/// Statistics table schema shared by the batch layer and the retrieval
/// strategies: statistics_<attribute>(areaId, currentHour, dateType,
/// attr_mean, attr_stdv, sample_count).
std::vector<Column> StatisticsColumns();
std::string StatisticsTableName(const std::string& attribute);

/// Listing 2: SELECT DISTINCT attr_mean + s*attr_stdv AS thresholdLocation,
/// currentHour, dateType, areaId FROM statistics_<attribute>.
Result<std::vector<ThresholdRow>> QueryThresholds(const TableStore& store,
                                                  const std::string& attribute,
                                                  double s);

/// Point lookup used by the per-tuple join strategy: the threshold for one
/// (location, hour, dateType).
Result<double> QueryThresholdFor(const TableStore& store,
                                 const std::string& attribute, double s,
                                 int64_t location, int64_t hour,
                                 const std::string& date_type);

}  // namespace storage
}  // namespace insight

#endif  // INSIGHT_STORAGE_TABLE_STORE_H_
