#include "dist/worker.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <set>
#include <thread>
#include <unordered_map>
#include <utility>

#ifdef __linux__
#include <sys/prctl.h>
#include <csignal>
#endif

#include "common/mutex.h"
#include "dist/channel.h"
#include "dist/placement.h"
#include "dist/proto.h"
#include "dsps/local_runtime.h"
#include "net/event_loop.h"
#include "net/wire.h"
#include "reliability/state_store.h"

namespace insight {
namespace dist {

namespace {

constexpr int kDataListenerTag = 1;

MicrosT SteadyNowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool ParseFlag(const char* arg, const char* name, uint64_t* value) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  char* end = nullptr;
  *value = std::strtoull(arg + len + 1, &end, 10);
  return end != nullptr && *end == '\0';
}

/// One worker process: hosts its slice of the topology in a LocalRuntime,
/// serves the data plane (egress retransmit + ingress dedup), and follows
/// the supervisor's control protocol. All connection-state maps are touched
/// only from the event-loop thread; `mutex_` covers the few fields shared
/// with executor threads (sender_conn_) and the main thread (drain flags).
class Worker {
 public:
  Worker(const WorkerSpec& spec, dsps::Topology topology,
         const DistOptions& options)
      : spec_(spec), topology_(std::move(topology)), options_(options) {}

  int Run() {
    Status status = Setup();
    if (!status.ok()) {
      std::fprintf(stderr, "[worker %u] setup failed: %s\n", spec_.worker_id,
                   status.ToString().c_str());
      return 2;
    }
    std::function<void()> on_stop;
    if (options_.on_worker_start) {
      on_stop = options_.on_worker_start(spec_.worker_id, runtime_.get());
    }
    bool abort = false;
    {
      MutexLock lock(mutex_);
      while (!draining_) shutdown_cv_.Wait(mutex_);
      abort = abort_;
    }
    if (abort) {
      runtime_->Stop();
    } else {
      for (auto& [name, queue] : ingress_queues_) queue->MarkDone();
      runtime_->AwaitCompletion();
    }
    if (on_stop) on_stop();
    for (auto& [name, group] : egress_groups_) {
      for (auto& buffer : group->buffers) buffer->Shutdown();
    }
    SendFinalReports();
    loop_->Stop();
    return abort ? 3 : 0;
  }

 private:
  struct PeerInfo {
    uint64_t incarnation = 0;
    uint16_t data_port = 0;
  };
  struct DestChannel {
    net::EventLoop::ConnId conn = 0;  // 0 = not connected
    MicrosT next_attempt_micros = 0;
  };

  Status Setup() {
    placement_ =
        ResolvePlacement(topology_, options_.placement, options_.num_workers);
    INSIGHT_RETURN_NOT_OK(
        ValidatePlacement(topology_, placement_, options_.num_workers));
    plan_ = PlanForWorker(topology_, placement_, spec_.worker_id);

    dsps::LocalRuntime::Options runtime_options = options_.runtime;
    if (runtime_options.enable_checkpointing) {
      if (options_.checkpoint_dir.empty()) {
        return Status::InvalidArgument(
            "checkpointing enabled but DistOptions::checkpoint_dir is empty");
      }
      // Shared across incarnations of this worker id: the restarted process
      // restores its predecessor's snapshots.
      file_store_ = std::make_unique<reliability::FileStateStore>(
          options_.checkpoint_dir + "/w" + std::to_string(spec_.worker_id));
      runtime_options.state_store = file_store_.get();
    }

    spouts_live_ = std::make_shared<std::atomic<int>>(0);
    for (const std::string& name : plan_.owned) {
      const dsps::ComponentDef* def = topology_.Find(name);
      if (def->is_spout) spouts_live_->fetch_add(def->num_tasks);
    }

    INSIGHT_ASSIGN_OR_RETURN(dsps::Topology sub_topology,
                             BuildWorkerTopology());
    runtime_ = std::make_unique<dsps::LocalRuntime>(std::move(sub_topology),
                                                    runtime_options);

    net::EventLoop::Callbacks callbacks;
    callbacks.on_frame = [this](net::EventLoop::ConnId id, net::Frame frame) {
      OnFrame(id, std::move(frame));
    };
    callbacks.on_close = [this](net::EventLoop::ConnId id,
                                const Status& why) { OnClose(id, why); };
    callbacks.on_tick = [this]() { OnTick(); };
    dsps::MetricsRegistry* metrics = runtime_->metrics();
    callbacks.on_sent = [metrics](uint64_t frames, uint64_t bytes) {
      metrics->RecordFramesSent(frames, bytes);
    };
    callbacks.on_received = [metrics](uint64_t frames, uint64_t bytes) {
      metrics->RecordFramesReceived(frames, bytes);
    };
    loop_ = std::make_unique<net::EventLoop>(std::move(callbacks),
                                            options_.tick_interval_micros);
    INSIGHT_ASSIGN_OR_RETURN(data_port_,
                             loop_->Listen(0, kDataListenerTag));
    INSIGHT_RETURN_NOT_OK(loop_->Start());

    INSIGHT_ASSIGN_OR_RETURN(control_conn_,
                             loop_->Connect(spec_.control_port));
    WorkerHello hello;
    hello.worker_id = spec_.worker_id;
    hello.incarnation = spec_.incarnation;
    hello.data_port = data_port_;
    net::Frame frame;
    frame.type = net::FrameType::kHello;
    EncodeWorkerHello(hello, &frame.payload);
    loop_->Send(control_conn_, frame);

    // Hop-acks travel back on the inbound connection the frames arrived on.
    for (auto& [source, queue] : ingress_queues_) {
      uint32_t owner = plan_.ingress_sources.at(source);
      std::string stream = source;
      queue->SetAckSink([this, owner, stream](uint32_t sender_task,
                                              std::vector<uint64_t> seqs,
                                              uint32_t credits) {
        SendHopAck(owner, stream, sender_task, std::move(seqs), credits);
      });
    }

    return runtime_->Start();
  }

  Result<dsps::Topology> BuildWorkerTopology() {
    dsps::TopologyBuilder builder;
    const bool acking = options_.runtime.enable_acking;

    // Ingress spouts first: one per remote source, declared with the
    // source's output fields so subscriber groupings keep their exact
    // semantics across the hop.
    for (const auto& [source, owner] : plan_.ingress_sources) {
      auto queue = std::make_shared<IngressQueue>(source, options_.ingress);
      ingress_queues_[source] = queue;
      const dsps::ComponentDef* def = topology_.Find(source);
      builder.SetSpout(
          IngressName(source),
          [queue, acking]() {
            return std::make_unique<IngressSpout>(queue, acking);
          },
          def->output_fields, 1, 1);
    }

    for (const std::string& name : plan_.owned) {
      const dsps::ComponentDef* def = topology_.Find(name);
      auto remote_it = plan_.remote_dests.find(name);
      std::shared_ptr<EgressGroup> group;
      if (remote_it != plan_.remote_dests.end()) {
        group = std::make_shared<EgressGroup>();
        group->component = name;
        int buffer_tasks = def->is_spout ? 1 : def->num_tasks;
        for (int task = 0; task < buffer_tasks; ++task) {
          group->buffers.push_back(std::make_shared<EgressBuffer>(
              name, static_cast<uint32_t>(task), remote_it->second,
              options_.egress));
        }
        egress_groups_[name] = group;
        for (uint32_t dest : remote_it->second) dest_workers_.insert(dest);
      }
      if (def->is_spout) {
        dsps::SpoutFactory inner = def->spout_factory;
        auto live = spouts_live_;
        builder.SetSpout(
            name,
            [inner, live]() {
              return std::make_unique<WatchedSpout>(inner(), live);
            },
            def->output_fields, def->num_executors, def->num_tasks);
        // Shedding tiers are declared on the global topology; the worker's
        // sub-topology must seed the same tier on its slice of the spout.
        builder.SetPriority(name, def->priority);
      } else {
        dsps::BoltFactory factory = def->bolt_factory;
        if (group != nullptr) {
          dsps::BoltFactory inner = def->bolt_factory;
          auto group_copy = group;
          factory = [inner, group_copy]() {
            return std::make_unique<ForwardingBolt>(inner(), group_copy);
          };
        }
        dsps::TopologyBuilder::BoltDeclarer declarer =
            builder.SetBolt(name, factory, def->output_fields,
                            def->num_executors, def->num_tasks);
        for (const dsps::Subscription& subscription : def->subscriptions) {
          std::string source = subscription.source;
          if (placement_.worker_of.at(source) != spec_.worker_id) {
            source = IngressName(source);
          }
          switch (subscription.grouping) {
            case dsps::Grouping::kShuffle:
              declarer.ShuffleGrouping(source);
              break;
            case dsps::Grouping::kFields:
              declarer.FieldsGrouping(source, subscription.fields);
              break;
            case dsps::Grouping::kAll:
              declarer.AllGrouping(source);
              break;
            case dsps::Grouping::kGlobal:
              declarer.GlobalGrouping(source);
              break;
            case dsps::Grouping::kDirect:
              declarer.DirectGrouping(source);
              break;
          }
        }
      }
    }

    // Egress bolts for owned spouts with remote subscribers (bolts capture
    // remote emissions inline via ForwardingBolt instead).
    for (const std::string& name : plan_.owned) {
      const dsps::ComponentDef* def = topology_.Find(name);
      auto group_it = egress_groups_.find(name);
      if (!def->is_spout || group_it == egress_groups_.end()) continue;
      auto group = group_it->second;
      builder
          .SetBolt(
              EgressName(name),
              [group]() { return std::make_unique<EgressBolt>(group); },
              dsps::Fields{}, 1, 1)
          .GlobalGrouping(name);
    }

    return builder.Build();
  }

  void OnFrame(net::EventLoop::ConnId id, net::Frame frame) {
    if (id == control_conn_) {
      OnControlFrame(std::move(frame));
      return;
    }
    switch (frame.type) {
      case net::FrameType::kChannelHello: {
        ChannelHello hello;
        if (!DecodeChannelHello(frame.payload, &hello).ok()) {
          loop_->Close(id);
          return;
        }
        MutexLock lock(mutex_);
        senders_[id] = hello;
        auto it = sender_conn_.find(hello.worker_id);
        bool replace = true;
        if (it != sender_conn_.end()) {
          auto existing = senders_.find(it->second);
          replace = existing == senders_.end() ||
                    existing->second.incarnation <= hello.incarnation;
        }
        if (replace) sender_conn_[hello.worker_id] = id;
        return;
      }
      case net::FrameType::kTupleBatch: {
        ChannelHello sender;
        {
          MutexLock lock(mutex_);
          auto it = senders_.find(id);
          if (it == senders_.end()) {
            // Data before identification: protocol violation.
            loop_->Close(id);
            return;
          }
          sender = it->second;
        }
        net::TupleBatch batch;
        if (!net::DecodeTupleBatch(frame.payload, &batch).ok()) {
          loop_->Close(id);
          return;
        }
        auto queue_it = ingress_queues_.find(batch.stream);
        if (queue_it == ingress_queues_.end()) {
          loop_->Close(id);
          return;
        }
        queue_it->second->OfferFrame(sender.incarnation, batch);
        if (queue_it->second->WantsPause()) loop_->SetReadPaused(id, true);
        return;
      }
      case net::FrameType::kHopAck: {
        HopAck ack;
        if (!DecodeHopAck(frame.payload, &ack).ok()) {
          loop_->Close(id);
          return;
        }
        uint32_t dest_worker = 0;
        bool found = false;
        {
          MutexLock lock(mutex_);
          for (const auto& [worker, channel] : dests_) {
            if (channel.conn == id) {
              dest_worker = worker;
              found = true;
              break;
            }
          }
        }
        if (!found) return;
        auto group_it = egress_groups_.find(ack.stream);
        if (group_it == egress_groups_.end()) return;
        auto& buffers = group_it->second->buffers;
        if (ack.sender_task >= buffers.size()) return;
        buffers[ack.sender_task]->HandleAck(dest_worker, ack.seqs,
                                            ack.credits);
        return;
      }
      default:
        loop_->Close(id);
        return;
    }
  }

  void OnControlFrame(net::Frame frame) {
    switch (frame.type) {
      case net::FrameType::kPeerTable: {
        PeerTable table;
        if (!DecodePeerTable(frame.payload, &table).ok()) return;
        MutexLock lock(mutex_);
        for (const PeerEntry& entry : table.peers) {
          if (entry.worker_id == spec_.worker_id) continue;
          PeerInfo& info = peers_[entry.worker_id];
          info.incarnation = entry.incarnation;
          info.data_port = entry.data_port;
        }
        return;
      }
      case net::FrameType::kShutdown: {
        ShutdownRequest request;
        if (!DecodeShutdownRequest(frame.payload, &request).ok()) return;
        MutexLock lock(mutex_);
        draining_ = true;
        abort_ = abort_ || request.abort;
        shutdown_cv_.NotifyAll();
        return;
      }
      default:
        return;
    }
  }

  void OnClose(net::EventLoop::ConnId id, const Status& why) {
    (void)why;
    if (id == control_conn_) {
      // The supervisor is gone; an orphaned worker must not outlive it.
      std::_Exit(3);
    }
    MutexLock lock(mutex_);
    for (auto& [worker, channel] : dests_) {
      if (channel.conn != id) continue;
      channel.conn = 0;
      channel.next_attempt_micros =
          SteadyNowMicros() + options_.reconnect_backoff_micros;
      uint64_t requeued = 0;
      for (const auto& [name, group] : egress_groups_) {
        for (const auto& buffer : group->buffers) {
          requeued += buffer->MarkDisconnected(worker);
        }
      }
      if (requeued > 0) runtime_->metrics()->RecordRequeuedTuples(requeued);
      return;
    }
    auto sender_it = senders_.find(id);
    if (sender_it != senders_.end()) {
      auto current = sender_conn_.find(sender_it->second.worker_id);
      if (current != sender_conn_.end() && current->second == id) {
        sender_conn_.erase(current);
      }
      senders_.erase(sender_it);
    }
  }

  void OnTick() {
    const MicrosT now = SteadyNowMicros();
    // 1. (Re)connect to destination workers whose address we know.
    for (uint32_t dest : dest_workers_) {
      uint16_t port = 0;
      {
        MutexLock lock(mutex_);
        DestChannel& channel = dests_[dest];
        if (channel.conn != 0 || now < channel.next_attempt_micros) continue;
        auto peer_it = peers_.find(dest);
        if (peer_it == peers_.end()) continue;
        port = peer_it->second.data_port;
      }
      Result<net::EventLoop::ConnId> conn = loop_->Connect(port);
      MutexLock lock(mutex_);
      DestChannel& channel = dests_[dest];
      if (!conn.ok()) {
        channel.next_attempt_micros = now + options_.reconnect_backoff_micros;
        continue;
      }
      channel.conn = conn.value();
      runtime_->metrics()->RecordReconnect();
      ChannelHello hello;
      hello.worker_id = spec_.worker_id;
      hello.incarnation = spec_.incarnation;
      net::Frame frame;
      frame.type = net::FrameType::kChannelHello;
      EncodeChannelHello(hello, &frame.payload);
      loop_->Send(channel.conn, frame);
    }
    // 2. Ship sendable egress frames.
    for (const auto& [name, group] : egress_groups_) {
      for (const auto& buffer : group->buffers) {
        for (uint32_t dest : buffer->dest_workers()) {
          net::EventLoop::ConnId conn = 0;
          {
            MutexLock lock(mutex_);
            auto it = dests_.find(dest);
            if (it != dests_.end()) conn = it->second.conn;
          }
          if (conn == 0) continue;
          for (std::string& bytes : buffer->TakeSendable(dest, now)) {
            net::Frame frame;
            frame.type = net::FrameType::kTupleBatch;
            frame.payload = std::move(bytes);
            loop_->Send(conn, frame);
          }
        }
      }
    }
    // 3. Resume paused senders once the ingress queues drained.
    bool want_pause = false;
    for (const auto& [source, queue] : ingress_queues_) {
      want_pause = want_pause || queue->WantsPause();
    }
    if (!want_pause) {
      MutexLock lock(mutex_);
      for (const auto& [id, hello] : senders_) {
        loop_->SetReadPaused(id, false);
      }
    }
    // 4. Heartbeat.
    if (now - last_heartbeat_micros_ >= options_.heartbeat_interval_micros) {
      last_heartbeat_micros_ = now;
      SendStatus();
    }
    // 5. Periodic metrics.
    if (options_.metrics_interval_micros > 0 &&
        now - last_metrics_micros_ >= options_.metrics_interval_micros) {
      last_metrics_micros_ = now;
      SendMetricsReport();
    }
  }

  void SendStatus() {
    WorkerStatus status;
    status.worker_id = spec_.worker_id;
    status.incarnation = spec_.incarnation;
    status.user_spouts_done = spouts_live_->load() <= 0;
    status.pending_trees = runtime_->pending_trees();
    status.in_flight = runtime_->in_flight();
    for (const auto& [name, group] : egress_groups_) {
      for (const auto& buffer : group->buffers) {
        status.egress_unacked_frames += buffer->UnackedFrames();
      }
    }
    for (const auto& [source, queue] : ingress_queues_) {
      status.ingress_queued += queue->QueuedTuples();
      status.ingress_inflight += queue->InflightTuples();
    }
    net::Frame frame;
    frame.type = net::FrameType::kStatus;
    EncodeWorkerStatus(status, &frame.payload);
    loop_->Send(control_conn_, frame);
  }

  void SendMetricsReport() {
    MetricsReport report;
    report.worker_id = spec_.worker_id;
    report.incarnation = spec_.incarnation;
    report.snapshot = runtime_->metrics()->PrometheusSnapshot();
    std::vector<dsps::MetricsRegistry::WindowReport> windows =
        runtime_->metrics()->window_reports();
    for (size_t i = windows_sent_; i < windows.size(); ++i) {
      report.windows.push_back(windows[i]);
    }
    windows_sent_ = windows.size();
    net::Frame frame;
    frame.type = net::FrameType::kMetrics;
    EncodeMetricsReport(report, &frame.payload);
    loop_->Send(control_conn_, frame);
  }

  void SendHopAck(uint32_t owner, const std::string& stream,
                  uint32_t sender_task, std::vector<uint64_t> seqs,
                  uint32_t credits) {
    net::EventLoop::ConnId conn = 0;
    {
      MutexLock lock(mutex_);
      auto it = sender_conn_.find(owner);
      if (it == sender_conn_.end()) return;  // sender gone; it will resend
      conn = it->second;
    }
    HopAck ack;
    ack.stream = stream;
    ack.sender_task = sender_task;
    ack.credits = credits;
    ack.seqs = std::move(seqs);
    net::Frame frame;
    frame.type = net::FrameType::kHopAck;
    EncodeHopAck(ack, &frame.payload);
    loop_->Send(conn, frame);
  }

  void SendFinalReports() {
    SendMetricsReport();
    FinishedNote note;
    note.worker_id = spec_.worker_id;
    note.incarnation = spec_.incarnation;
    net::Frame frame;
    frame.type = net::FrameType::kFinished;
    EncodeFinishedNote(note, &frame.payload);
    loop_->Send(control_conn_, frame);
    // Let the loop flush the control connection before tearing it down.
    const MicrosT deadline = SteadyNowMicros() + 1'000'000;
    while (loop_->QueuedBytes(control_conn_) > 0 &&
           SteadyNowMicros() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }

  const WorkerSpec spec_;
  dsps::Topology topology_;
  const DistOptions options_;

  Placement placement_;
  WorkerPlan plan_;
  std::unique_ptr<reliability::FileStateStore> file_store_;
  std::shared_ptr<std::atomic<int>> spouts_live_;
  std::map<std::string, std::shared_ptr<IngressQueue>> ingress_queues_;
  std::map<std::string, std::shared_ptr<EgressGroup>> egress_groups_;
  std::set<uint32_t> dest_workers_;
  std::unique_ptr<dsps::LocalRuntime> runtime_;
  std::unique_ptr<net::EventLoop> loop_;
  uint16_t data_port_ = 0;
  net::EventLoop::ConnId control_conn_ = 0;

  // Loop-thread-only timers.
  MicrosT last_heartbeat_micros_ = 0;
  MicrosT last_metrics_micros_ = 0;
  size_t windows_sent_ = 0;

  Mutex mutex_{TMS_LOCK_RANK(15)};
  CondVar shutdown_cv_;
  bool draining_ GUARDED_BY(mutex_) = false;
  bool abort_ GUARDED_BY(mutex_) = false;
  std::map<uint32_t, PeerInfo> peers_ GUARDED_BY(mutex_);
  std::map<uint32_t, DestChannel> dests_ GUARDED_BY(mutex_);
  std::map<net::EventLoop::ConnId, ChannelHello> senders_ GUARDED_BY(mutex_);
  std::map<uint32_t, net::EventLoop::ConnId> sender_conn_ GUARDED_BY(mutex_);
};

}  // namespace

bool ParseWorkerSpec(int argc, char** argv, WorkerSpec* spec) {
  bool have_id = false;
  bool have_incarnation = false;
  bool have_port = false;
  for (int i = 1; i < argc; ++i) {
    uint64_t value = 0;
    if (ParseFlag(argv[i], "--insight-worker-id", &value)) {
      spec->worker_id = static_cast<uint32_t>(value);
      have_id = true;
    } else if (ParseFlag(argv[i], "--insight-incarnation", &value)) {
      spec->incarnation = value;
      have_incarnation = true;
    } else if (ParseFlag(argv[i], "--insight-control-port", &value)) {
      spec->control_port = static_cast<uint16_t>(value);
      have_port = true;
    }
  }
  return have_id && have_incarnation && have_port;
}

int RunWorker(const WorkerSpec& spec, dsps::Topology topology,
              const DistOptions& options) {
#ifdef __linux__
  // Die with the supervisor even if the control connection lingers.
  prctl(PR_SET_PDEATHSIG, SIGKILL);
#endif
  Worker worker(spec, std::move(topology), options);
  return worker.Run();
}

}  // namespace dist
}  // namespace insight
