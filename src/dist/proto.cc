#include "dist/proto.h"

#include <utility>

#include "common/bytes.h"

namespace insight {
namespace dist {

namespace {

constexpr uint32_t kSanityLimit = 1u << 20;

Status Truncated(const char* what) {
  return Status::ParseError(std::string("truncated ") + what);
}

void EncodeHistogramSnapshot(const observability::HistogramSnapshot& h,
                             ByteWriter* writer) {
  writer->PutU32(static_cast<uint32_t>(h.counts.size()));
  for (uint64_t count : h.counts) writer->PutU64(count);
}

bool DecodeHistogramSnapshot(ByteReader* reader,
                             observability::HistogramSnapshot* out) {
  uint32_t buckets = 0;
  if (!reader->GetU32(&buckets)) return false;
  if (buckets != out->counts.size()) return false;  // bucket layout mismatch
  for (size_t i = 0; i < out->counts.size(); ++i) {
    if (!reader->GetU64(&out->counts[i])) return false;
  }
  return true;
}

void EncodeSnapshot(const observability::MetricsSnapshot& snapshot,
                    ByteWriter* writer) {
  writer->PutU32(static_cast<uint32_t>(snapshot.counters.size()));
  for (const observability::CounterFamily& family : snapshot.counters) {
    writer->PutString(family.name);
    writer->PutString(family.help);
    writer->PutU32(static_cast<uint32_t>(family.samples.size()));
    for (const observability::CounterSample& sample : family.samples) {
      writer->PutString(sample.labels);
      writer->PutDouble(sample.value);
    }
  }
  writer->PutU32(static_cast<uint32_t>(snapshot.histograms.size()));
  for (const observability::HistogramFamily& family : snapshot.histograms) {
    writer->PutString(family.name);
    writer->PutString(family.help);
    writer->PutU32(static_cast<uint32_t>(family.samples.size()));
    for (const observability::HistogramSample& sample : family.samples) {
      writer->PutString(sample.labels);
      EncodeHistogramSnapshot(sample.histogram, writer);
      writer->PutDouble(sample.sum);
    }
  }
}

bool DecodeSnapshot(ByteReader* reader,
                    observability::MetricsSnapshot* out) {
  uint32_t families = 0;
  if (!reader->GetU32(&families) || families > kSanityLimit) return false;
  out->counters.clear();
  out->counters.reserve(families);
  for (uint32_t i = 0; i < families; ++i) {
    observability::CounterFamily family;
    uint32_t samples = 0;
    if (!reader->GetString(&family.name) ||
        !reader->GetString(&family.help) || !reader->GetU32(&samples) ||
        samples > kSanityLimit) {
      return false;
    }
    family.samples.reserve(samples);
    for (uint32_t s = 0; s < samples; ++s) {
      observability::CounterSample sample;
      if (!reader->GetString(&sample.labels) ||
          !reader->GetDouble(&sample.value)) {
        return false;
      }
      family.samples.push_back(std::move(sample));
    }
    out->counters.push_back(std::move(family));
  }
  if (!reader->GetU32(&families) || families > kSanityLimit) return false;
  out->histograms.clear();
  out->histograms.reserve(families);
  for (uint32_t i = 0; i < families; ++i) {
    observability::HistogramFamily family;
    uint32_t samples = 0;
    if (!reader->GetString(&family.name) ||
        !reader->GetString(&family.help) || !reader->GetU32(&samples) ||
        samples > kSanityLimit) {
      return false;
    }
    family.samples.reserve(samples);
    for (uint32_t s = 0; s < samples; ++s) {
      observability::HistogramSample sample;
      if (!reader->GetString(&sample.labels) ||
          !DecodeHistogramSnapshot(reader, &sample.histogram) ||
          !reader->GetDouble(&sample.sum)) {
        return false;
      }
      family.samples.push_back(std::move(sample));
    }
    out->histograms.push_back(std::move(family));
  }
  return true;
}

void EncodeWindowReport(const dsps::MetricsRegistry::WindowReport& report,
                        ByteWriter* writer) {
  writer->PutI64(report.window_start);
  writer->PutI64(report.window_length_micros);
  writer->PutString(report.component);
  writer->PutU64(report.executed);
  writer->PutDouble(report.avg_latency_micros);
  writer->PutDouble(report.p50_micros);
  writer->PutDouble(report.p95_micros);
  writer->PutDouble(report.p99_micros);
  writer->PutDouble(report.capacity);
  writer->PutU64(report.acked);
  writer->PutU64(report.failed);
  writer->PutU64(report.replayed);
  writer->PutU64(report.checkpoints);
  writer->PutU64(report.checkpoint_restores);
  writer->PutU64(report.checkpoint_restore_failures);
  writer->PutU64(report.deduped);
  writer->PutU64(report.breaker_trips);
}

bool DecodeWindowReport(ByteReader* reader,
                        dsps::MetricsRegistry::WindowReport* out) {
  return reader->GetI64(&out->window_start) &&
         reader->GetI64(&out->window_length_micros) &&
         reader->GetString(&out->component) &&
         reader->GetU64(&out->executed) &&
         reader->GetDouble(&out->avg_latency_micros) &&
         reader->GetDouble(&out->p50_micros) &&
         reader->GetDouble(&out->p95_micros) &&
         reader->GetDouble(&out->p99_micros) &&
         reader->GetDouble(&out->capacity) && reader->GetU64(&out->acked) &&
         reader->GetU64(&out->failed) && reader->GetU64(&out->replayed) &&
         reader->GetU64(&out->checkpoints) &&
         reader->GetU64(&out->checkpoint_restores) &&
         reader->GetU64(&out->checkpoint_restore_failures) &&
         reader->GetU64(&out->deduped) &&
         reader->GetU64(&out->breaker_trips);
}

}  // namespace

void EncodeWorkerHello(const WorkerHello& msg, std::string* out) {
  ByteWriter writer(out);
  writer.PutU32(msg.worker_id);
  writer.PutU64(msg.incarnation);
  writer.PutU32(msg.data_port);
}

Status DecodeWorkerHello(const std::string& payload, WorkerHello* out) {
  ByteReader reader(payload);
  uint32_t port = 0;
  if (!reader.GetU32(&out->worker_id) || !reader.GetU64(&out->incarnation) ||
      !reader.GetU32(&port) || !reader.exhausted()) {
    return Truncated("WorkerHello");
  }
  out->data_port = static_cast<uint16_t>(port);
  return Status::OK();
}

void EncodePeerTable(const PeerTable& msg, std::string* out) {
  ByteWriter writer(out);
  writer.PutU32(static_cast<uint32_t>(msg.peers.size()));
  for (const PeerEntry& peer : msg.peers) {
    writer.PutU32(peer.worker_id);
    writer.PutU64(peer.incarnation);
    writer.PutU32(peer.data_port);
  }
}

Status DecodePeerTable(const std::string& payload, PeerTable* out) {
  ByteReader reader(payload);
  uint32_t count = 0;
  if (!reader.GetU32(&count) || count > kSanityLimit) {
    return Truncated("PeerTable");
  }
  out->peers.clear();
  out->peers.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    PeerEntry peer;
    uint32_t port = 0;
    if (!reader.GetU32(&peer.worker_id) ||
        !reader.GetU64(&peer.incarnation) || !reader.GetU32(&port)) {
      return Truncated("PeerTable entry");
    }
    peer.data_port = static_cast<uint16_t>(port);
    out->peers.push_back(peer);
  }
  if (!reader.exhausted()) return Truncated("PeerTable (trailing bytes)");
  return Status::OK();
}

void EncodeWorkerStatus(const WorkerStatus& msg, std::string* out) {
  ByteWriter writer(out);
  writer.PutU32(msg.worker_id);
  writer.PutU64(msg.incarnation);
  writer.PutU8(msg.user_spouts_done ? 1 : 0);
  writer.PutU64(msg.pending_trees);
  writer.PutI64(msg.in_flight);
  writer.PutU64(msg.egress_unacked_frames);
  writer.PutU64(msg.ingress_queued);
  writer.PutU64(msg.ingress_inflight);
}

Status DecodeWorkerStatus(const std::string& payload, WorkerStatus* out) {
  ByteReader reader(payload);
  uint8_t done = 0;
  if (!reader.GetU32(&out->worker_id) || !reader.GetU64(&out->incarnation) ||
      !reader.GetU8(&done) || !reader.GetU64(&out->pending_trees) ||
      !reader.GetI64(&out->in_flight) ||
      !reader.GetU64(&out->egress_unacked_frames) ||
      !reader.GetU64(&out->ingress_queued) ||
      !reader.GetU64(&out->ingress_inflight) || !reader.exhausted()) {
    return Truncated("WorkerStatus");
  }
  out->user_spouts_done = done != 0;
  return Status::OK();
}

void EncodeShutdownRequest(const ShutdownRequest& msg, std::string* out) {
  ByteWriter writer(out);
  writer.PutU8(msg.abort ? 1 : 0);
}

Status DecodeShutdownRequest(const std::string& payload,
                             ShutdownRequest* out) {
  ByteReader reader(payload);
  uint8_t abort_flag = 0;
  if (!reader.GetU8(&abort_flag) || !reader.exhausted()) {
    return Truncated("ShutdownRequest");
  }
  out->abort = abort_flag != 0;
  return Status::OK();
}

void EncodeFinishedNote(const FinishedNote& msg, std::string* out) {
  ByteWriter writer(out);
  writer.PutU32(msg.worker_id);
  writer.PutU64(msg.incarnation);
}

Status DecodeFinishedNote(const std::string& payload, FinishedNote* out) {
  ByteReader reader(payload);
  if (!reader.GetU32(&out->worker_id) || !reader.GetU64(&out->incarnation) ||
      !reader.exhausted()) {
    return Truncated("FinishedNote");
  }
  return Status::OK();
}

void EncodeChannelHello(const ChannelHello& msg, std::string* out) {
  ByteWriter writer(out);
  writer.PutU32(msg.worker_id);
  writer.PutU64(msg.incarnation);
}

Status DecodeChannelHello(const std::string& payload, ChannelHello* out) {
  ByteReader reader(payload);
  if (!reader.GetU32(&out->worker_id) || !reader.GetU64(&out->incarnation) ||
      !reader.exhausted()) {
    return Truncated("ChannelHello");
  }
  return Status::OK();
}

void EncodeHopAck(const HopAck& msg, std::string* out) {
  ByteWriter writer(out);
  writer.PutString(msg.stream);
  writer.PutU32(msg.sender_task);
  writer.PutU32(msg.credits);
  writer.PutU32(static_cast<uint32_t>(msg.seqs.size()));
  for (uint64_t seq : msg.seqs) writer.PutU64(seq);
}

Status DecodeHopAck(const std::string& payload, HopAck* out) {
  ByteReader reader(payload);
  uint32_t count = 0;
  if (!reader.GetString(&out->stream) || !reader.GetU32(&out->sender_task) ||
      !reader.GetU32(&out->credits) || !reader.GetU32(&count) ||
      count > kSanityLimit) {
    return Truncated("HopAck");
  }
  out->seqs.clear();
  out->seqs.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint64_t seq = 0;
    if (!reader.GetU64(&seq)) return Truncated("HopAck seq");
    out->seqs.push_back(seq);
  }
  if (!reader.exhausted()) return Truncated("HopAck (trailing bytes)");
  return Status::OK();
}

void EncodeMetricsReport(const MetricsReport& msg, std::string* out) {
  ByteWriter writer(out);
  writer.PutU32(msg.worker_id);
  writer.PutU64(msg.incarnation);
  EncodeSnapshot(msg.snapshot, &writer);
  writer.PutU32(static_cast<uint32_t>(msg.windows.size()));
  for (const dsps::MetricsRegistry::WindowReport& report : msg.windows) {
    EncodeWindowReport(report, &writer);
  }
}

Status DecodeMetricsReport(const std::string& payload, MetricsReport* out) {
  ByteReader reader(payload);
  if (!reader.GetU32(&out->worker_id) || !reader.GetU64(&out->incarnation) ||
      !DecodeSnapshot(&reader, &out->snapshot)) {
    return Truncated("MetricsReport");
  }
  uint32_t windows = 0;
  if (!reader.GetU32(&windows) || windows > kSanityLimit) {
    return Truncated("MetricsReport windows");
  }
  out->windows.clear();
  out->windows.reserve(windows);
  for (uint32_t i = 0; i < windows; ++i) {
    dsps::MetricsRegistry::WindowReport report;
    if (!DecodeWindowReport(&reader, &report)) {
      return Truncated("MetricsReport window");
    }
    out->windows.push_back(std::move(report));
  }
  if (!reader.exhausted()) {
    return Truncated("MetricsReport (trailing bytes)");
  }
  return Status::OK();
}

}  // namespace dist
}  // namespace insight
