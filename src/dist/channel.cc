#include "dist/channel.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/bytes.h"

namespace insight {
namespace dist {

using dsps::Value;

namespace {

constexpr uint32_t kEgressSnapshotMagic = 0x31424745;      // "EGB1"
constexpr uint32_t kForwardingSnapshotMagic = 0x31445746;  // "FWD1"
constexpr uint32_t kEgressBoltSnapshotMagic = 0x31524745;  // "EGR1"

/// Distinct from the runtime's in-process dedup chain multiplier so wire
/// ids never collide with local dedup ids.
constexpr uint64_t kWireChainSalt = 0x9fb21c651e98df25ULL;
/// Salt for the spout-egress hop (single emission per input, no ordinal).
constexpr uint64_t kEgressHopSalt = 0xd6e8feb86659fd93ULL;

uint64_t FreshSeed(int task_index) {
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  return Splitmix64(static_cast<uint64_t>(now.count()) ^
                    (kWireChainSalt * static_cast<uint64_t>(task_index + 1)));
}

}  // namespace

uint64_t Splitmix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t ChainWireId(uint64_t input_dedup_id, uint64_t emit_ordinal) {
  return Splitmix64(input_dedup_id ^ (kWireChainSalt * emit_ordinal));
}

// ---------------------------------------------------------------------------
// EgressBuffer

EgressBuffer::EgressBuffer(std::string stream, uint32_t sender_task,
                           std::vector<uint32_t> dest_workers,
                           EgressOptions options)
    : stream_(std::move(stream)),
      sender_task_(sender_task),
      dest_workers_(std::move(dest_workers)),
      options_(options) {
  MutexLock lock(mutex_);
  dests_.reserve(dest_workers_.size());
  for (uint32_t worker : dest_workers_) {
    DestState dest;
    dest.worker = worker;
    dest.remote_credits = static_cast<int64_t>(options_.initial_credits);
    dests_.push_back(std::move(dest));
  }
}

void EgressBuffer::FlushStagingLocked(DestState* dest) {
  if (dest->staging.empty()) return;
  net::TupleBatchBuilder builder(stream_, sender_task_);
  for (const Staged& staged : dest->staging) {
    builder.Add(staged.payload, staged.wire_id, staged.spout_time,
                static_cast<uint8_t>(staged.priority));
  }
  net::TupleBatch batch = builder.Take(dest->next_seq);
  FrameRec rec;
  rec.tuple_count = static_cast<uint32_t>(batch.tuples.size());
  net::EncodeTupleBatch(batch, &rec.bytes);
  dest->unacked.emplace(dest->next_seq, std::move(rec));
  ++dest->next_seq;
  dest->staging.clear();
  dest->staging_since = 0;
}

void EgressBuffer::Add(const net::ValuePayload& payload, uint64_t wire_id,
                       MicrosT spout_time, dsps::TuplePriority priority) {
  MutexLock lock(mutex_);
  for (;;) {
    if (shutdown_) return;
    bool full = false;
    for (const DestState& dest : dests_) {
      if (dest.unacked.size() >= options_.window_frames) {
        full = true;
        break;
      }
    }
    if (!full) break;
    window_cv_.WaitFor(mutex_, std::chrono::milliseconds(100));
  }
  for (DestState& dest : dests_) {
    if (dest.staging.empty()) {
      dest.staging_since =
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now().time_since_epoch())
              .count();
    }
    dest.staging.push_back(Staged{payload, wire_id, spout_time, priority});
    if (dest.staging.size() >= options_.batch_tuples) {
      FlushStagingLocked(&dest);
    }
  }
}

Status EgressBuffer::Snapshot(std::string* out) const {
  MutexLock lock(mutex_);
  for (DestState& dest : dests_) {
    const_cast<EgressBuffer*>(this)->FlushStagingLocked(&dest);
  }
  out->clear();
  ByteWriter writer(out);
  writer.PutU32(kEgressSnapshotMagic);
  writer.PutU32(static_cast<uint32_t>(dests_.size()));
  for (const DestState& dest : dests_) {
    writer.PutU32(dest.worker);
    writer.PutU64(dest.next_seq);
    writer.PutU32(static_cast<uint32_t>(dest.unacked.size()));
    for (const auto& [seq, rec] : dest.unacked) {
      writer.PutU64(seq);
      writer.PutU32(rec.tuple_count);
      writer.PutString(rec.bytes);
    }
  }
  return Status::OK();
}

Status EgressBuffer::Restore(const std::string& bytes) {
  MutexLock lock(mutex_);
  ByteReader reader(bytes);
  uint32_t magic = 0;
  if (!reader.GetU32(&magic) || magic != kEgressSnapshotMagic) {
    return Status::ParseError("egress snapshot: bad magic");
  }
  uint32_t dest_count = 0;
  if (!reader.GetU32(&dest_count) || dest_count != dests_.size()) {
    return Status::ParseError("egress snapshot: destination set changed");
  }
  std::vector<DestState> restored;
  restored.reserve(dest_count);
  for (uint32_t i = 0; i < dest_count; ++i) {
    DestState dest;
    dest.remote_credits = static_cast<int64_t>(options_.initial_credits);
    uint32_t frame_count = 0;
    if (!reader.GetU32(&dest.worker) || !reader.GetU64(&dest.next_seq) ||
        !reader.GetU32(&frame_count)) {
      return Status::ParseError("egress snapshot: truncated destination");
    }
    bool known = false;
    for (uint32_t worker : dest_workers_) known = known || worker == dest.worker;
    if (!known) {
      return Status::ParseError("egress snapshot: unknown destination worker");
    }
    for (uint32_t f = 0; f < frame_count; ++f) {
      uint64_t seq = 0;
      FrameRec rec;
      if (!reader.GetU64(&seq) || !reader.GetU32(&rec.tuple_count) ||
          !reader.GetString(&rec.bytes)) {
        return Status::ParseError("egress snapshot: truncated frame");
      }
      rec.sent = false;  // the new incarnation resends everything
      dest.unacked.emplace(seq, std::move(rec));
    }
    restored.push_back(std::move(dest));
  }
  if (!reader.exhausted()) {
    return Status::ParseError("egress snapshot: trailing bytes");
  }
  dests_ = std::move(restored);
  return Status::OK();
}

void EgressBuffer::HandleAck(uint32_t dest_worker,
                             const std::vector<uint64_t>& seqs,
                             uint32_t credits) {
  MutexLock lock(mutex_);
  for (DestState& dest : dests_) {
    if (dest.worker != dest_worker) continue;
    for (uint64_t seq : seqs) dest.unacked.erase(seq);
    if (options_.credit_flow) {
      // The receiver's grant counts its free slots now; frames of ours
      // still in flight (sent, unacked) will consume part of it, so
      // subtract them. A frame both delivered and still queued remotely is
      // counted twice — conservative, and self-correcting as acks arrive.
      int64_t sent_unacked = 0;
      for (const auto& [seq, rec] : dest.unacked) {
        if (rec.sent) sent_unacked += rec.tuple_count;
      }
      dest.remote_credits =
          std::max<int64_t>(0, static_cast<int64_t>(credits) - sent_unacked);
    }
    break;
  }
  window_cv_.NotifyAll();
}

std::vector<std::string> EgressBuffer::TakeSendable(uint32_t dest_worker,
                                                   MicrosT now_micros) {
  MutexLock lock(mutex_);
  std::vector<std::string> out;
  for (DestState& dest : dests_) {
    if (dest.worker != dest_worker) continue;
    if (!dest.staging.empty() &&
        now_micros - dest.staging_since >= options_.flush_interval_micros) {
      FlushStagingLocked(&dest);
    }
    for (auto& [seq, rec] : dest.unacked) {
      if (rec.sent) continue;
      if (options_.credit_flow &&
          dest.remote_credits < static_cast<int64_t>(rec.tuple_count)) {
        // Out of credit: stop at the first unaffordable frame (frames must
        // leave in sequence order) until the next ack refreshes the grant.
        break;
      }
      if (options_.credit_flow) {
        dest.remote_credits -= static_cast<int64_t>(rec.tuple_count);
      }
      rec.sent = true;
      out.push_back(rec.bytes);
    }
    break;
  }
  return out;
}

uint64_t EgressBuffer::MarkDisconnected(uint32_t dest_worker) {
  MutexLock lock(mutex_);
  uint64_t requeued = 0;
  for (DestState& dest : dests_) {
    if (dest.worker != dest_worker) continue;
    for (auto& [seq, rec] : dest.unacked) {
      if (rec.sent) {
        rec.sent = false;
        requeued += rec.tuple_count;
      }
    }
    // Fresh connection, fresh budget: the receiver's queue state is
    // unknown until its first ack arrives on the new connection.
    dest.remote_credits = static_cast<int64_t>(options_.initial_credits);
    break;
  }
  return requeued;
}

uint64_t EgressBuffer::UnackedFrames() const {
  MutexLock lock(mutex_);
  uint64_t total = 0;
  for (const DestState& dest : dests_) {
    total += dest.unacked.size();
    if (!dest.staging.empty()) ++total;  // a frame waiting to be cut
  }
  return total;
}

void EgressBuffer::Shutdown() {
  MutexLock lock(mutex_);
  shutdown_ = true;
  window_cv_.NotifyAll();
}

// ---------------------------------------------------------------------------
// IngressQueue

IngressQueue::IngressQueue(std::string stream, IngressOptions options)
    : stream_(std::move(stream)), options_(options) {}

void IngressQueue::SetAckSink(
    std::function<void(uint32_t, std::vector<uint64_t>, uint32_t)> sink) {
  MutexLock lock(mutex_);
  ack_sink_ = std::move(sink);
}

uint32_t IngressQueue::CreditsLocked() const {
  return queue_.size() >= options_.pause_threshold
             ? 0
             : static_cast<uint32_t>(options_.pause_threshold -
                                     queue_.size());
}

void IngressQueue::EmitAcks(std::vector<std::pair<uint32_t, uint64_t>> acks,
                            uint32_t credits) {
  if (acks.empty()) return;
  std::function<void(uint32_t, std::vector<uint64_t>, uint32_t)> sink;
  {
    MutexLock lock(mutex_);
    sink = ack_sink_;
  }
  if (!sink) return;
  // Group by sender task (acks rarely span tasks; keep it simple).
  for (size_t i = 0; i < acks.size();) {
    uint32_t task = acks[i].first;
    std::vector<uint64_t> seqs;
    size_t j = i;
    while (j < acks.size()) {
      if (acks[j].first == task) {
        seqs.push_back(acks[j].second);
        acks.erase(acks.begin() + static_cast<long>(j));
      } else {
        ++j;
      }
    }
    sink(task, std::move(seqs), credits);
  }
}

IngressQueue::Disposition IngressQueue::OfferFrame(
    uint64_t incarnation, const net::TupleBatch& batch) {
  std::vector<std::pair<uint32_t, uint64_t>> acks;
  Disposition disposition = Disposition::kAccepted;
  uint32_t credits = 0;
  {
    MutexLock lock(mutex_);
    if (incarnation < incarnation_) return Disposition::kStale;
    if (incarnation > incarnation_) {
      // New sender incarnation: frame-level tracking restarts (the restored
      // egress buffer renumbers nothing — it resends its snapshot — but a
      // fresh incarnation may also reuse sequences for frames that were
      // acked and pruned before the checkpoint; tuple-level dedup ledgers
      // are the guard there).
      incarnation_ = incarnation;
      channels_.clear();
    }
    TaskChannel& channel = channels_[batch.sender_task];
    if (channel.completed.count(batch.seq) != 0) {
      // Fully resolved earlier; the ack was lost — re-ack.
      acks.emplace_back(batch.sender_task, batch.seq);
      disposition = Disposition::kDuplicate;
    } else if (channel.in_progress.count(batch.seq) != 0) {
      // Original still being processed; its ack fires on resolution.
      disposition = Disposition::kDuplicate;
    } else if (batch.tuples.empty()) {
      acks.emplace_back(batch.sender_task, batch.seq);
    } else {
      // Register the full tuple count before shedding: a shed tuple's ref
      // resolves immediately below, so the frame still completes (and
      // hop-acks) once its queued tuples resolve too.
      channel.in_progress[batch.seq].outstanding =
          static_cast<uint32_t>(batch.tuples.size());
      for (const net::WireTuple& tuple : batch.tuples) {
        const auto priority = static_cast<dsps::TuplePriority>(tuple.priority);
        if (options_.enable_shedding &&
            priority != dsps::TuplePriority::kHigh) {
          const double occupancy =
              options_.pause_threshold == 0
                  ? 1.0
                  : static_cast<double>(queue_.size()) /
                        static_cast<double>(options_.pause_threshold);
          const double watermark = priority == dsps::TuplePriority::kLow
                                       ? options_.shed_low_watermark
                                       : options_.shed_high_watermark;
          if (occupancy >= watermark) {
            ++shed_[tuple.priority];
            ResolveRefLocked(
                FrameKey{batch.sender_task, incarnation, batch.seq}, &acks);
            continue;
          }
        }
        PendingTuple pending;
        pending.wire_id = tuple.wire_id;
        pending.spout_time = tuple.spout_time;
        pending.payload = batch.payloads[tuple.payload_index];
        pending.sender_task = batch.sender_task;
        pending.incarnation = incarnation;
        pending.seq = batch.seq;
        pending.priority = priority;
        queue_.push_back(std::move(pending));
      }
    }
    credits = CreditsLocked();
  }
  EmitAcks(std::move(acks), credits);
  return disposition;
}

size_t IngressQueue::Drain(size_t max, std::vector<PendingTuple>* out) {
  MutexLock lock(mutex_);
  size_t n = 0;
  while (n < max && !queue_.empty()) {
    out->push_back(std::move(queue_.front()));
    queue_.pop_front();
    ++n;
  }
  return n;
}

bool IngressQueue::TrackInflight(const PendingTuple& tuple) {
  MutexLock lock(mutex_);
  auto [it, inserted] = inflight_.try_emplace(tuple.wire_id);
  it->second.push_back(
      FrameKey{tuple.sender_task, tuple.incarnation, tuple.seq});
  return inserted;
}

void IngressQueue::ResolveRefLocked(
    const FrameKey& key, std::vector<std::pair<uint32_t, uint64_t>>* acks) {
  if (key.incarnation != incarnation_) return;  // stale sender
  auto channel_it = channels_.find(key.sender_task);
  if (channel_it == channels_.end()) return;
  TaskChannel& channel = channel_it->second;
  auto frame_it = channel.in_progress.find(key.seq);
  if (frame_it == channel.in_progress.end()) return;
  if (--frame_it->second.outstanding > 0) return;
  channel.in_progress.erase(frame_it);
  channel.completed.insert(key.seq);
  channel.completed_fifo.push_back(key.seq);
  while (channel.completed_fifo.size() > options_.completed_capacity) {
    channel.completed.erase(channel.completed_fifo.front());
    channel.completed_fifo.pop_front();
  }
  acks->emplace_back(key.sender_task, key.seq);
}

void IngressQueue::ResolveInflight(uint64_t wire_id) {
  std::vector<std::pair<uint32_t, uint64_t>> acks;
  uint32_t credits = 0;
  {
    MutexLock lock(mutex_);
    auto it = inflight_.find(wire_id);
    if (it == inflight_.end()) return;
    std::vector<FrameKey> refs = std::move(it->second);
    inflight_.erase(it);
    for (const FrameKey& key : refs) ResolveRefLocked(key, &acks);
    credits = CreditsLocked();
  }
  EmitAcks(std::move(acks), credits);
}

void IngressQueue::ResolveNow(const PendingTuple& tuple) {
  std::vector<std::pair<uint32_t, uint64_t>> acks;
  uint32_t credits = 0;
  {
    MutexLock lock(mutex_);
    FrameKey key{tuple.sender_task, tuple.incarnation, tuple.seq};
    ResolveRefLocked(key, &acks);
    credits = CreditsLocked();
  }
  EmitAcks(std::move(acks), credits);
}

void IngressQueue::MarkDone() {
  MutexLock lock(mutex_);
  done_ = true;
}

bool IngressQueue::Exhausted() const {
  MutexLock lock(mutex_);
  return done_ && queue_.empty() && inflight_.empty();
}

size_t IngressQueue::QueuedTuples() const {
  MutexLock lock(mutex_);
  return queue_.size();
}

size_t IngressQueue::InflightTuples() const {
  MutexLock lock(mutex_);
  return inflight_.size();
}

bool IngressQueue::WantsPause() const {
  MutexLock lock(mutex_);
  return queue_.size() >= options_.pause_threshold;
}

uint64_t IngressQueue::SheddedTuples(dsps::TuplePriority priority) const {
  MutexLock lock(mutex_);
  return shed_[static_cast<size_t>(priority)];
}

uint64_t IngressQueue::SheddedTuples() const {
  MutexLock lock(mutex_);
  return shed_[0] + shed_[1] + shed_[2];
}

// ---------------------------------------------------------------------------
// IngressSpout

bool IngressSpout::NextTuple(dsps::Collector* collector) {
  batch_.clear();
  if (queue_->Drain(32, &batch_) == 0) {
    if (queue_->Exhausted()) return false;
    // SpoutLoop does not pace idle spouts; sleep here so an empty ingress
    // does not spin a core.
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    return true;
  }
  for (IngressQueue::PendingTuple& tuple : batch_) {
    std::vector<Value> values = *tuple.payload;
    // Prioritized emits re-stamp the sender-side tier so local overload
    // protection sheds a forwarded tuple exactly as its origin would.
    if (acking_ && tuple.wire_id != 0) {
      if (queue_->TrackInflight(tuple)) {
        collector->EmitRootedPrioritized(tuple.priority, tuple.wire_id,
                                         std::move(values));
      }
      // else: a retransmitted duplicate of a tree still in flight — its
      // frame ref is attached and resolves when the original does.
    } else {
      collector->EmitPrioritized(tuple.priority, std::move(values));
      queue_->ResolveNow(tuple);
    }
  }
  return true;
}

void IngressSpout::Ack(uint64_t message_id) {
  queue_->ResolveInflight(message_id);
}

void IngressSpout::Fail(uint64_t message_id) {
  // A failed tree still resolves the frame: retransmission could not help
  // (replays are exhausted) and holding the seq would stall the sender's
  // window. The loss is visible in the sender's failed-tree metrics.
  queue_->ResolveInflight(message_id);
}

// ---------------------------------------------------------------------------
// ForwardingBolt

class ForwardingBolt::Capture : public dsps::Collector {
 public:
  Capture(EgressBuffer* buffer, uint64_t fresh_seed, uint64_t* fresh_counter)
      : buffer_(buffer),
        fresh_seed_(fresh_seed),
        fresh_counter_(fresh_counter) {}

  void Begin(const dsps::Tuple* input, dsps::Collector* real) {
    input_ = input;
    real_ = real;
    emit_ordinal_ = 0;
  }

  void Emit(std::vector<Value> values) override {
    CaptureValues(values);
    real_->Emit(std::move(values));
  }
  void EmitMove(std::vector<Value> values) override {
    CaptureValues(values);
    real_->EmitMove(std::move(values));
  }
  void EmitRooted(uint64_t message_id, std::vector<Value> values) override {
    // From a bolt EmitRooted degrades to Emit (see Collector docs).
    CaptureValues(values);
    real_->EmitRooted(message_id, std::move(values));
  }
  void EmitDirect(int task_index, std::vector<Value> values) override {
    // kDirect edges are always worker-local (placement validation), so
    // direct emissions are never forwarded.
    real_->EmitDirect(task_index, std::move(values));
  }

 private:
  void CaptureValues(const std::vector<Value>& values) {
    uint64_t wire_id;
    ++emit_ordinal_;
    if (input_->dedup_id() != 0) {
      wire_id = ChainWireId(input_->dedup_id(), emit_ordinal_);
    } else {
      wire_id = Splitmix64(fresh_seed_ ^ ++*fresh_counter_);
    }
    buffer_->Add(std::make_shared<const std::vector<Value>>(values), wire_id,
                 input_->spout_time(), input_->priority());
  }

  EgressBuffer* buffer_;
  uint64_t fresh_seed_;
  uint64_t* fresh_counter_;
  const dsps::Tuple* input_ = nullptr;
  dsps::Collector* real_ = nullptr;
  uint64_t emit_ordinal_ = 0;
};

ForwardingBolt::ForwardingBolt(std::unique_ptr<dsps::Bolt> inner,
                               std::shared_ptr<EgressGroup> group)
    : inner_(std::move(inner)), group_(std::move(group)) {
  inner_snapshot_ = dynamic_cast<dsps::Snapshottable*>(inner_.get());
}

void ForwardingBolt::Prepare(const dsps::TaskContext& context) {
  inner_->Prepare(context);
  buffer_ = group_->buffers.at(static_cast<size_t>(context.task_index));
  fresh_seed_ = FreshSeed(context.task_index);
}

void ForwardingBolt::Execute(const dsps::Tuple& input,
                             dsps::Collector* collector) {
  Capture capture(buffer_.get(), fresh_seed_, &fresh_counter_);
  capture.Begin(&input, collector);
  inner_->Execute(input, &capture);
}

void ForwardingBolt::Cleanup() { inner_->Cleanup(); }

Status ForwardingBolt::SnapshotState(std::string* out) const {
  out->clear();
  ByteWriter writer(out);
  writer.PutU32(kForwardingSnapshotMagic);
  writer.PutU8(inner_snapshot_ != nullptr ? 1 : 0);
  if (inner_snapshot_ != nullptr) {
    std::string inner_bytes;
    INSIGHT_RETURN_NOT_OK(inner_snapshot_->SnapshotState(&inner_bytes));
    writer.PutString(inner_bytes);
  }
  std::string egress_bytes;
  INSIGHT_RETURN_NOT_OK(buffer_->Snapshot(&egress_bytes));
  writer.PutString(egress_bytes);
  return Status::OK();
}

Status ForwardingBolt::RestoreState(const std::string& bytes) {
  ByteReader reader(bytes);
  uint32_t magic = 0;
  uint8_t has_inner = 0;
  if (!reader.GetU32(&magic) || magic != kForwardingSnapshotMagic ||
      !reader.GetU8(&has_inner)) {
    return Status::ParseError("forwarding snapshot: bad header");
  }
  if (has_inner != 0) {
    std::string inner_bytes;
    if (!reader.GetString(&inner_bytes)) {
      return Status::ParseError("forwarding snapshot: truncated inner state");
    }
    if (inner_snapshot_ == nullptr) {
      return Status::FailedPrecondition(
          "forwarding snapshot has inner state but bolt is not Snapshottable");
    }
    INSIGHT_RETURN_NOT_OK(inner_snapshot_->RestoreState(inner_bytes));
  }
  std::string egress_bytes;
  if (!reader.GetString(&egress_bytes) || !reader.exhausted()) {
    return Status::ParseError("forwarding snapshot: truncated egress state");
  }
  return buffer_->Restore(egress_bytes);
}

// ---------------------------------------------------------------------------
// EgressBolt

EgressBolt::EgressBolt(std::shared_ptr<EgressGroup> group)
    : group_(std::move(group)) {}

void EgressBolt::Prepare(const dsps::TaskContext& context) {
  buffer_ = group_->buffers.at(static_cast<size_t>(context.task_index));
  fresh_seed_ = FreshSeed(context.task_index);
}

void EgressBolt::Execute(const dsps::Tuple& input,
                         dsps::Collector* collector) {
  (void)collector;  // terminal: the remote workers are the subscribers
  uint64_t wire_id = input.dedup_id() != 0
                         ? Splitmix64(input.dedup_id() ^ kEgressHopSalt)
                         : Splitmix64(fresh_seed_ ^ ++fresh_counter_);
  buffer_->Add(input.payload(), wire_id, input.spout_time(),
               input.priority());
}

Status EgressBolt::SnapshotState(std::string* out) const {
  out->clear();
  ByteWriter writer(out);
  writer.PutU32(kEgressBoltSnapshotMagic);
  std::string egress_bytes;
  INSIGHT_RETURN_NOT_OK(buffer_->Snapshot(&egress_bytes));
  writer.PutString(egress_bytes);
  return Status::OK();
}

Status EgressBolt::RestoreState(const std::string& bytes) {
  ByteReader reader(bytes);
  uint32_t magic = 0;
  std::string egress_bytes;
  if (!reader.GetU32(&magic) || magic != kEgressBoltSnapshotMagic ||
      !reader.GetString(&egress_bytes) || !reader.exhausted()) {
    return Status::ParseError("egress bolt snapshot: bad header");
  }
  return buffer_->Restore(egress_bytes);
}

}  // namespace dist
}  // namespace insight
