#ifndef INSIGHT_DIST_PROTO_H_
#define INSIGHT_DIST_PROTO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "dsps/metrics.h"
#include "observability/export.h"

namespace insight {
namespace dist {

/// Control- and data-plane message payloads (the bytes inside net::Frame
/// payloads, one struct per FrameType) plus their codecs. Everything is
/// encoded with the bounds-checked ByteWriter/ByteReader primitives; every
/// decoder returns a clean error on truncation or garbage.

/// kHello — worker -> supervisor, first frame on the control connection.
struct WorkerHello {
  uint32_t worker_id = 0;
  uint64_t incarnation = 0;
  /// The worker's data-plane listener (ephemeral, chosen by the kernel).
  uint16_t data_port = 0;
};

/// kPeerTable — supervisor -> every worker, re-broadcast whenever a worker
/// registers (including restarts, which change ports and incarnations).
struct PeerEntry {
  uint32_t worker_id = 0;
  uint64_t incarnation = 0;
  uint16_t data_port = 0;
};
struct PeerTable {
  std::vector<PeerEntry> peers;
};

/// kStatus — worker heartbeat. The supervisor declares the cluster quiescent
/// (and starts the drain) once every worker reports user spouts exhausted
/// and all in-flight counters zero for two consecutive sweeps.
struct WorkerStatus {
  uint32_t worker_id = 0;
  uint64_t incarnation = 0;
  bool user_spouts_done = false;
  uint64_t pending_trees = 0;
  int64_t in_flight = 0;
  uint64_t egress_unacked_frames = 0;
  uint64_t ingress_queued = 0;
  uint64_t ingress_inflight = 0;
};

/// kShutdown — supervisor -> workers. Drain: stop ingress sources, let the
/// local runtime complete, report kFinished. Abort: stop immediately.
struct ShutdownRequest {
  bool abort = false;
};

/// kFinished — worker -> supervisor right before a clean exit.
struct FinishedNote {
  uint32_t worker_id = 0;
  uint64_t incarnation = 0;
};

/// kChannelHello — first frame on a worker->worker data connection. The
/// receiver keys duplicate-suppression state by sender incarnation: a
/// restarted sender resends everything its restored egress buffers hold,
/// and the receiver's per-task dedup ledgers suppress re-execution.
struct ChannelHello {
  uint32_t worker_id = 0;
  uint64_t incarnation = 0;
};

/// kHopAck — receiver -> sender on the data connection: these frame
/// sequences of (stream, sender_task) are fully resolved on the receiving
/// worker (every tuple acked or failed locally, covered by durable
/// checkpoints when checkpointing is on) and may leave the sender's
/// retransmit buffer.
struct HopAck {
  std::string stream;
  uint32_t sender_task = 0;
  /// Receiver-granted credit: free tuple slots in the stream's ingress
  /// queue at ack time (pause_threshold minus queued). A credit-flow
  /// sender caps its unsent frames to this budget instead of blindly
  /// filling the window; a zero grant pauses sending until the next ack.
  uint32_t credits = 0;
  std::vector<uint64_t> seqs;
};

/// kMetrics — worker -> supervisor: the worker registry's Prometheus
/// snapshot plus window reports taken since the last send. The supervisor
/// merges snapshots under a worker="N" label so the observability layer
/// sees the whole cluster.
struct MetricsReport {
  uint32_t worker_id = 0;
  uint64_t incarnation = 0;
  observability::MetricsSnapshot snapshot;
  std::vector<dsps::MetricsRegistry::WindowReport> windows;
};

void EncodeWorkerHello(const WorkerHello& msg, std::string* out);
Status DecodeWorkerHello(const std::string& payload, WorkerHello* out);

void EncodePeerTable(const PeerTable& msg, std::string* out);
Status DecodePeerTable(const std::string& payload, PeerTable* out);

void EncodeWorkerStatus(const WorkerStatus& msg, std::string* out);
Status DecodeWorkerStatus(const std::string& payload, WorkerStatus* out);

void EncodeShutdownRequest(const ShutdownRequest& msg, std::string* out);
Status DecodeShutdownRequest(const std::string& payload,
                             ShutdownRequest* out);

void EncodeFinishedNote(const FinishedNote& msg, std::string* out);
Status DecodeFinishedNote(const std::string& payload, FinishedNote* out);

void EncodeChannelHello(const ChannelHello& msg, std::string* out);
Status DecodeChannelHello(const std::string& payload, ChannelHello* out);

void EncodeHopAck(const HopAck& msg, std::string* out);
Status DecodeHopAck(const std::string& payload, HopAck* out);

void EncodeMetricsReport(const MetricsReport& msg, std::string* out);
Status DecodeMetricsReport(const std::string& payload, MetricsReport* out);

}  // namespace dist
}  // namespace insight

#endif  // INSIGHT_DIST_PROTO_H_
