#include "dist/runtime.h"

#include <cstdio>
#include <utility>

namespace insight {
namespace dist {

DistributedRuntime::DistributedRuntime(dsps::Topology topology,
                                       DistOptions options)
    : topology_(std::move(topology)), options_(std::move(options)) {}

Status DistributedRuntime::Start() {
  if (supervisor_ != nullptr) {
    return Status::FailedPrecondition("distributed runtime already started");
  }
  placement_ =
      ResolvePlacement(topology_, options_.placement, options_.num_workers);
  INSIGHT_RETURN_NOT_OK(
      ValidatePlacement(topology_, placement_, options_.num_workers));
  if (options_.runtime.enable_checkpointing &&
      options_.checkpoint_dir.empty()) {
    return Status::InvalidArgument(
        "checkpointing enabled but DistOptions::checkpoint_dir is empty");
  }
  supervisor_ = std::make_unique<Supervisor>(options_);
  return supervisor_->Start();
}

int DistributedRuntime::WaitForCompletion(MicrosT timeout_micros) {
  if (supervisor_ == nullptr) return 2;
  return supervisor_->WaitForCompletion(timeout_micros);
}

void DistributedRuntime::KillWorker(uint32_t worker_id) {
  if (supervisor_ != nullptr) supervisor_->KillWorker(worker_id);
}

uint64_t DistributedRuntime::worker_restarts() const {
  return supervisor_ != nullptr ? supervisor_->worker_restarts() : 0;
}

observability::MetricsSnapshot DistributedRuntime::ClusterMetrics() const {
  return supervisor_ != nullptr ? supervisor_->ClusterMetrics()
                                : observability::MetricsSnapshot{};
}

std::vector<dsps::MetricsRegistry::WindowReport>
DistributedRuntime::ClusterWindows() const {
  return supervisor_ != nullptr
             ? supervisor_->ClusterWindows()
             : std::vector<dsps::MetricsRegistry::WindowReport>{};
}

int DistributedRuntime::Main(int argc, char** argv,
                             const std::function<dsps::Topology()>& build,
                             const DistOptions& options,
                             MicrosT timeout_micros) {
  WorkerSpec spec;
  if (ParseWorkerSpec(argc, argv, &spec)) {
    return RunWorker(spec, build(), options);
  }
  DistributedRuntime runtime(build(), options);
  Status status = runtime.Start();
  if (!status.ok()) {
    std::fprintf(stderr, "[supervisor] start failed: %s\n",
                 status.ToString().c_str());
    return 2;
  }
  return runtime.WaitForCompletion(timeout_micros);
}

}  // namespace dist
}  // namespace insight
