#ifndef INSIGHT_DIST_WORKER_H_
#define INSIGHT_DIST_WORKER_H_

#include <cstdint>

#include "dist/options.h"
#include "dsps/topology.h"

namespace insight {
namespace dist {

/// Identity handed to a spawned worker process on its command line. The
/// supervisor re-execs the launching binary (symmetric-binary model: every
/// process builds the identical topology from user code, and these flags
/// select the worker role).
struct WorkerSpec {
  uint32_t worker_id = 0;
  uint64_t incarnation = 0;
  uint16_t control_port = 0;
};

/// Recognizes `--insight-worker-id=N --insight-incarnation=K
/// --insight-control-port=P`. Returns true — meaning this process is a
/// spawned worker — only when all three flags are present.
bool ParseWorkerSpec(int argc, char** argv, WorkerSpec* spec);

/// Runs one worker process to completion: builds this worker's slice of the
/// topology (ingress spouts for remote sources, egress capture for remote
/// destinations), serves the data plane, heartbeats the supervisor, drains
/// on command, and exits. Returns the process exit code.
int RunWorker(const WorkerSpec& spec, dsps::Topology topology,
              const DistOptions& options);

}  // namespace dist
}  // namespace insight

#endif  // INSIGHT_DIST_WORKER_H_
