#include "dist/supervisor.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <utility>

#ifdef __linux__
#include <csignal>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace insight {
namespace dist {

namespace {

constexpr int kControlListenerTag = 0;

MicrosT SteadyNowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string WorkerLabel(uint32_t worker_id, const std::string& labels) {
  std::string out = "worker=\"" + std::to_string(worker_id) + "\"";
  if (!labels.empty()) out += "," + labels;
  return out;
}

}  // namespace

Supervisor::Supervisor(const DistOptions& options) : options_(options) {}

Supervisor::~Supervisor() {
#ifdef __linux__
  MutexLock lock(mutex_);
  for (auto& [id, proc] : workers_) {
    if (proc.pid > 0) {
      kill(static_cast<pid_t>(proc.pid), SIGKILL);
      waitpid(static_cast<pid_t>(proc.pid), nullptr, 0);
      proc.pid = 0;
    }
  }
#endif
  if (loop_ != nullptr) loop_->Stop();
}

Status Supervisor::Start() {
#ifndef __linux__
  return Status::Unimplemented("distributed runtime requires linux");
#else
  net::EventLoop::Callbacks callbacks;
  callbacks.on_frame = [this](net::EventLoop::ConnId id, net::Frame frame) {
    OnFrame(id, std::move(frame));
  };
  callbacks.on_close = [this](net::EventLoop::ConnId id, const Status&) {
    OnClose(id);
  };
  callbacks.on_tick = [this]() { OnTick(); };
  loop_ = std::make_unique<net::EventLoop>(
      std::move(callbacks), options_.heartbeat_interval_micros / 2);
  INSIGHT_ASSIGN_OR_RETURN(control_port_,
                           loop_->Listen(0, kControlListenerTag));
  INSIGHT_RETURN_NOT_OK(loop_->Start());
  MutexLock lock(mutex_);
  started_ = true;
  for (uint32_t id = 0; id < options_.num_workers; ++id) {
    WorkerProc& proc = workers_[id];
    proc.incarnation = 1;
    INSIGHT_RETURN_NOT_OK(SpawnLocked(id));
  }
  return Status::OK();
#endif
}

Status Supervisor::SpawnLocked(uint32_t worker_id) {
#ifndef __linux__
  return Status::Unimplemented("distributed runtime requires linux");
#else
  WorkerProc& proc = workers_[worker_id];
  std::vector<std::string> args;
  args.push_back("/proc/self/exe");
  for (const std::string& arg : options_.worker_args) args.push_back(arg);
  args.push_back("--insight-worker-id=" + std::to_string(worker_id));
  args.push_back("--insight-incarnation=" + std::to_string(proc.incarnation));
  args.push_back("--insight-control-port=" + std::to_string(control_port_));
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& arg : args) argv.push_back(arg.data());
  argv.push_back(nullptr);

  pid_t pid = fork();
  if (pid < 0) {
    return Status::IoError("fork failed");
  }
  if (pid == 0) {
    // Child: becomes the worker. fork-from-multithreaded is safe here
    // because nothing runs between fork and exec.
    execv("/proc/self/exe", argv.data());
    std::_Exit(127);
  }
  if (proc.conn != 0) {
    conn_worker_.erase(proc.conn);
    proc.conn = 0;
  }
  proc.pid = pid;
  proc.hello_received = false;
  proc.finished = false;
  proc.has_status = false;
  proc.data_port = 0;
  proc.spawned_micros = SteadyNowMicros();
  proc.last_heartbeat_micros = 0;
  return Status::OK();
#endif
}

void Supervisor::BroadcastPeerTableLocked() {
  PeerTable table;
  for (const auto& [id, proc] : workers_) {
    if (!proc.hello_received) continue;
    PeerEntry entry;
    entry.worker_id = id;
    entry.incarnation = proc.incarnation;
    entry.data_port = proc.data_port;
    table.peers.push_back(entry);
  }
  net::Frame frame;
  frame.type = net::FrameType::kPeerTable;
  EncodePeerTable(table, &frame.payload);
  for (const auto& [id, proc] : workers_) {
    if (proc.conn != 0) loop_->Send(proc.conn, frame);
  }
}

void Supervisor::SendShutdownLocked(net::EventLoop::ConnId conn, bool abort) {
  ShutdownRequest request;
  request.abort = abort;
  net::Frame frame;
  frame.type = net::FrameType::kShutdown;
  EncodeShutdownRequest(request, &frame.payload);
  loop_->Send(conn, frame);
}

void Supervisor::OnFrame(net::EventLoop::ConnId id, net::Frame frame) {
  const MicrosT now = SteadyNowMicros();
  switch (frame.type) {
    case net::FrameType::kHello: {
      WorkerHello hello;
      if (!DecodeWorkerHello(frame.payload, &hello).ok()) {
        loop_->Close(id);
        return;
      }
      MutexLock lock(mutex_);
      auto it = workers_.find(hello.worker_id);
      if (it == workers_.end() ||
          it->second.incarnation != hello.incarnation) {
        loop_->Close(id);  // unknown worker or stale incarnation
        return;
      }
      WorkerProc& proc = it->second;
      proc.conn = id;
      proc.data_port = hello.data_port;
      proc.hello_received = true;
      proc.last_heartbeat_micros = now;
      conn_worker_[id] = hello.worker_id;
      BroadcastPeerTableLocked();
      if (draining_) SendShutdownLocked(id, aborted_);
      return;
    }
    case net::FrameType::kStatus: {
      WorkerStatus status;
      if (!DecodeWorkerStatus(frame.payload, &status).ok()) return;
      MutexLock lock(mutex_);
      auto it = conn_worker_.find(id);
      if (it == conn_worker_.end()) return;
      WorkerProc& proc = workers_[it->second];
      if (status.incarnation != proc.incarnation) return;
      proc.last_status = status;
      proc.has_status = true;
      proc.last_heartbeat_micros = now;
      return;
    }
    case net::FrameType::kMetrics: {
      MetricsReport report;
      if (!DecodeMetricsReport(frame.payload, &report).ok()) return;
      MutexLock lock(mutex_);
      auto it = conn_worker_.find(id);
      if (it == conn_worker_.end()) return;
      WorkerProc& proc = workers_[it->second];
      if (report.incarnation != proc.incarnation) return;
      for (const auto& window : report.windows) windows_.push_back(window);
      proc.last_metrics = std::move(report);
      proc.has_metrics = true;
      proc.last_heartbeat_micros = now;
      return;
    }
    case net::FrameType::kFinished: {
      FinishedNote note;
      if (!DecodeFinishedNote(frame.payload, &note).ok()) return;
      MutexLock lock(mutex_);
      auto it = workers_.find(note.worker_id);
      if (it == workers_.end() ||
          it->second.incarnation != note.incarnation) {
        return;
      }
      it->second.finished = true;
      CheckDoneLocked();
      return;
    }
    default:
      return;
  }
}

void Supervisor::OnClose(net::EventLoop::ConnId id) {
  MutexLock lock(mutex_);
  auto it = conn_worker_.find(id);
  if (it == conn_worker_.end()) return;
  WorkerProc& proc = workers_[it->second];
  if (proc.conn == id) proc.conn = 0;
  conn_worker_.erase(it);
  // Process death is handled by the waitpid sweep; losing the connection
  // alone only stops heartbeats, which the timeout sweep notices.
}

void Supervisor::OnTick() {
#ifdef __linux__
  const MicrosT now = SteadyNowMicros();
  // Reap exited children and restart the ones that died unexpectedly.
  for (;;) {
    int status = 0;
    pid_t pid = waitpid(-1, &status, WNOHANG);
    if (pid <= 0) break;
    MutexLock lock(mutex_);
    for (auto& [id, proc] : workers_) {
      if (proc.pid != pid) continue;
      proc.pid = 0;
      if (proc.finished || aborted_) {
        CheckDoneLocked();
      } else {
        ++proc.restarts;
        if (proc.restarts > options_.max_worker_restarts) {
          AbortRunLocked("worker " + std::to_string(id) +
                         " exceeded restart budget");
        } else {
          ++restarts_total_;
          ++proc.incarnation;
          Status spawn_status = SpawnLocked(id);
          if (!spawn_status.ok()) AbortRunLocked(spawn_status.ToString());
        }
      }
      break;
    }
  }
  MutexLock lock(mutex_);
  if (done_) return;
  // Heartbeat timeouts: SIGKILL; the next sweep reaps and restarts.
  for (auto& [id, proc] : workers_) {
    if (proc.pid <= 0 || proc.finished) continue;
    MicrosT base = proc.last_heartbeat_micros > 0 ? proc.last_heartbeat_micros
                                                  : proc.spawned_micros;
    if (now - base > options_.heartbeat_timeout_micros) {
      kill(static_cast<pid_t>(proc.pid), SIGKILL);
      // Reset the clock so one hang triggers one kill, not one per tick.
      proc.last_heartbeat_micros = now;
    }
  }
  // Cluster quiescence -> drain broadcast.
  if (!draining_ && !aborted_) {
    if (now - last_quiet_check_micros_ >=
        2 * options_.heartbeat_interval_micros) {
      last_quiet_check_micros_ = now;
      quiet_sweeps_ = AllQuietLocked(now) ? quiet_sweeps_ + 1 : 0;
      if (quiet_sweeps_ >= 2) {
        draining_ = true;
        for (const auto& [id, proc] : workers_) {
          if (proc.conn != 0) SendShutdownLocked(proc.conn, false);
        }
      }
    }
  }
#endif
}

bool Supervisor::AllQuietLocked(MicrosT now) {
  for (const auto& [id, proc] : workers_) {
    if (!proc.hello_received || !proc.has_status || proc.pid <= 0) {
      return false;
    }
    if (proc.last_status.incarnation != proc.incarnation) return false;
    if (now - proc.last_heartbeat_micros >
        options_.heartbeat_timeout_micros) {
      return false;
    }
    const WorkerStatus& status = proc.last_status;
    if (!status.user_spouts_done || status.pending_trees != 0 ||
        status.in_flight > 0 || status.egress_unacked_frames != 0 ||
        status.ingress_queued != 0 || status.ingress_inflight != 0) {
      return false;
    }
  }
  return true;
}

void Supervisor::AbortRunLocked(const std::string& why) {
  if (aborted_) return;
  std::fprintf(stderr, "[supervisor] aborting run: %s\n", why.c_str());
  aborted_ = true;
  draining_ = true;
  for (const auto& [id, proc] : workers_) {
    if (proc.conn != 0) SendShutdownLocked(proc.conn, true);
  }
  done_cv_.NotifyAll();
}

void Supervisor::CheckDoneLocked() {
  for (const auto& [id, proc] : workers_) {
    if (!proc.finished || proc.pid != 0) return;
  }
  done_ = true;
  done_cv_.NotifyAll();
}

int Supervisor::WaitForCompletion(MicrosT timeout_micros) {
  const MicrosT deadline =
      timeout_micros > 0 ? SteadyNowMicros() + timeout_micros : 0;
  bool aborted;
  {
    MutexLock lock(mutex_);
    while (!done_ && !aborted_) {
      if (deadline > 0) {
        if (SteadyNowMicros() >= deadline) {
          AbortRunLocked("run timed out");
          break;
        }
        done_cv_.WaitFor(mutex_, std::chrono::milliseconds(100));
      } else {
        done_cv_.Wait(mutex_);
      }
    }
    aborted = aborted_;
  }
#ifdef __linux__
  if (aborted) {
    // Grace period for the abort broadcast, then force-kill survivors.
    const MicrosT grace_deadline = SteadyNowMicros() + 500'000;
    for (;;) {
      bool alive = false;
      {
        MutexLock lock(mutex_);
        for (const auto& [id, proc] : workers_) alive = alive || proc.pid > 0;
      }
      if (!alive || SteadyNowMicros() >= grace_deadline) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    MutexLock lock(mutex_);
    for (auto& [id, proc] : workers_) {
      if (proc.pid > 0) {
        kill(static_cast<pid_t>(proc.pid), SIGKILL);
        waitpid(static_cast<pid_t>(proc.pid), nullptr, 0);
        proc.pid = 0;
      }
    }
  }
#endif
  loop_->Stop();
  return aborted ? 1 : 0;
}

void Supervisor::KillWorker(uint32_t worker_id) {
#ifdef __linux__
  MutexLock lock(mutex_);
  auto it = workers_.find(worker_id);
  if (it == workers_.end() || it->second.pid <= 0) return;
  kill(static_cast<pid_t>(it->second.pid), SIGKILL);
#else
  (void)worker_id;
#endif
}

uint64_t Supervisor::worker_restarts() const {
  MutexLock lock(mutex_);
  return restarts_total_;
}

observability::MetricsSnapshot Supervisor::ClusterMetrics() const {
  MutexLock lock(mutex_);
  observability::MetricsSnapshot merged;
  for (const auto& [id, proc] : workers_) {
    if (!proc.has_metrics) continue;
    for (const observability::CounterFamily& family :
         proc.last_metrics.snapshot.counters) {
      observability::CounterFamily* target = nullptr;
      for (observability::CounterFamily& existing : merged.counters) {
        if (existing.name == family.name) {
          target = &existing;
          break;
        }
      }
      if (target == nullptr) {
        merged.counters.push_back({family.name, family.help, {}});
        target = &merged.counters.back();
      }
      for (const observability::CounterSample& sample : family.samples) {
        target->samples.push_back(
            {WorkerLabel(id, sample.labels), sample.value});
      }
    }
    for (const observability::HistogramFamily& family :
         proc.last_metrics.snapshot.histograms) {
      observability::HistogramFamily* target = nullptr;
      for (observability::HistogramFamily& existing : merged.histograms) {
        if (existing.name == family.name) {
          target = &existing;
          break;
        }
      }
      if (target == nullptr) {
        merged.histograms.push_back({family.name, family.help, {}});
        target = &merged.histograms.back();
      }
      for (const observability::HistogramSample& sample : family.samples) {
        target->samples.push_back(
            {WorkerLabel(id, sample.labels), sample.histogram, sample.sum});
      }
    }
  }
  return merged;
}

std::vector<dsps::MetricsRegistry::WindowReport> Supervisor::ClusterWindows()
    const {
  MutexLock lock(mutex_);
  return windows_;
}

}  // namespace dist
}  // namespace insight
