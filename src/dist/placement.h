#ifndef INSIGHT_DIST_PLACEMENT_H_
#define INSIGHT_DIST_PLACEMENT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "dsps/topology.h"

namespace insight {
namespace dist {

/// Which worker hosts each component. Placement is component-granular: all
/// tasks of a component live on its worker (the paper's per-node executor
/// model; splitting a component across workers would put one dedup ledger
/// on two machines).
struct Placement {
  std::map<std::string, uint32_t> worker_of;
};

/// Default policy: components round-robin across workers in declaration
/// order. With >= 2 workers this lands adjacent pipeline stages on
/// different workers, which is exactly what the effectively-once design
/// wants — a checkpointed task's remote subscribers are covered by the
/// egress retransmit buffer, while co-located edges only get thread-level
/// delivery guarantees.
Placement RoundRobinPlacement(const dsps::Topology& topology,
                              uint32_t num_workers);

/// Fills any components missing from `partial` round-robin and returns the
/// completed placement.
Placement ResolvePlacement(const dsps::Topology& topology,
                           const Placement& partial, uint32_t num_workers);

/// Rejects placements that cannot run: unknown component names, worker ids
/// out of range, components left unplaced, or a kDirect subscription
/// crossing workers (EmitDirect addresses a task index, which is only
/// meaningful inside one worker's sub-topology).
Status ValidatePlacement(const dsps::Topology& topology,
                         const Placement& placement, uint32_t num_workers);

/// Everything one worker needs to know about its slice of the topology.
struct WorkerPlan {
  /// Components hosted here, in topology declaration order.
  std::vector<std::string> owned;
  /// Owned source component -> sorted unique remote workers subscribing to
  /// it (empty vector entries are omitted).
  std::map<std::string, std::vector<uint32_t>> remote_dests;
  /// Remote source component (owned elsewhere, subscribed to by an owned
  /// bolt) -> the worker that hosts it.
  std::map<std::string, uint32_t> ingress_sources;
};

WorkerPlan PlanForWorker(const dsps::Topology& topology,
                         const Placement& placement, uint32_t worker_id);

/// Name of the ingress spout injected for remote source `source` on a
/// receiving worker, and of the egress bolt injected after an owned spout
/// `source` with remote subscribers. Both prefixes are reserved: user
/// component names must not start with them.
std::string IngressName(const std::string& source);
std::string EgressName(const std::string& source);
bool IsReservedComponentName(const std::string& name);

}  // namespace dist
}  // namespace insight

#endif  // INSIGHT_DIST_PLACEMENT_H_
