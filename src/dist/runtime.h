#ifndef INSIGHT_DIST_RUNTIME_H_
#define INSIGHT_DIST_RUNTIME_H_

#include <functional>
#include <memory>
#include <vector>

#include "common/status.h"
#include "dist/options.h"
#include "dist/supervisor.h"
#include "dist/worker.h"
#include "dsps/topology.h"

namespace insight {
namespace dist {

/// Multi-process execution of a topology: the paper's cluster deployment
/// (one worker process per node, Section 5) on one machine. The same user
/// binary runs every role — the supervisor re-execs itself per worker, and
/// each worker builds the identical Topology from user code, keeps the
/// components placed on it, and swaps remote edges for the net/ transport
/// (see DESIGN.md "Distributed runtime").
///
/// Typical use is through Main(); tests that need the chaos hooks construct
/// the runtime directly on the supervisor branch:
///
///   dist::WorkerSpec spec;
///   if (dist::ParseWorkerSpec(argc, argv, &spec))
///     return dist::RunWorker(spec, BuildTopology(), options);
///   dist::DistributedRuntime runtime(BuildTopology(), options);
///   runtime.Start();
///   runtime.KillWorker(1);  // optional chaos
///   return runtime.WaitForCompletion();
class DistributedRuntime {
 public:
  DistributedRuntime(dsps::Topology topology, DistOptions options);

  /// Validates the placement against the topology, then starts the
  /// supervisor (spawning the workers).
  Status Start();

  /// Blocks until the run drains cluster-wide or aborts; returns the run
  /// exit code (0 = success). `timeout_micros` 0 = no timeout.
  int WaitForCompletion(MicrosT timeout_micros = 0);

  /// Chaos hook: SIGKILL the worker's current process; supervision restarts
  /// it with the next incarnation.
  void KillWorker(uint32_t worker_id);

  uint64_t worker_restarts() const;
  observability::MetricsSnapshot ClusterMetrics() const;
  std::vector<dsps::MetricsRegistry::WindowReport> ClusterWindows() const;

  /// The resolved (completed + validated) placement.
  const Placement& placement() const { return placement_; }

  /// Whole-program entry point for the symmetric binary: runs the worker
  /// role when the `--insight-*` flags are present, otherwise supervises a
  /// full run. `build` is invoked once in every process and must construct
  /// the identical topology.
  static int Main(int argc, char** argv,
                  const std::function<dsps::Topology()>& build,
                  const DistOptions& options, MicrosT timeout_micros = 0);

 private:
  dsps::Topology topology_;
  DistOptions options_;
  Placement placement_;
  std::unique_ptr<Supervisor> supervisor_;
};

}  // namespace dist
}  // namespace insight

#endif  // INSIGHT_DIST_RUNTIME_H_
