#include "dist/placement.h"

#include <algorithm>

namespace insight {
namespace dist {

namespace {

constexpr char kIngressPrefix[] = "__in_";
constexpr char kEgressPrefix[] = "__out_";

bool HasPrefix(const std::string& name, const char* prefix) {
  return name.rfind(prefix, 0) == 0;
}

}  // namespace

std::string IngressName(const std::string& source) {
  return kIngressPrefix + source;
}

std::string EgressName(const std::string& source) {
  return kEgressPrefix + source;
}

bool IsReservedComponentName(const std::string& name) {
  return HasPrefix(name, kIngressPrefix) || HasPrefix(name, kEgressPrefix);
}

Placement RoundRobinPlacement(const dsps::Topology& topology,
                              uint32_t num_workers) {
  Placement placement;
  uint32_t next = 0;
  for (const dsps::ComponentDef& component : topology.components()) {
    placement.worker_of[component.name] = next;
    next = (next + 1) % std::max<uint32_t>(num_workers, 1);
  }
  return placement;
}

Placement ResolvePlacement(const dsps::Topology& topology,
                           const Placement& partial, uint32_t num_workers) {
  Placement placement = partial;
  uint32_t next = 0;
  for (const dsps::ComponentDef& component : topology.components()) {
    if (placement.worker_of.count(component.name) != 0) continue;
    placement.worker_of[component.name] =
        next % std::max<uint32_t>(num_workers, 1);
    ++next;
  }
  return placement;
}

Status ValidatePlacement(const dsps::Topology& topology,
                         const Placement& placement, uint32_t num_workers) {
  if (num_workers == 0) {
    return Status::InvalidArgument("placement: num_workers must be >= 1");
  }
  for (const auto& [name, worker] : placement.worker_of) {
    if (topology.Find(name) == nullptr) {
      return Status::InvalidArgument("placement: unknown component '" + name +
                                     "'");
    }
    if (worker >= num_workers) {
      return Status::InvalidArgument("placement: component '" + name +
                                     "' assigned to worker " +
                                     std::to_string(worker) + " of " +
                                     std::to_string(num_workers));
    }
  }
  for (const dsps::ComponentDef& component : topology.components()) {
    if (IsReservedComponentName(component.name)) {
      return Status::InvalidArgument(
          "placement: component name '" + component.name +
          "' uses a reserved ingress/egress prefix");
    }
    auto it = placement.worker_of.find(component.name);
    if (it == placement.worker_of.end()) {
      return Status::InvalidArgument("placement: component '" +
                                     component.name + "' is not placed");
    }
    for (const dsps::Subscription& subscription : component.subscriptions) {
      if (subscription.grouping != dsps::Grouping::kDirect) continue;
      auto source_it = placement.worker_of.find(subscription.source);
      if (source_it != placement.worker_of.end() &&
          source_it->second != it->second) {
        return Status::InvalidArgument(
            "placement: direct grouping edge " + subscription.source + " -> " +
            component.name +
            " crosses workers (EmitDirect task indices are worker-local)");
      }
    }
  }
  return Status::OK();
}

WorkerPlan PlanForWorker(const dsps::Topology& topology,
                         const Placement& placement, uint32_t worker_id) {
  WorkerPlan plan;
  for (const dsps::ComponentDef& component : topology.components()) {
    uint32_t owner = placement.worker_of.at(component.name);
    if (owner == worker_id) {
      plan.owned.push_back(component.name);
      // Remote destinations: workers hosting subscribers of this component.
      std::vector<uint32_t> dests;
      for (const dsps::ComponentDef* subscriber :
           topology.Subscribers(component.name)) {
        uint32_t sub_owner = placement.worker_of.at(subscriber->name);
        if (sub_owner != worker_id) dests.push_back(sub_owner);
      }
      std::sort(dests.begin(), dests.end());
      dests.erase(std::unique(dests.begin(), dests.end()), dests.end());
      if (!dests.empty()) plan.remote_dests[component.name] = std::move(dests);
    } else {
      // Does any owned bolt subscribe to this remote component?
      for (const dsps::ComponentDef* subscriber :
           topology.Subscribers(component.name)) {
        if (placement.worker_of.at(subscriber->name) == worker_id) {
          plan.ingress_sources[component.name] = owner;
          break;
        }
      }
    }
  }
  return plan;
}

}  // namespace dist
}  // namespace insight
