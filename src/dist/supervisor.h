#ifndef INSIGHT_DIST_SUPERVISOR_H_
#define INSIGHT_DIST_SUPERVISOR_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "dist/options.h"
#include "dist/proto.h"
#include "net/event_loop.h"
#include "observability/export.h"

namespace insight {
namespace dist {

/// Parent process of a distributed run: spawns worker processes by
/// re-executing this binary (`/proc/self/exe`) with `--insight-*` role
/// flags, serves the control plane (registration, peer-table broadcast,
/// heartbeats, metrics collection), restarts workers that die or stop
/// heartbeating (with a restart budget, like the crash-loop breaker), and
/// initiates the drain once the cluster is quiescent for two consecutive
/// sweeps.
class Supervisor {
 public:
  explicit Supervisor(const DistOptions& options);
  ~Supervisor();

  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  /// Binds the control listener and spawns `num_workers` workers.
  Status Start();

  /// Blocks until the run completes (all workers drained and exited) or
  /// aborts (restart budget exhausted / `timeout_micros` elapsed, 0 = no
  /// timeout). Returns the run's exit code: 0 = success.
  int WaitForCompletion(MicrosT timeout_micros = 0);

  /// Chaos hook: SIGKILLs the worker's current process. The supervision
  /// sweep restarts it with the next incarnation.
  void KillWorker(uint32_t worker_id);

  /// Workers restarted so far (not counting initial spawns).
  uint64_t worker_restarts() const;

  /// Latest metrics snapshot of every worker, merged under a `worker="N"`
  /// label so one exporter shows the whole cluster.
  observability::MetricsSnapshot ClusterMetrics() const;

  /// Window reports collected from every worker, in arrival order.
  std::vector<dsps::MetricsRegistry::WindowReport> ClusterWindows() const;

 private:
  struct WorkerProc {
    int64_t pid = 0;  // 0 = not running (reaped)
    uint64_t incarnation = 0;
    int restarts = 0;
    net::EventLoop::ConnId conn = 0;  // control connection, 0 = none
    uint16_t data_port = 0;
    bool hello_received = false;
    bool finished = false;
    MicrosT last_heartbeat_micros = 0;
    MicrosT spawned_micros = 0;
    WorkerStatus last_status;
    bool has_status = false;
    MetricsReport last_metrics;
    bool has_metrics = false;
  };

  Status SpawnLocked(uint32_t worker_id) REQUIRES(mutex_);
  void BroadcastPeerTableLocked() REQUIRES(mutex_);
  void SendShutdownLocked(net::EventLoop::ConnId conn, bool abort)
      REQUIRES(mutex_);
  void OnFrame(net::EventLoop::ConnId id, net::Frame frame);
  void OnClose(net::EventLoop::ConnId id);
  void OnTick();
  bool AllQuietLocked(MicrosT now) REQUIRES(mutex_);
  void AbortRunLocked(const std::string& why) REQUIRES(mutex_);
  void CheckDoneLocked() REQUIRES(mutex_);

  const DistOptions options_;
  std::unique_ptr<net::EventLoop> loop_;
  uint16_t control_port_ = 0;

  mutable Mutex mutex_{TMS_LOCK_RANK(10)};
  CondVar done_cv_;
  std::map<uint32_t, WorkerProc> workers_ GUARDED_BY(mutex_);
  std::map<net::EventLoop::ConnId, uint32_t> conn_worker_ GUARDED_BY(mutex_);
  std::vector<dsps::MetricsRegistry::WindowReport> windows_
      GUARDED_BY(mutex_);
  uint64_t restarts_total_ GUARDED_BY(mutex_) = 0;
  MicrosT last_quiet_check_micros_ GUARDED_BY(mutex_) = 0;
  int quiet_sweeps_ GUARDED_BY(mutex_) = 0;
  bool draining_ GUARDED_BY(mutex_) = false;
  bool aborted_ GUARDED_BY(mutex_) = false;
  bool done_ GUARDED_BY(mutex_) = false;
  bool started_ GUARDED_BY(mutex_) = false;
};

}  // namespace dist
}  // namespace insight

#endif  // INSIGHT_DIST_SUPERVISOR_H_
