#ifndef INSIGHT_DIST_CHANNEL_H_
#define INSIGHT_DIST_CHANNEL_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "dsps/topology.h"
#include "net/wire.h"

namespace insight {
namespace dist {

/// Remote edges must survive a worker being killed mid-stream. The design
/// invariant (see DESIGN.md "Distributed runtime"): a tuple's effects may
/// only become durable *atomically with* the forwarding of its emissions.
/// Hence remote forwarding is captured at the emitting task itself —
/// ForwardingBolt snapshots the user bolt's state and its egress retransmit
/// buffer in one checkpoint — rather than through a downstream egress task
/// whose input queue would die with the process. Spout components get an
/// injected EgressBolt instead (spouts are not Snapshottable); their
/// replay buffer covers the in-process hop to it.

uint64_t Splitmix64(uint64_t x);

/// Chains a replay-stable wire id from the input's dedup id and the
/// emission ordinal within the current Execute call. Mirrors the runtime's
/// dedup chain so re-executions reproduce identical wire ids, which is what
/// lets the receiving worker's dedup ledgers suppress duplicates that
/// crossed the network.
uint64_t ChainWireId(uint64_t input_dedup_id, uint64_t emit_ordinal);

struct EgressOptions {
  /// Tuples staged per destination before a frame is cut (a batch = one
  /// frame; matches the local Outbox emit_batch spirit).
  size_t batch_tuples = 64;
  /// Unacked-frame window per destination; Add blocks when full
  /// (backpressure propagated to the executor thread).
  size_t window_frames = 128;
  /// Staged tuples older than this are flushed by the network tick.
  MicrosT flush_interval_micros = 2'000;
  /// Credit-based flow control: TakeSendable releases frames only while the
  /// destination's remote credit (granted back on every hop-ack, see
  /// HopAck::credits) covers their tuples, instead of window-filling and
  /// relying on the receiver's read-pause. Off by default — disabled
  /// behavior is byte-identical to the seed protocol (the credits field
  /// rides along but is ignored).
  bool credit_flow = false;
  /// Budget assumed for a destination before its first ack (and after a
  /// reconnect). Matches IngressOptions::pause_threshold's default.
  size_t initial_credits = 4096;
};

/// Per-(source component, task) retransmit buffer feeding every remote
/// destination worker. Owned by the Worker (shared_ptr) so the network
/// thread can reach it independently of bolt instance lifecycle.
///
/// Thread model: Add/Snapshot/Restore run on the executor thread owning the
/// task; HandleAck/TakeSendable/MarkDisconnected run on the network thread.
/// One mutex guards everything — frames are encoded at flush so the lock
/// hold is bounded.
class EgressBuffer {
 public:
  EgressBuffer(std::string stream, uint32_t sender_task,
               std::vector<uint32_t> dest_workers, EgressOptions options);

  /// Stages one tuple toward every destination, cutting frames at
  /// batch_tuples. Blocks while any destination's unacked window is full
  /// (until acks drain it or Shutdown).
  void Add(const net::ValuePayload& payload, uint64_t wire_id,
           MicrosT spout_time,
           dsps::TuplePriority priority = dsps::TuplePriority::kNormal);

  /// Serializes {next_seq, unacked frames} per destination (staging is
  /// flushed first so the snapshot covers every accepted tuple).
  Status Snapshot(std::string* out) const;
  /// Replaces the buffer contents; every restored frame is marked unsent so
  /// the network tick retransmits it.
  Status Restore(const std::string& bytes);

  /// Receiver resolved these frame sequences; drops them and releases Add
  /// waiters. `credits` is the receiver's current free-slot grant for this
  /// stream (consulted only under credit_flow; pass 0 otherwise).
  /// Runs on the network thread (an EventLoop frame handler): must never
  /// block, or one slow destination stalls every connection on the loop.
  void HandleAck(uint32_t dest_worker, const std::vector<uint64_t>& seqs,
                 uint32_t credits = 0) TMS_NON_BLOCKING;

  /// Encoded kTupleBatch payloads for `dest_worker` not yet sent on the
  /// current connection, in sequence order (marks them sent). Also cuts a
  /// frame from staging once it exceeds flush_interval_micros (pass the
  /// current monotonic time).
  std::vector<std::string> TakeSendable(uint32_t dest_worker,
                                        MicrosT now_micros) TMS_NON_BLOCKING;

  /// Connection to `dest_worker` dropped: marks every unacked frame for
  /// resend. Returns the number of in-flight tuples requeued.
  uint64_t MarkDisconnected(uint32_t dest_worker);

  uint64_t UnackedFrames() const;
  void Shutdown();

  const std::string& stream() const { return stream_; }
  uint32_t sender_task() const { return sender_task_; }
  const std::vector<uint32_t>& dest_workers() const { return dest_workers_; }

 private:
  struct FrameRec {
    uint32_t tuple_count = 0;
    std::string bytes;  // encoded kTupleBatch payload
    bool sent = false;  // on the current connection
  };
  struct Staged {
    net::ValuePayload payload;
    uint64_t wire_id = 0;
    MicrosT spout_time = 0;
    dsps::TuplePriority priority = dsps::TuplePriority::kNormal;
  };
  struct DestState {
    uint32_t worker = 0;
    uint64_t next_seq = 1;
    std::map<uint64_t, FrameRec> unacked;
    std::vector<Staged> staging;
    MicrosT staging_since = 0;
    /// Remaining credit-flow budget (tuples); refreshed by HandleAck from
    /// the receiver's grant minus what is already sent-but-unacked.
    int64_t remote_credits = 0;
  };

  void FlushStagingLocked(DestState* dest) REQUIRES(mutex_);

  const std::string stream_;
  const uint32_t sender_task_;
  const std::vector<uint32_t> dest_workers_;
  const EgressOptions options_;

  mutable Mutex mutex_{TMS_LOCK_RANK(30)};
  mutable CondVar window_cv_;
  /// Mutable so the const Snapshot can flush staging first (logical state
  /// is unchanged; same pattern as lazily-materialized caches).
  mutable std::vector<DestState> dests_ GUARDED_BY(mutex_);
  bool shutdown_ GUARDED_BY(mutex_) = false;
};

/// All egress buffers of one source component (one per task).
struct EgressGroup {
  std::string component;
  std::vector<std::shared_ptr<EgressBuffer>> buffers;  // indexed by task
};

struct IngressOptions {
  /// Reads from the sender are paused above this many queued tuples.
  size_t pause_threshold = 4096;
  /// Resolved frame sequences remembered per sender task for duplicate
  /// suppression (bounded FIFO; older duplicates are caught by the
  /// receiving tasks' dedup ledgers).
  size_t completed_capacity = 8192;
  /// Priority-aware shedding at frame admission: above the watermarks
  /// (occupancy = queued / pause_threshold) low- then normal-priority
  /// tuples are dropped instead of queued. A shed tuple's frame ref is
  /// resolved immediately so hop-acks still fire and the sender's
  /// retransmit buffer frees — the drop is deliberate, not a loss the
  /// sender should repair. Off by default.
  bool enable_shedding = false;
  double shed_low_watermark = 0.75;
  double shed_high_watermark = 0.90;
};

/// Receive side of one remote source stream: frame-level bookkeeping
/// (per-sender-task sequence tracking with incarnation-aware duplicate
/// suppression), the decoded-tuple queue the ingress spout drains, and the
/// in-flight map tying local tuple trees back to the frames that carried
/// them so hop-acks fire when a frame's tuples are all resolved.
class IngressQueue {
 public:
  IngressQueue(std::string stream, IngressOptions options);

  enum class Disposition { kAccepted, kDuplicate, kStale };

  /// Network thread: offers one decoded batch from the stream's sender at
  /// `incarnation`. kDuplicate re-acks through the ack sink; kStale frames
  /// (older incarnation) are dropped without acking.
  Disposition OfferFrame(uint64_t incarnation, const net::TupleBatch& batch);

  struct PendingTuple {
    uint64_t wire_id = 0;
    MicrosT spout_time = 0;
    net::ValuePayload payload;
    uint32_t sender_task = 0;
    uint64_t incarnation = 0;
    uint64_t seq = 0;
    dsps::TuplePriority priority = dsps::TuplePriority::kNormal;
  };

  /// Spout thread: moves up to `max` tuples out of the queue. The caller
  /// must follow up with TrackInflight (acking) or ResolveNow per tuple.
  size_t Drain(size_t max, std::vector<PendingTuple>* out);

  /// Registers the tuple as in flight under its wire id. Returns true when
  /// the caller should emit it; false when the id is already in flight (a
  /// retransmitted duplicate — its frame ref attaches to the existing
  /// entry and resolves with it, never emitting twice).
  bool TrackInflight(const PendingTuple& tuple);
  /// The local tree rooted at `wire_id` resolved (Ack or Fail): decrements
  /// every attached frame's outstanding count, emitting hop-acks for
  /// completed frames through the ack sink.
  void ResolveInflight(uint64_t wire_id);
  /// Non-acking path: resolves the tuple's frame ref immediately.
  void ResolveNow(const PendingTuple& tuple);

  /// Drain-shutdown: the spout reports exhaustion once done and empty.
  void MarkDone();
  bool Exhausted() const;

  size_t QueuedTuples() const;
  size_t InflightTuples() const;
  bool WantsPause() const;
  /// Tuples dropped by admission shedding, by priority tier.
  uint64_t SheddedTuples(dsps::TuplePriority priority) const;
  uint64_t SheddedTuples() const;

  /// Sink for hop-acks: (sender_task, seqs, credits) where credits is the
  /// queue's free-slot grant at resolution time (HopAck::credits). Called
  /// on whichever thread resolved the frame (spout executor or network);
  /// the sink must be thread-safe (EventLoop::Send is).
  void SetAckSink(
      std::function<void(uint32_t, std::vector<uint64_t>, uint32_t)> sink);

  const std::string& stream() const { return stream_; }

 private:
  struct FrameKey {
    uint32_t sender_task = 0;
    uint64_t incarnation = 0;
    uint64_t seq = 0;
  };
  struct FrameProgress {
    uint32_t outstanding = 0;
  };
  struct TaskChannel {
    std::map<uint64_t, FrameProgress> in_progress;  // seq -> outstanding
    std::deque<uint64_t> completed_fifo;
    std::unordered_set<uint64_t> completed;
  };

  /// Resolves one frame ref; appends any completed (task, seq) to `acks`.
  void ResolveRefLocked(const FrameKey& key,
                        std::vector<std::pair<uint32_t, uint64_t>>* acks)
      REQUIRES(mutex_);
  /// Free-slot grant advertised with outgoing hop-acks.
  uint32_t CreditsLocked() const REQUIRES(mutex_);
  void EmitAcks(std::vector<std::pair<uint32_t, uint64_t>> acks,
                uint32_t credits);

  const std::string stream_;
  const IngressOptions options_;

  mutable Mutex mutex_{TMS_LOCK_RANK(35)};
  uint64_t incarnation_ GUARDED_BY(mutex_) = 0;
  std::map<uint32_t, TaskChannel> channels_ GUARDED_BY(mutex_);
  std::deque<PendingTuple> queue_ GUARDED_BY(mutex_);
  std::unordered_map<uint64_t, std::vector<FrameKey>> inflight_
      GUARDED_BY(mutex_);
  bool done_ GUARDED_BY(mutex_) = false;
  uint64_t shed_[3] GUARDED_BY(mutex_) = {0, 0, 0};
  std::function<void(uint32_t, std::vector<uint64_t>, uint32_t)> ack_sink_
      GUARDED_BY(mutex_);
};

/// Spout injected for each remote source: re-roots received tuples under
/// their wire ids (EmitRooted), so the local acker tracks them and the
/// frame hop-ack fires only once the local tree resolves — with deferred
/// acking that means covered by durable checkpoints.
class IngressSpout : public dsps::Spout {
 public:
  IngressSpout(std::shared_ptr<IngressQueue> queue, bool acking)
      : queue_(std::move(queue)), acking_(acking) {}

  bool NextTuple(dsps::Collector* collector) override;
  void Ack(uint64_t message_id) override;
  void Fail(uint64_t message_id) override;

 private:
  std::shared_ptr<IngressQueue> queue_;
  const bool acking_;
  std::vector<IngressQueue::PendingTuple> batch_;
};

/// Wraps a user bolt whose component has remote subscribers: every emission
/// is captured into the task's EgressBuffer (with a chained wire id) in the
/// same Execute call that mutates the user bolt's state, and SnapshotState
/// serializes both atomically. Locally-subscribed copies still flow through
/// the real collector unchanged.
class ForwardingBolt : public dsps::Bolt, public dsps::Snapshottable {
 public:
  ForwardingBolt(std::unique_ptr<dsps::Bolt> inner,
                 std::shared_ptr<EgressGroup> group);

  void Prepare(const dsps::TaskContext& context) override;
  void Execute(const dsps::Tuple& input,
               dsps::Collector* collector) override;
  void Cleanup() override;

  Status SnapshotState(std::string* out) const override;
  Status RestoreState(const std::string& bytes) override;

 private:
  class Capture;

  std::unique_ptr<dsps::Bolt> inner_;
  dsps::Snapshottable* inner_snapshot_ = nullptr;
  std::shared_ptr<EgressGroup> group_;
  std::shared_ptr<EgressBuffer> buffer_;
  uint64_t fresh_seed_ = 0;
  uint64_t fresh_counter_ = 0;
};

/// Injected egress for spout components with remote subscribers: absorbs
/// the spout's tuples (GlobalGrouping) into the retransmit buffer. Under
/// checkpointing its deferred ack means the spout's tree completes only
/// when the buffer snapshot is durable — from then on retransmission, not
/// spout replay, owns delivery.
class EgressBolt : public dsps::Bolt, public dsps::Snapshottable {
 public:
  explicit EgressBolt(std::shared_ptr<EgressGroup> group);

  void Prepare(const dsps::TaskContext& context) override;
  void Execute(const dsps::Tuple& input,
               dsps::Collector* collector) override;

  Status SnapshotState(std::string* out) const override;
  Status RestoreState(const std::string& bytes) override;

 private:
  std::shared_ptr<EgressGroup> group_;
  std::shared_ptr<EgressBuffer> buffer_;
  uint64_t fresh_seed_ = 0;
  uint64_t fresh_counter_ = 0;
};

/// Wraps a user spout to flag exhaustion: the worker's heartbeat reports
/// user-spouts-done once every wrapped task has returned false, which is
/// one leg of the supervisor's cluster-quiescence test.
class WatchedSpout : public dsps::Spout {
 public:
  WatchedSpout(std::unique_ptr<dsps::Spout> inner,
               std::shared_ptr<std::atomic<int>> live_counter)
      : inner_(std::move(inner)), live_(std::move(live_counter)) {}

  void Open(const dsps::TaskContext& context) override {
    inner_->Open(context);
  }
  bool NextTuple(dsps::Collector* collector) override {
    bool more = inner_->NextTuple(collector);
    if (!more && !done_) {
      done_ = true;
      live_->fetch_sub(1);
    }
    return more;
  }
  void Ack(uint64_t message_id) override { inner_->Ack(message_id); }
  void Fail(uint64_t message_id) override { inner_->Fail(message_id); }
  void Close() override { inner_->Close(); }

 private:
  std::unique_ptr<dsps::Spout> inner_;
  std::shared_ptr<std::atomic<int>> live_;
  bool done_ = false;
};

}  // namespace dist
}  // namespace insight

#endif  // INSIGHT_DIST_CHANNEL_H_
