#ifndef INSIGHT_DIST_OPTIONS_H_
#define INSIGHT_DIST_OPTIONS_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/clock.h"
#include "dist/channel.h"
#include "dist/placement.h"
#include "dsps/local_runtime.h"

namespace insight {
namespace dist {

/// Configuration shared by the supervisor and every worker process. Both
/// sides construct it from the same user code (the symmetric-binary model),
/// so it must be identical in every process of a cluster.
struct DistOptions {
  uint32_t num_workers = 2;

  /// Optional partial placement; components left out are placed round-robin.
  /// Note the effectively-once guarantee only covers remote edges (the
  /// egress retransmit buffer is checkpointed with the emitting task);
  /// co-located edges keep thread-level delivery semantics. Round-robin
  /// puts adjacent pipeline stages on different workers for num_workers
  /// >= 2, which is what a fault-tolerant run wants.
  Placement placement;

  /// Per-worker LocalRuntime configuration. `state_store` is overridden by
  /// each worker with its own FileStateStore under `checkpoint_dir`.
  dsps::LocalRuntime::Options runtime;

  /// Shared checkpoint root (one subdirectory per worker id, shared across
  /// incarnations). Required when runtime.enable_checkpointing.
  std::string checkpoint_dir;

  EgressOptions egress;
  IngressOptions ingress;

  /// Worker -> supervisor heartbeat period, and how long the supervisor
  /// waits without one before declaring the worker dead.
  MicrosT heartbeat_interval_micros = 20'000;
  MicrosT heartbeat_timeout_micros = 2'000'000;

  /// Per-worker restart budget; exceeding it aborts the run.
  int max_worker_restarts = 3;

  /// Backoff between egress reconnect attempts to one destination.
  MicrosT reconnect_backoff_micros = 50'000;

  /// Worker metrics-report period (0 = only the final report).
  MicrosT metrics_interval_micros = 500'000;

  /// Network tick period (egress flush, reconnects, heartbeats).
  MicrosT tick_interval_micros = 2'000;

  /// Extra argv passed through to spawned worker processes (after the
  /// --insight-* flags). Lets test binaries re-select the app under test.
  std::vector<std::string> worker_args;

  /// Worker-side hook invoked once the worker's LocalRuntime has started
  /// (symmetric-binary model: the same closure runs in every worker
  /// process, receiving that worker's id and runtime). Returns an optional
  /// cleanup closure, invoked after the runtime completes and before the
  /// final reports. Intra-worker elastic scheduling plugs in here: each
  /// worker builds its own LiveRouter + ElasticController against its local
  /// runtime slice. Cross-worker migration stays out of scope (see
  /// ROADMAP.md).
  std::function<std::function<void()>(uint32_t worker_id,
                                      dsps::LocalRuntime* runtime)>
      on_worker_start;
};

}  // namespace dist
}  // namespace insight

#endif  // INSIGHT_DIST_OPTIONS_H_
