#include "dfs/mini_dfs.h"

#include <algorithm>

namespace insight {
namespace dfs {

MiniDfs::MiniDfs(const Options& options) : options_(options) {
  if (options_.chunk_size == 0) options_.chunk_size = 1;
  if (options_.num_datanodes <= 0) options_.num_datanodes = 1;
  if (options_.replication <= 0) options_.replication = 1;
  options_.replication = std::min(options_.replication, options_.num_datanodes);
}

Status MiniDfs::Create(const std::string& path) {
  MutexLock lock(mutex_);
  if (files_.count(path) > 0) {
    return Status::AlreadyExists("file '" + path + "' already exists");
  }
  files_[path];
  return Status::OK();
}

void MiniDfs::AppendLocked(File* file, const std::string& data) {
  size_t offset = 0;
  while (offset < data.size()) {
    if (file->chunks.empty() ||
        file->chunks.back().size() >= options_.chunk_size) {
      file->chunks.emplace_back();
      ChunkInfo info;
      info.chunk_id = next_chunk_id_++;
      for (int r = 0; r < options_.replication; ++r) {
        info.replica_nodes.push_back((next_node_ + r) % options_.num_datanodes);
      }
      next_node_ = (next_node_ + 1) % options_.num_datanodes;
      file->chunk_infos.push_back(info);
    }
    std::string& chunk = file->chunks.back();
    size_t space = options_.chunk_size - chunk.size();
    size_t take = std::min(space, data.size() - offset);
    chunk.append(data, offset, take);
    file->chunk_infos.back().size = chunk.size();
    offset += take;
  }
}

Status MiniDfs::Append(const std::string& path, const std::string& data) {
  MutexLock lock(mutex_);
  AppendLocked(&files_[path], data);
  return Status::OK();
}

Status MiniDfs::AppendLine(const std::string& path, const std::string& line) {
  return Append(path, line + "\n");
}

Result<std::string> MiniDfs::ReadAll(const std::string& path) const {
  MutexLock lock(mutex_);
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("no file '" + path + "'");
  std::string out;
  for (const std::string& chunk : it->second.chunks) out += chunk;
  return out;
}

Result<std::string> MiniDfs::ReadChunk(const std::string& path,
                                       size_t chunk_index) const {
  MutexLock lock(mutex_);
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("no file '" + path + "'");
  if (chunk_index >= it->second.chunks.size()) {
    return Status::OutOfRange("file '" + path + "' has " +
                              std::to_string(it->second.chunks.size()) +
                              " chunks");
  }
  return it->second.chunks[chunk_index];
}

Result<std::vector<ChunkInfo>> MiniDfs::GetChunks(const std::string& path) const {
  MutexLock lock(mutex_);
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("no file '" + path + "'");
  return it->second.chunk_infos;
}

bool MiniDfs::Exists(const std::string& path) const {
  MutexLock lock(mutex_);
  return files_.count(path) > 0;
}

Status MiniDfs::Delete(const std::string& path) {
  MutexLock lock(mutex_);
  if (files_.erase(path) == 0) return Status::NotFound("no file '" + path + "'");
  return Status::OK();
}

size_t MiniDfs::DeleteRecursive(const std::string& prefix) {
  MutexLock lock(mutex_);
  size_t removed = 0;
  for (auto it = files_.begin(); it != files_.end();) {
    if (it->first.rfind(prefix, 0) == 0) {
      it = files_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

std::vector<std::string> MiniDfs::List(const std::string& prefix) const {
  MutexLock lock(mutex_);
  std::vector<std::string> out;
  for (const auto& [path, file] : files_) {
    if (path.rfind(prefix, 0) == 0) out.push_back(path);
  }
  return out;
}

Result<size_t> MiniDfs::FileSize(const std::string& path) const {
  MutexLock lock(mutex_);
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("no file '" + path + "'");
  size_t total = 0;
  for (const std::string& chunk : it->second.chunks) total += chunk.size();
  return total;
}

size_t MiniDfs::TotalBytes() const {
  MutexLock lock(mutex_);
  size_t total = 0;
  for (const auto& [path, file] : files_) {
    for (const std::string& chunk : file.chunks) total += chunk.size();
  }
  return total;
}

}  // namespace dfs
}  // namespace insight
