#ifndef INSIGHT_DFS_MINI_DFS_H_
#define INSIGHT_DFS_MINI_DFS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace insight {
namespace dfs {

/// Metadata of one stored chunk: HDFS-style fixed-size blocks with replica
/// placement across simulated datanodes.
struct ChunkInfo {
  int64_t chunk_id = 0;
  size_t size = 0;
  std::vector<int> replica_nodes;
};

/// In-memory distributed filesystem standing in for HDFS (Section 2.1.3).
/// Files are append-only sequences of fixed-size chunks; each chunk is
/// assigned `replication` datanodes round-robin. The MapReduce layer derives
/// its map task splits from chunk boundaries, exactly as Hadoop does
/// ("each map task is responsible for processing a distinct chunk of the data
/// stored in its distributed filesystem").
class MiniDfs {
 public:
  struct Options {
    size_t chunk_size = 4 * 1024 * 1024;
    int replication = 3;
    int num_datanodes = 7;
  };

  MiniDfs() : MiniDfs(Options{}) {}
  explicit MiniDfs(const Options& options);

  /// Creates an empty file. AlreadyExists if present.
  Status Create(const std::string& path);
  /// Appends bytes, splitting across chunk boundaries. Creates the file if
  /// missing (like `hadoop fs -appendToFile`).
  Status Append(const std::string& path, const std::string& data);
  /// Appends one line (adds the trailing newline).
  Status AppendLine(const std::string& path, const std::string& line);

  Result<std::string> ReadAll(const std::string& path) const;
  /// Reads a single chunk's bytes.
  Result<std::string> ReadChunk(const std::string& path, size_t chunk_index) const;
  Result<std::vector<ChunkInfo>> GetChunks(const std::string& path) const;

  bool Exists(const std::string& path) const;
  Status Delete(const std::string& path);
  /// Deletes every file under the prefix (directory semantics). Returns the
  /// number of files removed.
  size_t DeleteRecursive(const std::string& prefix);
  /// Paths with the given prefix, sorted.
  std::vector<std::string> List(const std::string& prefix) const;

  Result<size_t> FileSize(const std::string& path) const;
  size_t TotalBytes() const;
  const Options& options() const { return options_; }

 private:
  struct File {
    std::vector<std::string> chunks;      // chunk payloads
    std::vector<ChunkInfo> chunk_infos;
  };

  void AppendLocked(File* file, const std::string& data) REQUIRES(mutex_);

  Options options_;
  mutable Mutex mutex_{TMS_LOCK_RANK(45)};
  std::map<std::string, File> files_ GUARDED_BY(mutex_);
  int64_t next_chunk_id_ GUARDED_BY(mutex_) = 0;
  int next_node_ GUARDED_BY(mutex_) = 0;
};

}  // namespace dfs
}  // namespace insight

#endif  // INSIGHT_DFS_MINI_DFS_H_
