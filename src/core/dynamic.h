#ifndef INSIGHT_CORE_DYNAMIC_H_
#define INSIGHT_CORE_DYNAMIC_H_

#include <string>
#include <vector>

#include "batch/statistics_job.h"
#include "cep/engine.h"
#include "common/status.h"
#include "core/rule_template.h"
#include "dfs/mini_dfs.h"
#include "storage/table_store.h"
#include "traffic/trace.h"

namespace insight {
namespace core {

/// Drives the dynamic-rules loop of Sections 4.1.3 / 4.3.1: pre-processed
/// tuples accumulate in the DFS; a periodic MapReduce job computes per
/// (attribute, location, hour, day-type) mean/stdev; the results land in the
/// storage medium; and refreshed thresholds are pushed into the engines'
/// threshold streams, where std:unique(location, hour, day) replaces stale
/// values in place.
class DynamicRuleManager {
 public:
  struct Config {
    std::string history_path = "/history/traces.csv";
    std::string area_output_dir = "/jobs/statistics_area";
    std::string stop_output_dir = "/jobs/statistics_stop";
    /// Threshold distance in standard deviations (Listing 2's `s`).
    double s = 1.0;
    int num_reducers = 4;
    int parallelism = 4;
  };

  DynamicRuleManager(dfs::MiniDfs* fs, storage::TableStore* store,
                     const Config& config)
      : fs_(fs), store_(store), config_(config) {}

  /// Appends pre-processed traces to the DFS history (step 2 of Figure 3).
  Status AppendHistory(const std::vector<traffic::BusTrace>& traces);

  /// Runs the statistics jobs — one keyed by quadtree leaf, one by canonical
  /// bus stop — and loads both outputs into the storage medium. Returns the
  /// number of statistics rows loaded.
  Result<size_t> RunBatchCycle();

  /// Pushes the current thresholds for every attribute the rules reference
  /// into an engine's threshold streams. Returns the number of threshold
  /// events sent.
  Result<size_t> RefreshEngine(cep::Engine* engine,
                               const std::vector<RuleTemplate>& rules) const;

  size_t cycles_completed() const { return cycles_; }
  const Config& config() const { return config_; }

  /// The attribute->CSV-column mapping shared by both statistics jobs.
  static std::map<std::string, int> AttributeColumns(bool stop_suffix);

 private:
  dfs::MiniDfs* fs_;
  storage::TableStore* store_;
  Config config_;
  size_t cycles_ = 0;
};

}  // namespace core
}  // namespace insight

#endif  // INSIGHT_CORE_DYNAMIC_H_
