#ifndef INSIGHT_CORE_ALLOCATION_H_
#define INSIGHT_CORE_ALLOCATION_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/rule_template.h"
#include "model/latency_model.h"

namespace insight {
namespace core {

/// A grouping of rules partitioned together (Section 4.2.2): rules of one or
/// more quadtree layers (or the bus stops) whose spatial locations are
/// partitioned at the grouping's coarsest layer, so tuples reach exactly one
/// engine of the grouping and no re-transmission between layers is needed.
struct RuleGrouping {
  std::string name;
  std::vector<RuleTemplate> rules;
  /// Total tuple rate feeding this grouping (tuples/second).
  double input_rate = 0.0;
  /// Threshold rows each rule joins with inside one engine.
  size_t thresholds_per_rule = 0;
};

/// Result of Algorithm 2: engines granted to each grouping.
struct AllocationResult {
  std::vector<int> engines_per_grouping;
  /// Final score per grouping (Equation 2).
  std::vector<double> scores;
  double total_score = 0.0;
};

/// Algorithm 2 (Rules Allocation): greedily grants engines to groupings.
/// Every grouping starts with one engine; each remaining engine goes to the
/// grouping that is currently the bottleneck.
///
/// Scoring follows Equations 1-2 literally: an engine that receives a
/// grouping's partition is busy time(i,j) = inputRate_i x latency_j per
/// second of input, where latency_j comes from the estimation model
/// (Function 1 per rule, Function 2 chained). With k engines the partitioner
/// splits the rate evenly (Algorithm 1 balances aggregated input rates), so
/// the per-engine busy time is (rate/k) x latency and
///     score_i = sum_rules w_r x time_i(k)
/// — the grouping's weighted residual load. Each extra engine goes to the
/// grouping whose score at its *current* engine count is highest, i.e. the
/// current bottleneck, and the chosen grouping's score is then re-estimated
/// at k+1. Since scores shrink monotonically with k, this greedy minimizes
/// the resulting bottleneck (the cluster's makespan) and therefore maximizes
/// the achievable throughput, which is what the paper's greedy is after.
class RulesAllocator {
 public:
  explicit RulesAllocator(const model::LatencyModel* model) : model_(model) {}

  Result<AllocationResult> Allocate(const std::vector<RuleGrouping>& groupings,
                                    int num_engines) const;

  /// Score of one grouping when granted `engines` engines (Equation 2).
  double GroupingScore(const RuleGrouping& grouping, int engines) const;

  /// Estimated per-tuple engine latency for a grouping's rule set (used as
  /// the DES service time too).
  double GroupingEngineLatency(const RuleGrouping& grouping) const;

 private:
  const model::LatencyModel* model_;
};

/// The round-robin baseline of Section 5.4: layer-groupings are given
/// engines in round-robin order regardless of their load.
AllocationResult RoundRobinAllocate(const std::vector<RuleGrouping>& groupings,
                                    int num_engines);

/// Builds groupings from rules: rules sharing a location field family are
/// groupable; this helper implements the paper's strategy of merging all
/// quadtree layers into one grouping (partitioned at the coarsest layer)
/// and, when enough engines exist, splitting bus stops into their own
/// grouping. `rate_per_grouping` is the full stream rate (every tuple has
/// every location annotation, so each grouping sees the whole stream).
std::vector<RuleGrouping> GroupRulesByLocation(
    const std::vector<RuleTemplate>& rules, double input_rate,
    size_t thresholds_per_rule);

}  // namespace core
}  // namespace insight

#endif  // INSIGHT_CORE_ALLOCATION_H_
