#ifndef INSIGHT_CORE_RETRIEVAL_H_
#define INSIGHT_CORE_RETRIEVAL_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cep/engine.h"
#include "common/status.h"
#include "core/rule_template.h"
#include "dsps/tuple.h"
#include "storage/table_store.h"

namespace insight {
namespace core {

/// The three techniques of Section 4.3.1 for feeding the rules with the
/// batch-computed thresholds, plus the static-threshold "Optimal" baseline
/// of Figure 10:
///  * kStatic — a literal threshold baked into each rule; no retrieval
///    overhead (lower bound).
///  * kJoinWithDatabase — every incoming tuple triggers a storage-medium
///    query for its (location, hour, day) threshold.
///  * kMultipleRules — all thresholds are fetched up-front and one concrete
///    rule is created per (rule, location, hour, day) combination.
///  * kThresholdStream — all thresholds are fetched up-front and pushed into
///    a dedicated Esper stream the rules join with (the approach the paper
///    adopts).
enum class ThresholdRetrieval {
  kStatic,
  kJoinWithDatabase,
  kMultipleRules,
  kThresholdStream,
};

const char* ThresholdRetrievalToString(ThresholdRetrieval strategy);

/// Everything an engine (or Esper bolt task) needs to run a rule set under a
/// retrieval strategy.
struct RetrievalSetup {
  /// (statement name, EPL) to install.
  std::vector<std::pair<std::string, std::string>> rules;
  /// Called once per engine after rules are installed (threshold preload).
  std::function<void(cep::Engine* engine, int task_index)> preload;
  /// Called per tuple before SendEvent (per-tuple DB join).
  std::function<void(cep::Engine* engine, int task_index,
                     const dsps::Tuple& tuple)>
      before_send;
  /// Modeled storage round-trip cost charged per tuple (kJoinWithDatabase)
  /// — see TableStore::Options::simulated_query_cost_micros.
  int64_t per_tuple_db_cost_micros = 0;
  /// Modeled one-off cost per engine (bulk threshold fetch).
  int64_t preload_db_cost_micros = 0;
};

struct RetrievalOptions {
  /// Threshold distance in standard deviations (Listing 2's `s`).
  double s = 1.0;
  /// kStatic: the literal threshold.
  double static_threshold = 100.0;
};

/// Builds the setup for a rule set under a strategy. The store must hold the
/// statistics_<attr>[_stop] tables (see batch::LoadStatisticsIntoStore); it
/// must outlive the returned closures.
Result<RetrievalSetup> BuildRetrieval(ThresholdRetrieval strategy,
                                      const std::vector<RuleTemplate>& rules,
                                      const storage::TableStore* store,
                                      const RetrievalOptions& options);

/// Sends one threshold row into an engine's threshold stream.
Status SendThresholdEvent(cep::Engine* engine, const std::string& attribute_key,
                          const storage::ThresholdRow& row);

}  // namespace core
}  // namespace insight

#endif  // INSIGHT_CORE_RETRIEVAL_H_
