#include "core/retrieval.h"

#include <map>
#include <set>

#include "common/mutex.h"
#include "common/strings.h"
#include "common/thread_annotations.h"
#include "traffic/bolts.h"

namespace insight {
namespace core {

const char* ThresholdRetrievalToString(ThresholdRetrieval strategy) {
  switch (strategy) {
    case ThresholdRetrieval::kStatic:
      return "static (optimal)";
    case ThresholdRetrieval::kJoinWithDatabase:
      return "join with SQL";
    case ThresholdRetrieval::kMultipleRules:
      return "multiple rules";
    case ThresholdRetrieval::kThresholdStream:
      return "threshold stream";
  }
  return "?";
}

Status SendThresholdEvent(cep::Engine* engine, const std::string& attribute_key,
                          const storage::ThresholdRow& row) {
  INSIGHT_ASSIGN_OR_RETURN(
      auto type,
      engine->GetEventType(traffic::ThresholdEventTypeName(attribute_key)));
  cep::EventBuilder builder(type);
  builder.Set("location", row.location)
      .Set("hour", row.hour)
      .Set("day", row.date_type)
      .Set("value", row.threshold);
  engine->SendEvent(builder.Build());
  return Status::OK();
}

namespace {

/// Unique attribute keys referenced by the rules (namespaced per location
/// kind, e.g. "delay" and "delay_stop").
std::set<std::string> AttributeKeys(const std::vector<RuleTemplate>& rules) {
  std::set<std::string> keys;
  for (const RuleTemplate& rule : rules) {
    for (const RuleAttribute& attr : rule.attributes) {
      keys.insert(rule.AttributeKey(attr.name));
    }
  }
  return keys;
}

/// Signed `s` per attribute key: below-rules (e.g. speed) alert on values
/// under mean - s*stdev, so their thresholds subtract the deviation.
std::map<std::string, double> SignedS(const std::vector<RuleTemplate>& rules,
                                      double s) {
  std::map<std::string, double> out;
  for (const RuleTemplate& rule : rules) {
    for (const RuleAttribute& attr : rule.attributes) {
      out[rule.AttributeKey(attr.name)] = attr.below ? -s : s;
    }
  }
  return out;
}

/// EPL for one concrete (location, hour, day) instance of a rule — the
/// "Create Multiple Rules" strategy.
std::string ConcreteRuleEpl(const RuleTemplate& rule,
                            const storage::ThresholdRow& row, double threshold) {
  const std::string& loc = rule.location_field;
  const std::string& primary = rule.attributes[0].name;
  std::string epl = "@Trigger(bus)\n";
  epl += "SELECT bd." + loc + " AS location, avg(bd2." + primary +
         ") AS value, ";
  epl += StrFormat("%.6f AS threshold, ", threshold);
  epl += "'" + primary + "' AS attribute, bd.timestamp AS timestamp\n";
  epl += "FROM bus.std:lastevent() as bd,\n";
  epl += StrFormat("     bus.std:groupwin(%s).win:length(%zu) as bd2\n",
                   loc.c_str(), rule.window_length);
  epl += StrFormat("WHERE bd.%s = %lld and bd.hour = %lld and bd.date_type = '%s'",
                   loc.c_str(), static_cast<long long>(row.location),
                   static_cast<long long>(row.hour), row.date_type.c_str());
  epl += " and bd." + loc + " = bd2." + loc;
  epl += "\nGROUP BY bd2." + loc + "\nHAVING ";
  const char* cmp = rule.attributes[0].below ? "<" : ">";
  epl += "avg(bd2." + primary + ") " + std::string(cmp) + " " +
         StrFormat("%.6f", threshold);
  return epl;
}

}  // namespace

Result<RetrievalSetup> BuildRetrieval(ThresholdRetrieval strategy,
                                      const std::vector<RuleTemplate>& rules,
                                      const storage::TableStore* store,
                                      const RetrievalOptions& options) {
  if (rules.empty()) {
    return Status::InvalidArgument("at least one rule required");
  }
  RetrievalSetup setup;

  switch (strategy) {
    case ThresholdRetrieval::kStatic: {
      for (const RuleTemplate& rule : rules) {
        INSIGHT_ASSIGN_OR_RETURN(std::string epl,
                                 rule.ToEpl(options.static_threshold));
        setup.rules.emplace_back(rule.name, std::move(epl));
      }
      return setup;
    }

    case ThresholdRetrieval::kThresholdStream: {
      for (const RuleTemplate& rule : rules) {
        INSIGHT_ASSIGN_OR_RETURN(std::string epl, rule.ToEpl());
        setup.rules.emplace_back(rule.name, std::move(epl));
      }
      // One bulk query per attribute key at engine start-up.
      auto keys = AttributeKeys(rules);
      auto signed_s = SignedS(rules, options.s);
      setup.preload = [store, keys, signed_s](cep::Engine* engine, int /*task*/) {
        for (const std::string& key : keys) {
          auto thresholds =
              storage::QueryThresholds(*store, key, signed_s.at(key));
          if (!thresholds.ok()) continue;  // table may not exist yet
          for (const storage::ThresholdRow& row : *thresholds) {
            (void)SendThresholdEvent(engine, key, row);
          }
        }
      };
      setup.preload_db_cost_micros =
          static_cast<int64_t>(keys.size()) * store->per_query_cost_micros();
      return setup;
    }

    case ThresholdRetrieval::kMultipleRules: {
      // Fetch all thresholds up-front; emit one concrete rule per
      // (rule, threshold row). Multi-attribute rules degrade to their
      // primary attribute under this strategy (the paper evaluates it on
      // single-attribute rules).
      for (const RuleTemplate& rule : rules) {
        std::string key = rule.AttributeKey(rule.attributes[0].name);
        double s = rule.attributes[0].below ? -options.s : options.s;
        INSIGHT_ASSIGN_OR_RETURN(auto thresholds,
                                 storage::QueryThresholds(*store, key, s));
        size_t instance = 0;
        for (const storage::ThresholdRow& row : thresholds) {
          setup.rules.emplace_back(
              rule.name + "#" + std::to_string(instance++),
              ConcreteRuleEpl(rule, row, row.threshold));
        }
      }
      setup.preload_db_cost_micros =
          static_cast<int64_t>(AttributeKeys(rules).size()) *
          store->per_query_cost_micros();
      return setup;
    }

    case ThresholdRetrieval::kJoinWithDatabase: {
      for (const RuleTemplate& rule : rules) {
        INSIGHT_ASSIGN_OR_RETURN(std::string epl, rule.ToEpl());
        setup.rules.emplace_back(rule.name, std::move(epl));
      }
      // Per-tuple point query; the fetched row feeds the rule's threshold
      // stream (first time a key is seen per engine) so the join semantics
      // match the stream strategy while paying a query per tuple.
      struct JoinState {
        Mutex mutex{TMS_LOCK_RANK(55)};
        std::map<int, std::set<std::string>> sent_keys_per_task
            GUARDED_BY(mutex);
      };
      auto state = std::make_shared<JoinState>();
      struct Lookup {
        std::string attribute_key;
        std::string location_field;
        double signed_s;
      };
      std::vector<Lookup> lookups;
      for (const RuleTemplate& rule : rules) {
        for (const RuleAttribute& attr : rule.attributes) {
          lookups.push_back({rule.AttributeKey(attr.name), rule.location_field,
                             attr.below ? -options.s : options.s});
        }
      }
      setup.before_send = [store, state, lookups](cep::Engine* engine,
                                                  int task,
                                                  const dsps::Tuple& tuple) {
        auto hour = tuple.GetByField("hour");
        auto day = tuple.GetByField("date_type");
        if (!hour.ok() || !day.ok()) return;
        for (const Lookup& lookup : lookups) {
          auto location = tuple.GetByField(lookup.location_field);
          if (!location.ok()) continue;
          // The query itself (cost accounted by the store).
          auto threshold = storage::QueryThresholdFor(
              *store, lookup.attribute_key, lookup.signed_s, location->AsInt(),
              hour->AsInt(), day->AsString());
          if (!threshold.ok()) continue;
          std::string dedup_key = lookup.attribute_key + "|" +
                                  location->ToString() + "|" +
                                  hour->ToString() + "|" + day->AsString();
          {
            MutexLock lock(state->mutex);
            if (!state->sent_keys_per_task[task].insert(dedup_key).second) {
              continue;  // threshold already in the engine's stream
            }
          }
          storage::ThresholdRow row;
          row.location = location->AsInt();
          row.hour = hour->AsInt();
          row.date_type = day->AsString();
          row.threshold = *threshold;
          (void)SendThresholdEvent(engine, lookup.attribute_key, row);
        }
      };
      setup.per_tuple_db_cost_micros =
          static_cast<int64_t>(lookups.size()) * store->per_query_cost_micros();
      return setup;
    }
  }
  return Status::InvalidArgument("unknown retrieval strategy");
}

}  // namespace core
}  // namespace insight
