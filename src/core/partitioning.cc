#include "core/partitioning.h"

#include <algorithm>

namespace insight {
namespace core {

Result<std::map<int64_t, int>> PartitionRegions(std::vector<RegionRate> rates,
                                                int num_engines) {
  if (num_engines <= 0) {
    return Status::InvalidArgument("num_engines must be positive");
  }
  for (const RegionRate& r : rates) {
    if (r.rate < 0) {
      return Status::InvalidArgument("negative rate for region " +
                                     std::to_string(r.region));
    }
  }
  // "Sort Region_Rates in descending order".
  std::stable_sort(rates.begin(), rates.end(),
                   [](const RegionRate& a, const RegionRate& b) {
                     return a.rate > b.rate;
                   });
  std::vector<double> engine_rate(static_cast<size_t>(num_engines), 0.0);
  std::map<int64_t, int> assignment;
  for (const RegionRate& region : rates) {
    // "for all engine_i in Engines: find the less loaded".
    int less_loaded = 0;
    for (int e = 1; e < num_engines; ++e) {
      if (engine_rate[static_cast<size_t>(e)] <
          engine_rate[static_cast<size_t>(less_loaded)]) {
        less_loaded = e;
      }
    }
    assignment[region.region] = less_loaded;
    engine_rate[static_cast<size_t>(less_loaded)] += region.rate;
  }
  return assignment;
}

std::vector<double> EngineRates(const std::map<int64_t, int>& assignment,
                                const std::vector<RegionRate>& rates) {
  int max_engine = -1;
  for (const auto& [region, engine] : assignment) {
    max_engine = std::max(max_engine, engine);
  }
  std::vector<double> out(static_cast<size_t>(max_engine + 1), 0.0);
  for (const RegionRate& r : rates) {
    auto it = assignment.find(r.region);
    if (it != assignment.end()) out[static_cast<size_t>(it->second)] += r.rate;
  }
  return out;
}

void RegionRateTracker::Seed(const std::vector<RegionRate>& rates) {
  MutexLock lock(mutex_);
  for (const RegionRate& r : rates) seeded_[r.region] = r.rate;
}

void RegionRateTracker::Observe(int64_t region) {
  MutexLock lock(mutex_);
  ++observed_[region];
  ++observed_total_;
}

uint64_t RegionRateTracker::observed_total() const {
  MutexLock lock(mutex_);
  return observed_total_;
}

std::vector<RegionRate> RegionRateTracker::Estimates() const {
  MutexLock lock(mutex_);
  // Blend: with few observations trust the seed; as observations accumulate
  // they dominate (simple additive smoothing).
  std::map<int64_t, RegionRate> merged;
  for (const auto& [region, rate] : seeded_) {
    merged[region] = {region, rate};
  }
  if (observed_total_ > 0) {
    double scale =
        std::min(1.0, static_cast<double>(observed_total_) / 1000.0);
    for (const auto& [region, count] : observed_) {
      double observed_rate = static_cast<double>(count);
      RegionRate& entry = merged[region];
      entry.region = region;
      entry.rate = (1.0 - scale) * entry.rate + scale * observed_rate;
    }
  }
  std::vector<RegionRate> out;
  out.reserve(merged.size());
  for (const auto& [region, rate] : merged) out.push_back(rate);
  return out;
}

void SpatialRouter::Route(const dsps::Tuple& tuple,
                          std::vector<int>* tasks) const {
  tasks->clear();
  for (const GroupingRoute& route : routes_) {
    auto region = tuple.GetByField(route.location_field);
    if (!region.ok()) continue;
    int64_t region_id = region->AsInt();
    auto it = route.region_to_engine.find(region_id);
    if (it != route.region_to_engine.end()) {
      tasks->push_back(it->second);
    } else if (!route.fallback_engines.empty()) {
      size_t pick = static_cast<size_t>(region_id < 0 ? -region_id : region_id) %
                    route.fallback_engines.size();
      tasks->push_back(route.fallback_engines[pick]);
    }
  }
  std::sort(tasks->begin(), tasks->end());
  tasks->erase(std::unique(tasks->begin(), tasks->end()), tasks->end());
}

std::function<void(const dsps::Tuple&, std::vector<int>*)>
SpatialRouter::AsFunction() const {
  return [this](const dsps::Tuple& tuple, std::vector<int>* tasks) {
    Route(tuple, tasks);
  };
}

}  // namespace core
}  // namespace insight
