#include "core/partitioning.h"

#include <algorithm>

namespace insight {
namespace core {

Result<std::map<int64_t, int>> PartitionRegions(std::vector<RegionRate> rates,
                                                int num_engines) {
  if (num_engines <= 0) {
    return Status::InvalidArgument("num_engines must be positive");
  }
  for (const RegionRate& r : rates) {
    if (r.rate < 0) {
      return Status::InvalidArgument("negative rate for region " +
                                     std::to_string(r.region));
    }
  }
  // "Sort Region_Rates in descending order".
  std::stable_sort(rates.begin(), rates.end(),
                   [](const RegionRate& a, const RegionRate& b) {
                     return a.rate > b.rate;
                   });
  std::vector<double> engine_rate(static_cast<size_t>(num_engines), 0.0);
  std::map<int64_t, int> assignment;
  for (const RegionRate& region : rates) {
    // "for all engine_i in Engines: find the less loaded".
    int less_loaded = 0;
    for (int e = 1; e < num_engines; ++e) {
      if (engine_rate[static_cast<size_t>(e)] <
          engine_rate[static_cast<size_t>(less_loaded)]) {
        less_loaded = e;
      }
    }
    assignment[region.region] = less_loaded;
    engine_rate[static_cast<size_t>(less_loaded)] += region.rate;
  }
  return assignment;
}

std::vector<double> EngineRates(const std::map<int64_t, int>& assignment,
                                const std::vector<RegionRate>& rates) {
  int max_engine = -1;
  for (const auto& [region, engine] : assignment) {
    max_engine = std::max(max_engine, engine);
  }
  std::vector<double> out(static_cast<size_t>(max_engine + 1), 0.0);
  for (const RegionRate& r : rates) {
    auto it = assignment.find(r.region);
    if (it != assignment.end()) out[static_cast<size_t>(it->second)] += r.rate;
  }
  return out;
}

Result<std::vector<RegionMove>> PlanRebalance(
    std::map<int64_t, int>* assignment, const std::vector<RegionRate>& rates,
    int num_engines, double target_imbalance, size_t max_moves) {
  if (assignment == nullptr) {
    return Status::InvalidArgument("assignment required");
  }
  if (num_engines <= 0) {
    return Status::InvalidArgument("num_engines must be positive");
  }
  if (target_imbalance < 1.0) {
    return Status::InvalidArgument("target_imbalance must be >= 1.0");
  }
  std::map<int64_t, double> rate_of;
  for (const RegionRate& r : rates) {
    if (r.rate < 0) {
      return Status::InvalidArgument("negative rate for region " +
                                     std::to_string(r.region));
    }
    rate_of[r.region] = r.rate;
  }
  std::vector<double> load(static_cast<size_t>(num_engines), 0.0);
  double total = 0.0;
  for (const auto& [region, engine] : *assignment) {
    if (engine < 0 || engine >= num_engines) {
      return Status::InvalidArgument("assignment references engine " +
                                     std::to_string(engine) + " outside [0, " +
                                     std::to_string(num_engines) + ")");
    }
    auto it = rate_of.find(region);
    double rate = it == rate_of.end() ? 0.0 : it->second;
    load[static_cast<size_t>(engine)] += rate;
    total += rate;
  }
  std::vector<RegionMove> moves;
  if (total <= 0.0) return moves;
  double avg = total / static_cast<double>(num_engines);
  while (moves.size() < max_moves) {
    size_t hot = 0;
    size_t cold = 0;
    for (size_t e = 1; e < load.size(); ++e) {
      if (load[e] > load[hot]) hot = e;
      if (load[e] < load[cold]) cold = e;
    }
    if (load[hot] <= target_imbalance * avg) break;
    // Pick the largest region on the hot engine whose move to the coldest
    // engine still lowers the maximum (i.e. does not just swap the roles).
    int64_t best_region = 0;
    double best_rate = -1.0;
    for (const auto& [region, engine] : *assignment) {
      if (static_cast<size_t>(engine) != hot) continue;
      auto it = rate_of.find(region);
      double rate = it == rate_of.end() ? 0.0 : it->second;
      if (rate <= 0.0) continue;
      if (load[cold] + rate >= load[hot]) continue;
      if (rate > best_rate) {
        best_rate = rate;
        best_region = region;
      }
    }
    if (best_rate <= 0.0) break;  // no improving move exists
    (*assignment)[best_region] = static_cast<int>(cold);
    load[hot] -= best_rate;
    load[cold] += best_rate;
    moves.push_back({best_region, static_cast<int>(hot),
                     static_cast<int>(cold), best_rate});
  }
  return moves;
}

void RegionRateTracker::Seed(const std::vector<RegionRate>& rates) {
  MutexLock lock(mutex_);
  for (const RegionRate& r : rates) seeded_[r.region] = r.rate;
}

void RegionRateTracker::Observe(int64_t region) {
  MutexLock lock(mutex_);
  ++observed_[region];
  ++observed_total_;
}

uint64_t RegionRateTracker::observed_total() const {
  MutexLock lock(mutex_);
  return observed_total_;
}

std::vector<RegionRate> RegionRateTracker::Estimates() const {
  MutexLock lock(mutex_);
  // Blend: with few observations trust the seed; as observations accumulate
  // they dominate (simple additive smoothing).
  std::map<int64_t, RegionRate> merged;
  for (const auto& [region, rate] : seeded_) {
    merged[region] = {region, rate};
  }
  if (observed_total_ > 0) {
    double scale =
        std::min(1.0, static_cast<double>(observed_total_) / 1000.0);
    for (const auto& [region, count] : observed_) {
      double observed_rate = static_cast<double>(count);
      RegionRate& entry = merged[region];
      entry.region = region;
      entry.rate = (1.0 - scale) * entry.rate + scale * observed_rate;
    }
  }
  std::vector<RegionRate> out;
  out.reserve(merged.size());
  for (const auto& [region, rate] : merged) out.push_back(rate);
  return out;
}

void SpatialRouter::Route(const dsps::Tuple& tuple,
                          std::vector<int>* tasks) const {
  tasks->clear();
  for (const GroupingRoute& route : routes_) {
    auto region = tuple.GetByField(route.location_field);
    if (!region.ok()) continue;
    int64_t region_id = region->AsInt();
    auto it = route.region_to_engine.find(region_id);
    if (it != route.region_to_engine.end()) {
      tasks->push_back(it->second);
    } else if (!route.fallback_engines.empty()) {
      size_t pick = static_cast<size_t>(region_id < 0 ? -region_id : region_id) %
                    route.fallback_engines.size();
      tasks->push_back(route.fallback_engines[pick]);
    }
  }
  std::sort(tasks->begin(), tasks->end());
  tasks->erase(std::unique(tasks->begin(), tasks->end()), tasks->end());
}

std::function<void(const dsps::Tuple&, std::vector<int>*)>
SpatialRouter::AsFunction() const {
  return [this](const dsps::Tuple& tuple, std::vector<int>* tasks) {
    Route(tuple, tasks);
  };
}

LiveRouter::LiveRouter(SpatialRouter initial)
    : router_(std::make_shared<const SpatialRouter>(std::move(initial))) {}

std::shared_ptr<const SpatialRouter> LiveRouter::Snapshot() const {
  MutexLock lock(mutex_);
  return router_;
}

void LiveRouter::Swap(SpatialRouter next) {
  auto table = std::make_shared<const SpatialRouter>(std::move(next));
  MutexLock lock(mutex_);
  router_ = std::move(table);
  ++version_;
}

void LiveRouter::Restore(std::shared_ptr<const SpatialRouter> snapshot) {
  MutexLock lock(mutex_);
  router_ = std::move(snapshot);
  ++version_;
}

size_t LiveRouter::MoveEngine(int from, int to) {
  std::vector<SpatialRouter::GroupingRoute> routes = Snapshot()->routes();
  size_t moved = 0;
  for (SpatialRouter::GroupingRoute& route : routes) {
    for (auto& [region, engine] : route.region_to_engine) {
      if (engine == from) {
        engine = to;
        ++moved;
      }
    }
    for (int& engine : route.fallback_engines) {
      if (engine == from) {
        engine = to;
        ++moved;
      }
    }
  }
  Swap(SpatialRouter(std::move(routes)));
  return moved;
}

size_t LiveRouter::ApplyMoves(size_t grouping_index,
                              const std::vector<RegionMove>& moves) {
  std::vector<SpatialRouter::GroupingRoute> routes = Snapshot()->routes();
  if (grouping_index >= routes.size()) return 0;
  size_t applied = 0;
  std::map<int64_t, int>& table = routes[grouping_index].region_to_engine;
  for (const RegionMove& move : moves) {
    auto it = table.find(move.region);
    if (it == table.end()) continue;
    it->second = move.to_engine;
    ++applied;
  }
  Swap(SpatialRouter(std::move(routes)));
  return applied;
}

void LiveRouter::Route(const dsps::Tuple& tuple,
                       std::vector<int>* tasks) const {
  std::shared_ptr<const SpatialRouter> table = Snapshot();
  table->Route(tuple, tasks);
}

std::function<void(const dsps::Tuple&, std::vector<int>*)>
LiveRouter::AsFunction() const {
  return [this](const dsps::Tuple& tuple, std::vector<int>* tasks) {
    Route(tuple, tasks);
  };
}

uint64_t LiveRouter::version() const {
  MutexLock lock(mutex_);
  return version_;
}

}  // namespace core
}  // namespace insight
