#ifndef INSIGHT_CORE_SEQUENCE_H_
#define INSIGHT_CORE_SEQUENCE_H_

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "common/clock.h"
#include "common/status.h"

namespace insight {
namespace core {

/// Detects the Dublin City Council requirement of Section 3.1: "a rule that
/// checks if in three consecutive bus stops, buses traversing them, reported
/// simultaneously delays greater than the expected".
///
/// The detector consumes per-stop anomaly events (typically the output of
/// the generic delay rule running over bus stops) and fires when `k`
/// consecutive stops of one (line, direction) all reported an anomaly within
/// the time window. Stop adjacency comes from the line's stop order, which
/// the operator registers up front (it is static route knowledge).
class ConsecutiveStopsDetector {
 public:
  struct Options {
    /// Consecutive anomalous stops required (DCC asks for 3).
    int k = 3;
    /// All k anomalies must fall within this window.
    MicrosT window_micros = 15 * 60 * 1'000'000LL;
  };

  struct Match {
    int line_id = 0;
    bool direction = false;
    /// The k consecutive stop ids, in route order.
    std::vector<int64_t> stops;
    MicrosT first_timestamp = 0;
    MicrosT last_timestamp = 0;
  };

  explicit ConsecutiveStopsDetector(const Options& options);

  /// Registers the ordered stops of one line+direction. Replaces previous
  /// registration. InvalidArgument if fewer than k stops.
  Status RegisterLine(int line_id, bool direction,
                      std::vector<int64_t> ordered_stops);

  /// Feeds one per-stop anomaly; returns a match when this anomaly completes
  /// a run of k consecutive anomalous stops (the run ending at this stop).
  /// Anomalies at unregistered (line, stop) pairs are ignored.
  std::optional<Match> Observe(int line_id, bool direction, int64_t stop_id,
                               MicrosT timestamp);

  /// Drops anomaly state older than the window (call periodically; Observe
  /// already ignores stale entries, this only frees memory).
  void ExpireBefore(MicrosT timestamp);

  const Options& options() const { return options_; }

 private:
  struct LineState {
    std::vector<int64_t> stops;                  // route order
    std::map<int64_t, size_t> stop_positions;    // stop id -> index
    std::map<size_t, MicrosT> last_anomaly;      // index -> newest anomaly
  };

  Options options_;
  std::map<std::pair<int, bool>, LineState> lines_;
};

}  // namespace core
}  // namespace insight

#endif  // INSIGHT_CORE_SEQUENCE_H_
