#ifndef INSIGHT_CORE_RULE_TEMPLATE_H_
#define INSIGHT_CORE_RULE_TEMPLATE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "model/latency_model.h"

namespace insight {
namespace core {

/// One monitored attribute inside a rule. `below` flips the comparison: an
/// anomaly in speed is a windowed average *below* its threshold
/// (mean - s*stdev), while delay anomalies exceed mean + s*stdev.
struct RuleAttribute {
  std::string name;  // "delay", "actual_delay", "speed", "congestion"
  bool below = false;
};

/// The generic rule template of Section 3.3 / Listing 1, parameterized per
/// Table 6 by: bus data attribute(s), spatial location and window length.
/// ToEpl() instantiates the EPL that runs on the engines:
///
///   @Trigger(bus)
///   SELECT bd.<loc> AS location, avg(bd2.<attr>) AS value, ...
///   FROM bus.std:lastevent() as bd,
///        bus.std:groupwin(<loc>).win:length(<l>) as bd2,
///        threshold_<attr>.win:keepall() as thr_<attr>
///   WHERE bd.hour = thr.hour and bd.date_type = thr.day and
///         bd.<loc> = thr.location and bd.<loc> = bd2.<loc>
///   GROUP BY bd2.<loc>
///   HAVING avg(bd2.<attr>) > avg(thr.value)       [">" becomes "<" if below]
struct RuleTemplate {
  std::string name;
  /// One or more attributes; multiple attributes AND their conditions
  /// (Table 6's "Delay and Congestion" / "All").
  std::vector<RuleAttribute> attributes;
  /// Tuple field carrying the rule's spatial location: "bus_stop",
  /// "area_leaf" or "area_layer<k>".
  std::string location_field = "area_leaf";
  /// Stream window length l (Table 6: 1, 10, 100, 1000).
  size_t window_length = 100;
  /// Rule weight w_i in the allocation score (Equation 2).
  double weight = 1.0;
  /// Quadtree layer of location_field; -1 for bus stops. The allocator
  /// partitions groupings at the highest (coarsest) layer they contain.
  int quadtree_layer = -1;

  /// EPL per Listing 1. `static_threshold` >= 0 replaces the threshold
  /// stream join with a literal (the "Optimal" baseline of Figure 10).
  Result<std::string> ToEpl(double static_threshold = -1.0) const;

  /// Statistics/threshold namespace of this rule's attributes: bus-stop
  /// rules read `<attr>_stop` tables/streams so stop ids never collide with
  /// quadtree region ids.
  std::string AttributeKey(const std::string& attribute) const {
    return location_field == "bus_stop" ? attribute + "_stop" : attribute;
  }

  /// Characteristics for the latency estimation model; `num_thresholds` is
  /// the number of threshold rows the rule joins with in its engine.
  model::RuleCharacteristics Characteristics(size_t num_thresholds) const;
};

/// The Table 6 parameter grid: attribute in {Delay, ActualDelay, Speed,
/// Delay+Congestion, All} x location in {bus stops, quadtree leaves} with the
/// given window length. Produces the 10-rule workloads of Sections 5.3/5.5.
std::vector<RuleTemplate> Table6Rules(size_t window_length);

/// Convenience single-attribute rule.
RuleTemplate MakeRule(const std::string& name, const std::string& attribute,
                      const std::string& location_field, size_t window_length,
                      int quadtree_layer = -1);

}  // namespace core
}  // namespace insight

#endif  // INSIGHT_CORE_RULE_TEMPLATE_H_
