#include "core/allocation.h"

#include <algorithm>
#include <map>

namespace insight {
namespace core {

double RulesAllocator::GroupingEngineLatency(const RuleGrouping& grouping) const {
  std::vector<model::RuleCharacteristics> characteristics;
  characteristics.reserve(grouping.rules.size());
  for (const RuleTemplate& rule : grouping.rules) {
    characteristics.push_back(rule.Characteristics(grouping.thresholds_per_rule));
  }
  return model_->EngineLatency(characteristics);
}

double RulesAllocator::GroupingScore(const RuleGrouping& grouping,
                                     int engines) const {
  if (engines <= 0) return 0.0;
  double latency = GroupingEngineLatency(grouping);
  // Equation 1: time(i,j) = inputRate x latency; Algorithm 1 balances the
  // rate across the grouping's engines, so each handles rate/k.
  double per_engine_rate = grouping.input_rate / static_cast<double>(engines);
  double time = per_engine_rate * latency;
  double weight_sum = 0.0;
  for (const RuleTemplate& rule : grouping.rules) weight_sum += rule.weight;
  if (weight_sum == 0.0) weight_sum = 1.0;
  // Equation 2: weighted per-engine busy time (residual load).
  return weight_sum * time;
}

Result<AllocationResult> RulesAllocator::Allocate(
    const std::vector<RuleGrouping>& groupings, int num_engines) const {
  if (groupings.empty()) {
    return Status::InvalidArgument("at least one grouping required");
  }
  if (num_engines < static_cast<int>(groupings.size())) {
    return Status::InvalidArgument(
        "need at least one engine per grouping (" +
        std::to_string(groupings.size()) + " groupings, " +
        std::to_string(num_engines) + " engines)");
  }
  AllocationResult result;
  result.engines_per_grouping.assign(groupings.size(), 1);
  result.scores.resize(groupings.size());
  for (size_t i = 0; i < groupings.size(); ++i) {
    result.scores[i] = GroupingScore(groupings[i], 1);
  }
  // N' = N - |groupings| extra engines. Each grant goes to the grouping that
  // is the *current* bottleneck — the one with the highest score at its
  // present engine count — and its score is updated to the post-grant
  // estimate. Scores are monotonically decreasing in k, so relieving the
  // bottleneck is exactly the greedy makespan-minimizing move; scoring by the
  // post-increment estimate instead (the old behaviour) could starve a steep
  // bottleneck whose score halves per grant in favour of a flatter, already
  // satisfied grouping.
  int extra = num_engines - static_cast<int>(groupings.size());
  for (int j = 0; j < extra; ++j) {
    double max_score = -1.0;
    size_t chosen = 0;
    for (size_t i = 0; i < groupings.size(); ++i) {
      double current =
          GroupingScore(groupings[i], result.engines_per_grouping[i]);
      if (current > max_score) {
        max_score = current;
        chosen = i;
      }
    }
    ++result.engines_per_grouping[chosen];
    result.scores[chosen] =
        GroupingScore(groupings[chosen], result.engines_per_grouping[chosen]);
  }
  result.total_score = 0.0;
  for (double s : result.scores) result.total_score += s;
  return result;
}

AllocationResult RoundRobinAllocate(const std::vector<RuleGrouping>& groupings,
                                    int num_engines) {
  AllocationResult result;
  result.engines_per_grouping.assign(groupings.size(), 0);
  for (int e = 0; e < num_engines; ++e) {
    ++result.engines_per_grouping[static_cast<size_t>(e) % groupings.size()];
  }
  result.scores.assign(groupings.size(), 0.0);
  return result;
}

std::vector<RuleGrouping> GroupRulesByLocation(
    const std::vector<RuleTemplate>& rules, double input_rate,
    size_t thresholds_per_rule) {
  // Bus-stop rules form one family; quadtree rules (any layer, including
  // leaves) form another, partitioned at the coarsest layer present.
  RuleGrouping stops;
  stops.name = "bus_stops";
  RuleGrouping areas;
  areas.name = "quadtree";
  for (const RuleTemplate& rule : rules) {
    if (rule.location_field == "bus_stop") {
      stops.rules.push_back(rule);
    } else {
      areas.rules.push_back(rule);
    }
  }
  std::vector<RuleGrouping> out;
  for (RuleGrouping* g : {&areas, &stops}) {
    if (g->rules.empty()) continue;
    g->input_rate = input_rate;
    g->thresholds_per_rule = thresholds_per_rule;
    out.push_back(std::move(*g));
  }
  return out;
}

}  // namespace core
}  // namespace insight
