#ifndef INSIGHT_CORE_SYSTEM_H_
#define INSIGHT_CORE_SYSTEM_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/allocation.h"
#include "core/dynamic.h"
#include "core/partitioning.h"
#include "core/retrieval.h"
#include "core/rule_template.h"
#include "dfs/mini_dfs.h"
#include "dsps/local_runtime.h"
#include "geo/bus_stops.h"
#include "geo/quadtree.h"
#include "model/latency_model.h"
#include "storage/table_store.h"
#include "traffic/bolts.h"
#include "traffic/generator.h"

namespace insight {
namespace core {

/// Offline enrichment of traces (speed, actual delay, hour, date type, area
/// and bus-stop annotations) — the same computation the PreProcess / Area
/// Tracker / BusStops Tracker bolts perform online, used to bootstrap the
/// DFS history before the first batch cycle.
void EnrichTraces(std::vector<traffic::BusTrace>* traces,
                  const geo::RegionQuadtree& quadtree,
                  const geo::BusStopIndex& stops);

/// Per-region tuple counts over a trace set (seed rates for Algorithm 1).
std::vector<RegionRate> ComputeRegionRates(
    const std::vector<traffic::BusTrace>& traces, bool by_bus_stop);

/// The end-to-end system of Figure 3 / Figure 8: workload generation,
/// spatial indexing, batch bootstrap, rule partitioning/allocation, the
/// Storm-like topology with one Esper engine per Esper-bolt task, and the
/// events store.
class TrafficManagementSystem {
 public:
  struct Config {
    traffic::TraceGenerator::Options generator;
    /// Traces fed through the topology (per run).
    size_t max_traces = 20000;
    /// Traces used to bootstrap history / region rates / bus stops.
    size_t bootstrap_traces = 20000;
    size_t stop_report_samples = 2000;

    geo::RegionQuadtree::Options quadtree;
    size_t quadtree_seed_points = 600;

    std::vector<RuleTemplate> rules;
    int num_esper_engines = 4;
    ThresholdRetrieval retrieval = ThresholdRetrieval::kThresholdStream;
    RetrievalOptions retrieval_options;

    /// Topology parallelism (the Esper bolt gets num_esper_engines tasks).
    int reader_executors = 1;
    int preprocess_executors = 2;
    int tracker_executors = 2;
    int splitter_executors = 1;
    int storer_executors = 1;
    int num_workers = 1;
    dsps::LocalRuntime::Options runtime;
  };

  struct RunReport {
    size_t traces_fed = 0;
    size_t detections = 0;
    double wall_seconds = 0.0;
    /// Esper-bolt totals (the bolt the paper's evaluation focuses on).
    dsps::MetricsRegistry::ComponentTotals esper;
    /// Tuples/second through the Esper bolt.
    double esper_throughput = 0.0;
    /// Engines granted per grouping by Algorithm 2.
    std::vector<int> engines_per_grouping;
  };

  explicit TrafficManagementSystem(Config config);

  /// Builds the quadtree and canonical bus stops, generates the bootstrap
  /// history, runs the first batch cycle and computes seed region rates.
  Status Initialize();

  /// Builds the topology, runs the stream to completion and reports metrics.
  /// Region rates observed by the splitter update the rate trackers, so a
  /// subsequent Run() re-partitions with fresher estimates (the paper's
  /// periodic Start-Up Optimization, Section 4.2).
  Result<RunReport> Run();

  /// Registers additional rules after Initialize(); groupings and the
  /// allocation are recomputed on the next Run() ("the component's
  /// optimizations can be invoked ... when new rules are submitted").
  Status AddRules(const std::vector<RuleTemplate>& rules);

  // ---- introspection ----
  storage::TableStore* store() { return &store_; }
  dfs::MiniDfs* dfs() { return &dfs_; }
  const geo::RegionQuadtree& quadtree() const { return *quadtree_; }
  const geo::BusStopIndex& bus_stops() const { return *bus_stops_; }
  DynamicRuleManager* dynamic_manager() { return dynamic_.get(); }
  const std::vector<RuleGrouping>& groupings() const { return groupings_; }
  const RegionRateTracker& area_rates() const { return area_tracker_; }
  const RegionRateTracker& stop_rates() const { return stop_tracker_; }

 private:
  Result<SpatialRouter> BuildRouter(const AllocationResult& allocation) const;

  Config config_;
  storage::TableStore store_;
  dfs::MiniDfs dfs_;
  std::shared_ptr<const geo::RegionQuadtree> quadtree_;
  std::shared_ptr<const geo::BusStopIndex> bus_stops_;
  Status RebuildGroupings();

  std::unique_ptr<DynamicRuleManager> dynamic_;
  std::vector<RuleGrouping> groupings_;
  RegionRateTracker area_tracker_;
  RegionRateTracker stop_tracker_;
  model::LatencyModel latency_model_ = model::LatencyModel::Default();
  bool initialized_ = false;
};

}  // namespace core
}  // namespace insight

#endif  // INSIGHT_CORE_SYSTEM_H_
