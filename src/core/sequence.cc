#include "core/sequence.h"

#include <algorithm>

namespace insight {
namespace core {

ConsecutiveStopsDetector::ConsecutiveStopsDetector(const Options& options)
    : options_(options) {
  if (options_.k < 2) options_.k = 2;
}

Status ConsecutiveStopsDetector::RegisterLine(int line_id, bool direction,
                                              std::vector<int64_t> ordered_stops) {
  if (static_cast<int>(ordered_stops.size()) < options_.k) {
    return Status::InvalidArgument(
        "line needs at least k=" + std::to_string(options_.k) + " stops");
  }
  LineState state;
  for (size_t i = 0; i < ordered_stops.size(); ++i) {
    state.stop_positions[ordered_stops[i]] = i;
  }
  if (state.stop_positions.size() != ordered_stops.size()) {
    return Status::InvalidArgument("duplicate stop id in route");
  }
  state.stops = std::move(ordered_stops);
  lines_[{line_id, direction}] = std::move(state);
  return Status::OK();
}

std::optional<ConsecutiveStopsDetector::Match>
ConsecutiveStopsDetector::Observe(int line_id, bool direction, int64_t stop_id,
                                  MicrosT timestamp) {
  auto line_it = lines_.find({line_id, direction});
  if (line_it == lines_.end()) return std::nullopt;
  LineState& line = line_it->second;
  auto pos_it = line.stop_positions.find(stop_id);
  if (pos_it == line.stop_positions.end()) return std::nullopt;
  size_t position = pos_it->second;

  MicrosT& slot = line.last_anomaly[position];
  slot = std::max(slot, timestamp);

  // A run of k consecutive anomalous positions ending here, all within the
  // window.
  if (position + 1 < static_cast<size_t>(options_.k)) return std::nullopt;
  MicrosT oldest_allowed = timestamp - options_.window_micros;
  Match match;
  match.line_id = line_id;
  match.direction = direction;
  match.first_timestamp = timestamp;
  match.last_timestamp = timestamp;
  for (int offset = 0; offset < options_.k; ++offset) {
    size_t p = position - static_cast<size_t>(offset);
    auto anomaly = line.last_anomaly.find(p);
    if (anomaly == line.last_anomaly.end() ||
        anomaly->second < oldest_allowed) {
      return std::nullopt;
    }
    match.stops.push_back(line.stops[p]);
    match.first_timestamp = std::min(match.first_timestamp, anomaly->second);
    match.last_timestamp = std::max(match.last_timestamp, anomaly->second);
  }
  // Route order (we walked backwards).
  std::reverse(match.stops.begin(), match.stops.end());
  return match;
}

void ConsecutiveStopsDetector::ExpireBefore(MicrosT timestamp) {
  for (auto& [key, line] : lines_) {
    for (auto it = line.last_anomaly.begin(); it != line.last_anomaly.end();) {
      if (it->second < timestamp) {
        it = line.last_anomaly.erase(it);
      } else {
        ++it;
      }
    }
  }
}

}  // namespace core
}  // namespace insight
