#include "core/system.h"

#include <algorithm>
#include <chrono>
#include <map>

#include "common/logging.h"

namespace insight {
namespace core {

namespace {
constexpr double kMicrosPerHour = 3600.0 * 1e6;
}

void EnrichTraces(std::vector<traffic::BusTrace>* traces,
                  const geo::RegionQuadtree& quadtree,
                  const geo::BusStopIndex& stops) {
  struct VehicleState {
    geo::LatLon position;
    double delay = 0.0;
    MicrosT timestamp = 0;
    bool valid = false;
  };
  std::map<int, VehicleState> vehicles;
  std::vector<traffic::BusTrace> kept;
  kept.reserve(traces->size());
  for (traffic::BusTrace& trace : *traces) {
    VehicleState& state = vehicles[trace.vehicle_id];
    // First observation of a vehicle only seeds the state — speed and actual
    // delay are deltas (the PreProcess bolt drops these online too).
    bool first = !state.valid || trace.timestamp <= state.timestamp;
    if (!first) {
      double meters = geo::HaversineMeters(state.position, trace.position);
      double hours =
          static_cast<double>(trace.timestamp - state.timestamp) / kMicrosPerHour;
      trace.speed_kmh = hours > 0 ? meters / 1000.0 / hours : 0.0;
      trace.actual_delay = trace.delay_seconds - state.delay;
    }
    state = {trace.position, trace.delay_seconds, trace.timestamp, true};
    if (first) continue;
    trace.hour =
        static_cast<int>(static_cast<double>(trace.timestamp) / kMicrosPerHour) %
        24;
    trace.area_leaf = quadtree.LocateLeaf(trace.position);
    trace.bus_stop =
        stops.Locate(trace.position, trace.line_id, trace.direction);
    kept.push_back(trace);
  }
  *traces = std::move(kept);
}

std::vector<RegionRate> ComputeRegionRates(
    const std::vector<traffic::BusTrace>& traces, bool by_bus_stop) {
  std::map<int64_t, double> counts;
  for (const traffic::BusTrace& trace : traces) {
    int64_t region = by_bus_stop ? trace.bus_stop : trace.area_leaf;
    if (region >= 0) counts[region] += 1.0;
  }
  std::vector<RegionRate> out;
  out.reserve(counts.size());
  for (const auto& [region, count] : counts) out.push_back({region, count});
  return out;
}

TrafficManagementSystem::TrafficManagementSystem(Config config)
    : config_(std::move(config)) {}

Status TrafficManagementSystem::Initialize() {
  if (initialized_) return Status::FailedPrecondition("already initialized");
  if (config_.rules.empty()) {
    return Status::InvalidArgument("at least one rule required");
  }

  // Spatial indexing (Section 4.1.1).
  auto quadtree = std::make_shared<geo::RegionQuadtree>(geo::BuildDublinQuadtree(
      config_.generator.seed, config_.quadtree_seed_points, config_.quadtree));
  quadtree_ = quadtree;

  // Canonical bus stops (Section 4.1.2) from a sample of stop reports.
  traffic::TraceGenerator stop_sampler(config_.generator);
  auto stops = std::make_shared<geo::BusStopIndex>();
  stops->Build(stop_sampler.CollectStopReports(config_.stop_report_samples));
  bus_stops_ = stops;

  // Bootstrap history + statistics (Section 4.1.3).
  traffic::TraceGenerator::Options bootstrap_options = config_.generator;
  bootstrap_options.seed = config_.generator.seed + 1;  // different day
  traffic::TraceGenerator bootstrap_gen(bootstrap_options);
  std::vector<traffic::BusTrace> bootstrap =
      bootstrap_gen.GenerateAll(config_.bootstrap_traces);
  EnrichTraces(&bootstrap, *quadtree_, *bus_stops_);

  dynamic_ = std::make_unique<DynamicRuleManager>(&dfs_, &store_,
                                                  DynamicRuleManager::Config{});
  INSIGHT_RETURN_NOT_OK(dynamic_->AppendHistory(bootstrap));
  INSIGHT_ASSIGN_OR_RETURN(size_t rows, dynamic_->RunBatchCycle());
  if (rows == 0) {
    return Status::Internal("batch bootstrap produced no statistics");
  }

  // Seed region rates for Algorithm 1.
  area_tracker_.Seed(ComputeRegionRates(bootstrap, /*by_bus_stop=*/false));
  stop_tracker_.Seed(ComputeRegionRates(bootstrap, /*by_bus_stop=*/true));

  INSIGHT_RETURN_NOT_OK(RebuildGroupings());
  initialized_ = true;
  return Status::OK();
}

Status TrafficManagementSystem::RebuildGroupings() {
  // Thresholds per rule: rows per attribute table is a good proxy — use the
  // delay table.
  size_t thresholds = 0;
  auto count = store_.RowCount(storage::StatisticsTableName("delay"));
  if (count.ok()) thresholds = *count;
  double rate = 3000.0;  // nominal offered tuples/sec (full-speed replay)
  groupings_ = GroupRulesByLocation(config_.rules, rate, thresholds);
  if (groupings_.empty()) {
    return Status::InvalidArgument("no groupings derivable from the rules");
  }
  return Status::OK();
}

Status TrafficManagementSystem::AddRules(const std::vector<RuleTemplate>& rules) {
  if (!initialized_) {
    return Status::FailedPrecondition("call Initialize() first");
  }
  for (const RuleTemplate& rule : rules) {
    INSIGHT_RETURN_NOT_OK(rule.ToEpl().status());  // validate early
    config_.rules.push_back(rule);
  }
  return RebuildGroupings();
}

Result<SpatialRouter> TrafficManagementSystem::BuildRouter(
    const AllocationResult& allocation) const {
  std::vector<SpatialRouter::GroupingRoute> routes;
  int task_base = 0;
  for (size_t g = 0; g < groupings_.size(); ++g) {
    int engines = allocation.engines_per_grouping[g];
    const bool is_stops = groupings_[g].name == "bus_stops";
    std::vector<RegionRate> rates =
        (is_stops ? stop_tracker_ : area_tracker_).Estimates();
    INSIGHT_ASSIGN_OR_RETURN(auto assignment, PartitionRegions(rates, engines));

    SpatialRouter::GroupingRoute route;
    route.location_field = is_stops ? "bus_stop" : "area_leaf";
    for (const auto& [region, engine] : assignment) {
      route.region_to_engine[region] = task_base + engine;
    }
    for (int e = 0; e < engines; ++e) route.fallback_engines.push_back(task_base + e);
    routes.push_back(std::move(route));
    task_base += engines;
  }
  return SpatialRouter(std::move(routes));
}

Result<TrafficManagementSystem::RunReport> TrafficManagementSystem::Run() {
  if (!initialized_) {
    return Status::FailedPrecondition("call Initialize() first");
  }

  // Allocate engines to groupings (Algorithm 2).
  RulesAllocator allocator(&latency_model_);
  INSIGHT_ASSIGN_OR_RETURN(
      AllocationResult allocation,
      allocator.Allocate(groupings_, config_.num_esper_engines));
  INSIGHT_ASSIGN_OR_RETURN(SpatialRouter router, BuildRouter(allocation));
  auto shared_router = std::make_shared<SpatialRouter>(std::move(router));

  // Retrieval setup per grouping; tasks map to groupings by index range.
  auto esper_config = std::make_shared<traffic::EsperBoltConfig>();
  esper_config->layers = {};  // rules use area_leaf / bus_stop
  esper_config->rules_per_task.resize(
      static_cast<size_t>(config_.num_esper_engines));
  std::vector<RetrievalSetup> setups;
  {
    int task_base = 0;
    for (size_t g = 0; g < groupings_.size(); ++g) {
      INSIGHT_ASSIGN_OR_RETURN(
          RetrievalSetup setup,
          BuildRetrieval(config_.retrieval, groupings_[g].rules, &store_,
                         config_.retrieval_options));
      for (int e = 0; e < allocation.engines_per_grouping[g]; ++e) {
        esper_config->rules_per_task[static_cast<size_t>(task_base + e)] =
            setup.rules;
      }
      task_base += allocation.engines_per_grouping[g];
      setups.push_back(std::move(setup));
    }
  }
  // Dispatch preload / before_send to the owning grouping's setup.
  std::vector<int> task_to_grouping(
      static_cast<size_t>(config_.num_esper_engines), 0);
  {
    int task_base = 0;
    for (size_t g = 0; g < groupings_.size(); ++g) {
      for (int e = 0; e < allocation.engines_per_grouping[g]; ++e) {
        task_to_grouping[static_cast<size_t>(task_base + e)] = static_cast<int>(g);
      }
      task_base += allocation.engines_per_grouping[g];
    }
  }
  auto shared_setups = std::make_shared<std::vector<RetrievalSetup>>(
      std::move(setups));
  esper_config->preload = [shared_setups, task_to_grouping](cep::Engine* engine,
                                                            int task) {
    const auto& setup =
        (*shared_setups)[static_cast<size_t>(task_to_grouping[static_cast<size_t>(task)])];
    if (setup.preload) setup.preload(engine, task);
  };
  esper_config->before_send = [shared_setups, task_to_grouping](
                                  cep::Engine* engine, int task,
                                  const dsps::Tuple& tuple) {
    const auto& setup =
        (*shared_setups)[static_cast<size_t>(task_to_grouping[static_cast<size_t>(task)])];
    if (setup.before_send) setup.before_send(engine, task, tuple);
  };

  // Stream dataset for this run.
  traffic::TraceGenerator generator(config_.generator);
  auto traces = std::make_shared<std::vector<traffic::BusTrace>>(
      generator.GenerateAll(config_.max_traces));

  // Figure 8 topology.
  dsps::TopologyBuilder builder;
  builder.SetSpout(
      "busReader",
      [traces] { return std::make_unique<traffic::BusReaderSpout>(traces); },
      traffic::RawTraceFields(), config_.reader_executors);
  builder
      .SetBolt(
          "preProcess",
          [weekend = config_.generator.weekend] {
            return std::make_unique<traffic::PreProcessBolt>(weekend);
          },
          traffic::PreProcessedFields(), config_.preprocess_executors)
      .FieldsGrouping("busReader", {"vehicle"});
  builder
      .SetBolt(
          "areaTracker",
          [quadtree = quadtree_] {
            return std::make_unique<traffic::AreaTrackerBolt>(
                quadtree, std::vector<int>{});
          },
          traffic::AreaFields({}), config_.tracker_executors)
      .ShuffleGrouping("preProcess");
  builder
      .SetBolt(
          "busStopsTracker",
          [stops = bus_stops_] {
            return std::make_unique<traffic::BusStopsTrackerBolt>(stops);
          },
          traffic::EnrichedFields({}), config_.tracker_executors)
      .ShuffleGrouping("areaTracker");
  // The splitter also feeds the rate trackers so the next Run() partitions
  // with observed rates ("incrementally update them while the application
  // runs").
  auto observing_router = [shared_router, this](const dsps::Tuple& tuple,
                                                std::vector<int>* tasks) {
    shared_router->Route(tuple, tasks);
    auto area = tuple.GetByField("area_leaf");
    if (area.ok() && area->AsInt() >= 0) area_tracker_.Observe(area->AsInt());
    auto stop = tuple.GetByField("bus_stop");
    if (stop.ok() && stop->AsInt() >= 0) stop_tracker_.Observe(stop->AsInt());
  };
  builder
      .SetBolt(
          "splitter",
          [observing_router] {
            return std::make_unique<traffic::SplitterBolt>(observing_router);
          },
          traffic::EnrichedFields({}), config_.splitter_executors)
      .ShuffleGrouping("busStopsTracker");
  builder
      .SetBolt(
          "esper",
          [esper_config] {
            return std::make_unique<traffic::EsperBolt>(esper_config);
          },
          traffic::DetectionFields(), config_.num_esper_engines,
          config_.num_esper_engines)
      .DirectGrouping("splitter");
  builder
      .SetBolt(
          "eventsStorer",
          [this] { return std::make_unique<traffic::EventsStorerBolt>(&store_); },
          dsps::Fields({}), config_.storer_executors)
      .ShuffleGrouping("esper");

  INSIGHT_ASSIGN_OR_RETURN(dsps::Topology topology, builder.Build());
  dsps::LocalRuntime::Options runtime_options = config_.runtime;
  runtime_options.num_workers = config_.num_workers;
  dsps::LocalRuntime runtime(std::move(topology), runtime_options);

  auto start = std::chrono::steady_clock::now();
  INSIGHT_RETURN_NOT_OK(runtime.Start());
  runtime.AwaitCompletion();
  auto end = std::chrono::steady_clock::now();

  RunReport report;
  report.traces_fed = traces->size();
  report.wall_seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(end - start)
          .count();
  report.esper = runtime.metrics()->Totals("esper");
  if (report.wall_seconds > 0) {
    report.esper_throughput =
        static_cast<double>(report.esper.executed) / report.wall_seconds;
  }
  auto detections = store_.RowCount(traffic::EventsStorerBolt::kTableName);
  report.detections = detections.ok() ? *detections : 0;
  report.engines_per_grouping = allocation.engines_per_grouping;
  return report;
}

}  // namespace core
}  // namespace insight
