#include "core/dynamic.h"

#include <map>
#include <set>
#include <sstream>

#include "common/csv.h"
#include "core/retrieval.h"

namespace insight {
namespace core {

std::map<std::string, int> DynamicRuleManager::AttributeColumns(
    bool stop_suffix) {
  const char* suffix = stop_suffix ? "_stop" : "";
  using T = traffic::TraceCsv;
  return {
      {std::string(traffic::kAttrDelay) + suffix, T::kDelay},
      {std::string(traffic::kAttrActualDelay) + suffix, T::kActualDelay},
      {std::string(traffic::kAttrSpeed) + suffix, T::kSpeed},
      {std::string(traffic::kAttrCongestion) + suffix, T::kCongestion},
  };
}

Status DynamicRuleManager::AppendHistory(
    const std::vector<traffic::BusTrace>& traces) {
  std::ostringstream buffer;
  CsvWriter writer(&buffer);
  for (const traffic::BusTrace& trace : traces) {
    writer.Write(trace.ToCsvRow());
  }
  return fs_->Append(config_.history_path, buffer.str());
}

Result<size_t> DynamicRuleManager::RunBatchCycle() {
  using T = traffic::TraceCsv;

  batch::StatisticsJobConfig area_job;
  area_job.input_paths = {config_.history_path};
  area_job.output_dir = config_.area_output_dir;
  area_job.location_col = T::kAreaLeaf;
  area_job.hour_col = T::kHour;
  area_job.date_type_col = T::kDateType;
  area_job.attribute_cols = AttributeColumns(/*stop_suffix=*/false);
  area_job.num_reducers = config_.num_reducers;
  area_job.parallelism = config_.parallelism;
  INSIGHT_RETURN_NOT_OK(batch::RunStatisticsJob(fs_, area_job).status());

  batch::StatisticsJobConfig stop_job = area_job;
  stop_job.output_dir = config_.stop_output_dir;
  stop_job.location_col = T::kBusStop;
  stop_job.attribute_cols = AttributeColumns(/*stop_suffix=*/true);
  INSIGHT_RETURN_NOT_OK(batch::RunStatisticsJob(fs_, stop_job).status());

  INSIGHT_ASSIGN_OR_RETURN(
      size_t area_rows,
      batch::LoadStatisticsIntoStore(*fs_, config_.area_output_dir, store_));
  INSIGHT_ASSIGN_OR_RETURN(
      size_t stop_rows,
      batch::LoadStatisticsIntoStore(*fs_, config_.stop_output_dir, store_));
  ++cycles_;
  return area_rows + stop_rows;
}

Result<size_t> DynamicRuleManager::RefreshEngine(
    cep::Engine* engine, const std::vector<RuleTemplate>& rules) const {
  // Below-rules (speed) alert under mean - s*stdev, so their s is negated.
  std::map<std::string, double> keys;
  for (const RuleTemplate& rule : rules) {
    for (const RuleAttribute& attr : rule.attributes) {
      keys[rule.AttributeKey(attr.name)] = attr.below ? -config_.s : config_.s;
    }
  }
  size_t sent = 0;
  for (const auto& [key, signed_s] : keys) {
    INSIGHT_ASSIGN_OR_RETURN(auto thresholds,
                             storage::QueryThresholds(*store_, key, signed_s));
    for (const storage::ThresholdRow& row : thresholds) {
      INSIGHT_RETURN_NOT_OK(SendThresholdEvent(engine, key, row));
      ++sent;
    }
  }
  return sent;
}

}  // namespace core
}  // namespace insight
