#include "core/rule_template.h"

#include "common/strings.h"

namespace insight {
namespace core {

Result<std::string> RuleTemplate::ToEpl(double static_threshold) const {
  if (attributes.empty()) {
    return Status::InvalidArgument("rule '" + name + "' has no attributes");
  }
  if (window_length == 0) {
    return Status::InvalidArgument("rule '" + name + "' has window length 0");
  }
  if (location_field.empty()) {
    return Status::InvalidArgument("rule '" + name + "' has no location field");
  }
  const bool use_stream = static_threshold < 0.0;
  const std::string& loc = location_field;
  const std::string& primary = attributes[0].name;

  std::string epl = "@Trigger(bus)\n";
  epl += "SELECT bd." + loc + " AS location, ";
  epl += "avg(bd2." + primary + ") AS value, ";
  if (use_stream) {
    epl += "avg(thr_" + primary + ".value) AS threshold, ";
  } else {
    epl += StrFormat("%.6f AS threshold, ", static_threshold);
  }
  epl += "'" + primary + "' AS attribute, bd.timestamp AS timestamp\n";

  epl += "FROM bus.std:lastevent() as bd,\n";
  epl += StrFormat("     bus.std:groupwin(%s).win:length(%zu) as bd2",
                   loc.c_str(), window_length);
  if (use_stream) {
    // std:unique keeps the latest threshold per (location, hour, day), so a
    // batch-layer refresh replaces stale thresholds in place (Section 4.1.3).
    for (const RuleAttribute& attr : attributes) {
      epl += ",\n     threshold_" + AttributeKey(attr.name) +
             ".std:unique(location, hour, day) as thr_" + attr.name;
    }
  }
  epl += "\n";

  epl += "WHERE bd." + loc + " = bd2." + loc;
  if (use_stream) {
    for (const RuleAttribute& attr : attributes) {
      const std::string thr = "thr_" + attr.name;
      epl += " and bd.hour = " + thr + ".hour";
      epl += " and bd.date_type = " + thr + ".day";
      epl += " and bd." + loc + " = " + thr + ".location";
    }
  }
  epl += "\nGROUP BY bd2." + loc + "\nHAVING ";
  for (size_t i = 0; i < attributes.size(); ++i) {
    if (i > 0) epl += " and ";
    const RuleAttribute& attr = attributes[i];
    const char* cmp = attr.below ? "<" : ">";
    epl += "avg(bd2." + attr.name + ") " + cmp + " ";
    if (use_stream) {
      epl += "avg(thr_" + attr.name + ".value)";
    } else {
      epl += StrFormat("%.6f", static_threshold);
    }
  }
  return epl;
}

model::RuleCharacteristics RuleTemplate::Characteristics(
    size_t num_thresholds) const {
  model::RuleCharacteristics characteristics;
  characteristics.window_length = static_cast<double>(window_length);
  characteristics.num_thresholds =
      static_cast<double>(num_thresholds * attributes.size());
  characteristics.weight = weight;
  return characteristics;
}

RuleTemplate MakeRule(const std::string& name, const std::string& attribute,
                      const std::string& location_field, size_t window_length,
                      int quadtree_layer) {
  RuleTemplate rule;
  rule.name = name;
  rule.attributes = {{attribute, attribute == "speed"}};
  rule.location_field = location_field;
  rule.window_length = window_length;
  rule.quadtree_layer = quadtree_layer;
  return rule;
}

std::vector<RuleTemplate> Table6Rules(size_t window_length) {
  auto w = std::to_string(window_length);
  std::vector<RuleTemplate> rules;
  for (const std::string loc : {std::string("bus_stop"), std::string("area_leaf")}) {
    const std::string suffix = "_" + loc + "_w" + w;
    rules.push_back(MakeRule("delay" + suffix, "delay", loc, window_length));
    rules.push_back(
        MakeRule("actual_delay" + suffix, "actual_delay", loc, window_length));
    rules.push_back(MakeRule("speed" + suffix, "speed", loc, window_length));

    RuleTemplate delay_congestion;
    delay_congestion.name = "delay_congestion" + suffix;
    delay_congestion.attributes = {{"delay", false}, {"congestion", false}};
    delay_congestion.location_field = loc;
    delay_congestion.window_length = window_length;
    rules.push_back(delay_congestion);

    RuleTemplate all;
    all.name = "all" + suffix;
    all.attributes = {{"delay", false},
                      {"actual_delay", false},
                      {"speed", true},
                      {"congestion", false}};
    all.location_field = loc;
    all.window_length = window_length;
    rules.push_back(all);
  }
  return rules;
}

}  // namespace core
}  // namespace insight
