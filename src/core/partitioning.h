#ifndef INSIGHT_CORE_PARTITIONING_H_
#define INSIGHT_CORE_PARTITIONING_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "dsps/tuple.h"

namespace insight {
namespace core {

/// Expected input rate of one spatial location ("the amount of bus traces
/// expected to be processed by the engine in that location", Section 4.2.1).
/// Rates come from historical data and are incrementally updated at runtime.
struct RegionRate {
  int64_t region = 0;
  double rate = 0.0;
};

/// Algorithm 1 (Rule's Partitioning): assigns a rule's spatial locations to
/// engines so that every engine receives approximately the same aggregated
/// input rate — sort regions by descending rate, then repeatedly give the
/// next region to the least-loaded engine (LPT greedy).
/// Returns region -> engine index in [0, num_engines).
Result<std::map<int64_t, int>> PartitionRegions(std::vector<RegionRate> rates,
                                                int num_engines);

/// Aggregate rate per engine under an assignment (for balance checks).
std::vector<double> EngineRates(const std::map<int64_t, int>& assignment,
                                const std::vector<RegionRate>& rates);

/// Tracks observed per-region input rates so the partitioner can start from
/// historical knowledge and be refreshed as the application runs
/// ("incrementally update them while the application runs"). Thread-safe:
/// splitter tasks observe concurrently while the optimizer reads estimates.
class RegionRateTracker {
 public:
  /// Seeds historical rates.
  void Seed(const std::vector<RegionRate>& rates);
  /// Records one observed tuple for the region.
  void Observe(int64_t region);
  /// Current estimates: seeded rate blended with observed counts.
  std::vector<RegionRate> Estimates() const;
  uint64_t observed_total() const;

 private:
  mutable Mutex mutex_{TMS_LOCK_RANK(72)};
  std::map<int64_t, double> seeded_ GUARDED_BY(mutex_);
  std::map<int64_t, uint64_t> observed_ GUARDED_BY(mutex_);
  uint64_t observed_total_ GUARDED_BY(mutex_) = 0;
};

/// The Splitter bolt's routing schema: one entry per grouping of rules, each
/// partitioned at its own location field. A tuple goes to the engine owning
/// its region in every grouping (duplicates removed), so rules grouped
/// together never cause re-transmissions (Section 4.2.2).
class SpatialRouter {
 public:
  struct GroupingRoute {
    /// Tuple field carrying the region id for this grouping ("bus_stop",
    /// "area_leaf", "area_layer<k>").
    std::string location_field;
    std::map<int64_t, int> region_to_engine;
    /// Engines usable for regions missing from the map (first-seen regions
    /// are routed by modulo so nothing is dropped).
    std::vector<int> fallback_engines;
  };

  explicit SpatialRouter(std::vector<GroupingRoute> routes)
      : routes_(std::move(routes)) {}

  /// Target engine-task list for a tuple (deduplicated, sorted).
  void Route(const dsps::Tuple& tuple, std::vector<int>* tasks) const;

  /// Adapter for traffic::SplitterBolt.
  std::function<void(const dsps::Tuple&, std::vector<int>*)> AsFunction() const;

  const std::vector<GroupingRoute>& routes() const { return routes_; }

 private:
  std::vector<GroupingRoute> routes_;
};

}  // namespace core
}  // namespace insight

#endif  // INSIGHT_CORE_PARTITIONING_H_
