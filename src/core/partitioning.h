#ifndef INSIGHT_CORE_PARTITIONING_H_
#define INSIGHT_CORE_PARTITIONING_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "dsps/tuple.h"

namespace insight {
namespace core {

/// Expected input rate of one spatial location ("the amount of bus traces
/// expected to be processed by the engine in that location", Section 4.2.1).
/// Rates come from historical data and are incrementally updated at runtime.
struct RegionRate {
  int64_t region = 0;
  double rate = 0.0;
};

/// Algorithm 1 (Rule's Partitioning): assigns a rule's spatial locations to
/// engines so that every engine receives approximately the same aggregated
/// input rate — sort regions by descending rate, then repeatedly give the
/// next region to the least-loaded engine (LPT greedy).
/// Returns region -> engine index in [0, num_engines).
Result<std::map<int64_t, int>> PartitionRegions(std::vector<RegionRate> rates,
                                                int num_engines);

/// Aggregate rate per engine under an assignment (for balance checks).
std::vector<double> EngineRates(const std::map<int64_t, int>& assignment,
                                const std::vector<RegionRate>& rates);

/// One step of an incremental re-partitioning plan: move `region` from
/// `from_engine` to `to_engine`.
struct RegionMove {
  int64_t region = 0;
  int from_engine = 0;
  int to_engine = 0;
  double rate = 0.0;
};

/// Incremental re-partitioning (the online counterpart of Algorithm 1): given
/// an existing region -> engine assignment and fresh rate estimates, plans a
/// minimal sequence of region moves that takes the bottleneck engine's load
/// down until max/avg load <= `target_imbalance` (>= 1.0) or `max_moves`
/// moves have been planned. Greedy LPT refinement: each step moves the
/// largest region off the most-loaded engine that still lowers the maximum
/// load. Unlike a from-scratch PartitionRegions() this preserves the bulk of
/// the assignment, so only the moved regions' engine state is disturbed.
/// `assignment` is updated in place to reflect the planned moves.
Result<std::vector<RegionMove>> PlanRebalance(
    std::map<int64_t, int>* assignment, const std::vector<RegionRate>& rates,
    int num_engines, double target_imbalance, size_t max_moves);

/// Tracks observed per-region input rates so the partitioner can start from
/// historical knowledge and be refreshed as the application runs
/// ("incrementally update them while the application runs"). Thread-safe:
/// splitter tasks observe concurrently while the optimizer reads estimates.
class RegionRateTracker {
 public:
  /// Seeds historical rates.
  void Seed(const std::vector<RegionRate>& rates);
  /// Records one observed tuple for the region.
  void Observe(int64_t region);
  /// Current estimates: seeded rate blended with observed counts.
  std::vector<RegionRate> Estimates() const;
  uint64_t observed_total() const;

 private:
  mutable Mutex mutex_{TMS_LOCK_RANK(72)};
  std::map<int64_t, double> seeded_ GUARDED_BY(mutex_);
  std::map<int64_t, uint64_t> observed_ GUARDED_BY(mutex_);
  uint64_t observed_total_ GUARDED_BY(mutex_) = 0;
};

/// The Splitter bolt's routing schema: one entry per grouping of rules, each
/// partitioned at its own location field. A tuple goes to the engine owning
/// its region in every grouping (duplicates removed), so rules grouped
/// together never cause re-transmissions (Section 4.2.2).
class SpatialRouter {
 public:
  struct GroupingRoute {
    /// Tuple field carrying the region id for this grouping ("bus_stop",
    /// "area_leaf", "area_layer<k>").
    std::string location_field;
    std::map<int64_t, int> region_to_engine;
    /// Engines usable for regions missing from the map (first-seen regions
    /// are routed by modulo so nothing is dropped).
    std::vector<int> fallback_engines;
  };

  explicit SpatialRouter(std::vector<GroupingRoute> routes)
      : routes_(std::move(routes)) {}

  /// Target engine-task list for a tuple (deduplicated, sorted).
  void Route(const dsps::Tuple& tuple, std::vector<int>* tasks) const;

  /// Adapter for traffic::SplitterBolt.
  std::function<void(const dsps::Tuple&, std::vector<int>*)> AsFunction() const;

  const std::vector<GroupingRoute>& routes() const { return routes_; }

 private:
  std::vector<GroupingRoute> routes_;
};

/// Swappable routing table for elastic scheduling: wraps an immutable
/// SpatialRouter behind a shared_ptr so splitter tasks read one coherent
/// table per tuple while the elastic controller atomically publishes
/// rebalanced tables. Readers pay one short rank-73 lock per tuple; the
/// static (non-elastic) path keeps using SpatialRouter directly and is
/// untouched. The router must outlive any runtime wired to AsFunction().
class LiveRouter {
 public:
  explicit LiveRouter(SpatialRouter initial);

  /// The current immutable table (safe to route from without the lock).
  std::shared_ptr<const SpatialRouter> Snapshot() const;

  /// Publishes a new table.
  void Swap(SpatialRouter next);

  /// Re-installs a table previously captured with Snapshot() — the rollback
  /// path when a migration aborts after its routing flip.
  void Restore(std::shared_ptr<const SpatialRouter> snapshot);

  /// Rewrites every region (and fallback slot) owned by engine task `from`
  /// to `to` across all groupings and publishes the result. Returns the
  /// number of entries rewritten. This is the routing flip of a whole-task
  /// migration.
  size_t MoveEngine(int from, int to);

  /// Applies an incremental plan from PlanRebalance() to grouping
  /// `grouping_index` and publishes the result. Returns the number of
  /// regions rewritten.
  size_t ApplyMoves(size_t grouping_index, const std::vector<RegionMove>& moves);

  /// Routes against the current table.
  void Route(const dsps::Tuple& tuple, std::vector<int>* tasks) const;

  /// Adapter for traffic::SplitterBolt; captures `this`.
  std::function<void(const dsps::Tuple&, std::vector<int>*)> AsFunction() const;

  /// Incremented on every publish; lets tests and the controller detect that
  /// a flip or rollback actually took effect.
  uint64_t version() const;

 private:
  mutable Mutex mutex_{TMS_LOCK_RANK(73)};
  std::shared_ptr<const SpatialRouter> router_ GUARDED_BY(mutex_);
  uint64_t version_ GUARDED_BY(mutex_) = 0;
};

}  // namespace core
}  // namespace insight

#endif  // INSIGHT_CORE_PARTITIONING_H_
